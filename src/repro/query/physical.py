"""Physical plan operators with pipeline-aware pattern composition.

A physical plan is a tree of operator nodes.  Each node knows

* how to **execute** against the engine (producing real columns and a
  real access trace in the simulator), and
* how to **describe** its data access as a pattern, given the regions
  of its inputs — so the whole plan's cost function is derived
  automatically by combining its operators' patterns.

Composition follows the paper's Section 3.3 operators: a *materialized*
edge (the consumer starts after the producer finished) combines the two
patterns with sequential execution ``⊕``; a *pipelined* edge (the
consumer processes items while the producer emits them) combines them
with concurrent execution ``⊙``.  Whether an edge pipelines is derived
from two properties:

* :attr:`PlanNode.is_pipelined` — the producer emits output items
  incrementally (a selection does; a sort only finishes all at once);
* :meth:`PlanNode.pipelined_inputs` — the consumer drains each input as
  a stream (a merge join does; a sort needs its input materialized).

Multi-phase operators (hash join: build ⊕ probe; aggregation:
consume ⊕ emit) pipeline each input edge into the correct *phase*: a
streamed inner input overlaps the build, a streamed outer input overlaps
the probe, and the output streams with the probe only.

Cardinalities come from the logical cost component, which the paper
assumes to be a perfect oracle; nodes take explicit selectivity/
cardinality hints for the same effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..core.algorithms import (
    DEFAULT_HASH_MAX_LOAD,
    external_merge_sort_phases,
    grace_hash_join_phases,
    hash_aggregate_phases,
    hash_build_pattern,
    hash_join_pattern,
    hash_probe_pattern,
    hash_table_region,
    merge_join_pattern,
    nested_loop_join_pattern,
    partition_pattern,
    partitioned_hash_join_pattern,
    project_pattern,
    quick_sort_pattern,
    select_pattern,
    sort_aggregate_pattern,
    spill_partition_count,
    spill_run_count,
    spilling_hash_aggregate_phases,
)
from ..core.cost import CostEstimate, CostModel
from ..core.cpu import cpu_cycles, sort_depth
from ..core.patterns import Conc, Pattern, STrav, Seq, conc, seq
from ..core.regions import DataRegion
from ..db.aggregate import hash_aggregate, sort_aggregate
from ..db.column import Column
from ..db.context import Database
from ..db.join import OUTPUT_WIDTH, hash_join, merge_join, nested_loop_join
from ..db.partition import join_partitions, partition
from ..db.scan import select
from ..db.sort import quick_sort
from ..db.spill import (
    GraceJoinResult,
    external_merge_sort,
    grace_hash_join,
    spilling_hash_aggregate,
)

__all__ = [
    "PlanNode",
    "ScanNode",
    "SelectNode",
    "ProjectNode",
    "SortNode",
    "ExternalSortNode",
    "MergeJoinNode",
    "HashJoinNode",
    "NestedLoopJoinNode",
    "PartitionedHashJoinNode",
    "GraceHashJoinNode",
    "AggregateNode",
    "SortAggregateNode",
    "SpillingAggregateNode",
    "QueryPlan",
]


# ``None``-skipping composition lives in the pattern language itself
# (:func:`repro.core.seq` / :func:`repro.core.conc`); these aliases keep
# the composition code below readable.
_seq = seq
_conc = conc


def _compose_edge(child: "PlanNode", phase: Pattern | None,
                  prefix_parts: list[Pattern], pipeline: bool,
                  piped: bool = True) -> Pattern | None:
    """Compose one child edge into a consumer ``phase``.

    A pipelined edge contributes the child's prefix to ``prefix_parts``
    and returns the phase ``⊙``-merged with the child's stream
    (:func:`_merge_stream`); a materialized edge contributes the child's
    whole pattern to ``prefix_parts`` and returns the phase unchanged.
    """
    c_prefix, c_stream = child.compose(pipeline)
    if pipeline and piped and child.is_pipelined:
        if c_prefix is not None:
            prefix_parts.append(c_prefix)
        return _merge_stream(c_stream, phase, child.output_region())
    whole = _seq(c_prefix, c_stream)
    if whole is not None:
        prefix_parts.append(whole)
    return phase


def _merge_stream(stream: Pattern | None, phase: Pattern | None,
                  shared: DataRegion | None) -> Pattern | None:
    """``⊙``-merge a pipelined producer's ``stream`` into the consumer
    ``phase``, coalescing the one co-moving cursor pair.

    The producer's output cursor and the consumer's input cursor sweep
    the *same* intermediate region (``shared``) in lock-step — the
    consumer touches each line while the producer's write has it
    resident — so the pair contributes the misses and footprint of a
    single traversal: exactly one duplicate of one equal
    :class:`~repro.core.STrav` pair over ``shared`` is dropped.

    Dropping requires an actual producer cursor: coalescing happens only
    when the stream itself carries a sequential traversal of ``shared``,
    and removes exactly one equal occurrence beyond it.  It is per
    pipelined edge and region-targeted, never generic value-equality
    over the whole ``⊙``: a self-join's two independent cursors over one
    region (a bare-scan self-join has no stream at all), or two
    different selections of the same base column, keep all their
    cursors.
    """
    if stream is None or phase is None or shared is None:
        return _conc(stream, phase)
    stream_parts = stream.parts if isinstance(stream, Conc) else (stream,)
    producer = next(
        (p for p in stream_parts
         if isinstance(p, STrav) and p.region == shared), None)
    merged = _conc(stream, phase)
    if producer is None or not isinstance(merged, Conc):
        return merged
    parts = list(merged.parts)
    matches = [i for i, p in enumerate(parts) if p == producer]
    if len(matches) >= 2:
        del parts[matches[-1]]
    if len(parts) == 1:
        return parts[0]
    return Conc(parts)


class PlanNode:
    """Base class of physical plan operators."""

    def output_region(self) -> DataRegion:
        """The (oracle-estimated) region this node produces."""
        raise NotImplementedError

    def pattern(self) -> Pattern | None:
        """This node's own data access pattern (excluding children).
        ``None`` for nodes that perform no access of their own."""
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def execute(self, db: Database) -> Column:
        """Run this operator (children included) against ``db``.

        When the database's operator probe is active
        (:meth:`Database.operator_measurement
        <repro.db.Database.operator_measurement>`), the run is scoped
        in simulator snapshots and its inclusive counter delta is
        reported — the substrate of per-operator measured attribution
        (:class:`repro.query.MeasuredResult`).  The operator work
        itself lives in :meth:`_run`."""
        probe = db._operator_probe
        if probe is None:
            return self._run(db)
        before = db.mem.snapshot()
        out = self._run(db)
        probe.append((self, db.mem.snapshot() - before))
        return out

    def _run(self, db: Database) -> Column:
        """The operator's work (subclass hook; call :meth:`execute`)."""
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    @property
    def spills(self) -> bool:
        """Whether this operator runs an out-of-core variant (its
        working structure exceeded the memory budget); surfaced by
        :meth:`QueryPlan.explain`."""
        return False

    # -- pipelining interface ------------------------------------------
    @property
    def is_pipelined(self) -> bool:
        """Whether this operator emits output items incrementally while
        consuming input (so a downstream streaming consumer can overlap
        with it, ``⊙``)."""
        return False

    def pipelined_inputs(self) -> tuple[bool, ...]:
        """Per child: whether this operator drains that input as a
        stream (rather than requiring it materialized first)."""
        return tuple(False for _ in self.children())

    # -- plan-wide derived properties ----------------------------------
    @property
    def produces_sorted_output(self) -> bool:
        """Whether the output is ordered by join/sort key (for joins:
        the key order of the would-be projected key column)."""
        return False

    @property
    def produces_pairs(self) -> bool:
        """Whether output values are (outer oid, inner oid) pairs (join
        results) rather than plain keys."""
        return False

    def recover_key(self, row: int, value) -> int:
        """The join key of an output item (pair-producing sub-plans
        only; valid after :meth:`execute`).

        Recovery is *value-based* — derived from ``value``, not from
        ``row`` — so it stays correct through operators that filter or
        reorder rows (a selection or sort above a join delegates here
        with its own row numbers but unchanged values)."""
        raise NotImplementedError(f"{type(self).__name__} has no join keys")

    def cpu_cycles(self) -> float:
        """Calibrated pure-CPU cycles of this operator alone (Eq. 6.1)."""
        return 0.0

    def walk(self) -> Iterator["PlanNode"]:
        """All nodes of this sub-plan, post-order."""
        for child in self.children():
            yield from child.walk()
        yield self

    # -- pattern composition -------------------------------------------
    def compose(self, pipeline: bool = True) -> tuple[Pattern | None, Pattern | None]:
        """This sub-plan's pattern, split as ``(prefix, stream)``.

        ``prefix`` must complete before the first output item appears;
        ``stream`` is the work that runs while output streams (``None``
        for blocking operators).  With ``pipeline=False`` every edge is
        treated as materialized, reproducing pure-``⊕`` composition.
        """
        prefix_parts: list[Pattern] = []
        work = self.pattern()
        for child, edge_piped in zip(self.children(), self.pipelined_inputs()):
            work = _compose_edge(child, work, prefix_parts, pipeline,
                                 edge_piped)
        if pipeline and self.is_pipelined:
            return _seq(*prefix_parts), work
        return _seq(*prefix_parts, work), None

    def full_pattern(self, pipeline: bool = True) -> Pattern | None:
        """The whole sub-plan's pattern: pipelined producer/consumer
        edges are ``⊙``-combined (Section 3.3), materialized edges
        ``⊕``-combined.  ``pipeline=False`` models every edge as
        materialization (the previous, conservative behaviour).
        ``None`` for access-free sub-plans (bare scans)."""
        prefix, stream = self.compose(pipeline)
        return _seq(prefix, stream)


@dataclass
class ScanNode(PlanNode):
    """A base-table column (no access of its own: consumers read it).
    ``sorted`` declares an existing physical order.  A region-only scan
    (``column=None``) supports model-only planning and cannot execute."""

    column: Column | None = None
    region: DataRegion | None = None
    sorted: bool = False

    def __post_init__(self) -> None:
        if (self.column is None) == (self.region is None):
            raise ValueError("a ScanNode needs exactly one of column/region")

    def output_region(self) -> DataRegion:
        return self.column.region() if self.column is not None else self.region

    def pattern(self) -> Pattern | None:
        # The scan itself is folded into the consuming operator's
        # sequential input sweep; a bare scan costs nothing extra.
        return None

    @property
    def is_pipelined(self) -> bool:
        return True

    @property
    def produces_sorted_output(self) -> bool:
        return self.sorted

    def _run(self, db: Database) -> Column:
        if self.column is None:
            raise ValueError(
                f"scan of bare region {self.region.name} is model-only"
            )
        return self.column

    def label(self) -> str:
        return f"scan({self.output_region().name})"


@dataclass
class SelectNode(PlanNode):
    """Filter; ``selectivity`` is the oracle's output fraction."""

    child: PlanNode
    predicate: Callable[[int], bool]
    selectivity: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError("selectivity must be in (0, 1]")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        src = self.child.output_region()
        n = max(1, int(src.n * self.selectivity))
        return DataRegion(f"σ({src.name})", n=n, w=src.w)

    def pattern(self) -> Pattern:
        return select_pattern(self.child.output_region(), self.output_region())

    @property
    def is_pipelined(self) -> bool:
        return True

    def pipelined_inputs(self) -> tuple[bool, ...]:
        return (True,)

    @property
    def produces_sorted_output(self) -> bool:
        return self.child.produces_sorted_output

    @property
    def produces_pairs(self) -> bool:
        return self.child.produces_pairs

    def recover_key(self, row: int, value) -> int:
        return self.child.recover_key(row, value)

    def cpu_cycles(self) -> float:
        return cpu_cycles("select", self.child.output_region().n)

    def _run(self, db: Database) -> Column:
        source = self.child.execute(db)
        return select(db, source, self.predicate,
                      output_name=self.output_region().name)

    def label(self) -> str:
        return f"select(sel={self.selectivity})"


@dataclass
class ProjectNode(PlanNode):
    """Narrow a wide intermediate to its join-key column.

    The optimizer inserts this between two joins: join results store
    (outer oid, inner oid) pairs, and the next join needs a plain key
    column to sort, hash or merge on.  Only the key bytes of each input
    item are read (``u = width``), matching the paper's projection
    pattern ``s_trav+(U, u) ⊙ s_trav+(W)``.
    """

    child: PlanNode
    width: int = 8

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        src = self.child.output_region()
        return DataRegion(f"k({src.name})", n=src.n, w=self.width)

    def _used_bytes(self) -> int:
        return min(self.width, self.child.output_region().w)

    def pattern(self) -> Pattern:
        return project_pattern(self.child.output_region(),
                               self.output_region(), u=self._used_bytes())

    @property
    def is_pipelined(self) -> bool:
        return True

    def pipelined_inputs(self) -> tuple[bool, ...]:
        return (True,)

    @property
    def produces_sorted_output(self) -> bool:
        return self.child.produces_sorted_output

    def cpu_cycles(self) -> float:
        return cpu_cycles("project", self.child.output_region().n)

    def _run(self, db: Database) -> Column:
        source = self.child.execute(db)
        u = min(self.width, source.width)
        pairs = self.child.produces_pairs
        if db.execution != "scalar":
            from ..db.vectorized import project_node_v
            return project_node_v(db, source, self.output_region().name,
                                  self.width, u,
                                  self.child.recover_key if pairs else None)
        mem = db.mem
        out = db.allocate_column(self.output_region().name,
                                 n=max(1, source.n), width=self.width)
        for row in range(source.n):
            mem.access(source.item_address(row), u)
            value = source.values[row]
            key = self.child.recover_key(row, value) if pairs else value
            out.write(mem, row, key)
        out.values = out.values[:source.n]
        return out

    def label(self) -> str:
        return "project(key)"


@dataclass
class SortNode(PlanNode):
    """In-place quick-sort of the child's (materialized) output."""

    child: PlanNode
    stop_bytes: int | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        src = self.child.output_region()
        return DataRegion(f"sort({src.name})", n=src.n, w=src.w)

    def pattern(self) -> Pattern:
        return quick_sort_pattern(self.child.output_region(),
                                  stop_bytes=self.stop_bytes)

    @property
    def produces_sorted_output(self) -> bool:
        return True

    @property
    def produces_pairs(self) -> bool:
        return self.child.produces_pairs

    def recover_key(self, row: int, value) -> int:
        return self.child.recover_key(row, value)

    def cpu_cycles(self) -> float:
        n = self.child.output_region().n
        return cpu_cycles("sort", n * sort_depth(n))

    def _run(self, db: Database) -> Column:
        column = self.child.execute(db)
        quick_sort(db, column)
        return column

    def label(self) -> str:
        return "sort"


@dataclass
class ExternalSortNode(PlanNode):
    """External merge sort under a sort-area budget: quick-sort
    budget-sized runs in place, then merge the sorted runs into a fresh
    output column with one sequential cursor per run (the classic
    out-of-core sort; its I/O stays sequential, which is why sort-based
    plans win once hash tables spill to random page access)."""

    child: PlanNode
    memory_budget: int = 0
    stop_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.memory_budget < 1:
            raise ValueError("memory_budget must be positive")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        src = self.child.output_region()
        return DataRegion(f"sort({src.name})", n=src.n, w=src.w)

    def runs(self) -> int:
        return spill_run_count(self.child.output_region(),
                               self.memory_budget)

    def pattern(self) -> Pattern:
        run_sorts, merge = external_merge_sort_phases(
            self.child.output_region(), self.output_region(),
            self.memory_budget, stop_bytes=self.stop_bytes)
        if len(run_sorts) == 1:
            return run_sorts[0]
        return Seq.of(*run_sorts, merge)

    @property
    def spills(self) -> bool:
        return self.runs() > 1

    @property
    def produces_sorted_output(self) -> bool:
        return True

    @property
    def produces_pairs(self) -> bool:
        return self.child.produces_pairs

    def recover_key(self, row: int, value) -> int:
        return self.child.recover_key(row, value)

    def cpu_cycles(self) -> float:
        n = self.child.output_region().n
        r = self.runs()
        run_n = -(-n // r)
        cycles = cpu_cycles("sort", n * sort_depth(run_n))
        if r > 1:
            cycles += cpu_cycles("merge_pass", n)
        return cycles

    def _run(self, db: Database) -> Column:
        column = self.child.execute(db)
        return external_merge_sort(db, column, self.memory_budget,
                                   output_name=self.output_region().name)

    def label(self) -> str:
        return f"external_sort(runs={self.runs()}, budget={self.memory_budget})"


class _JoinNode(PlanNode):
    """Shared behaviour of the binary join operators."""

    left: PlanNode
    right: PlanNode
    match_fraction: float

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def output_region(self) -> DataRegion:
        l, r = self.left.output_region(), self.right.output_region()
        n = max(1, int(min(l.n, r.n) * self.match_fraction))
        return DataRegion(f"({l.name}⋈{r.name})", n=n, w=OUTPUT_WIDTH)

    @property
    def produces_pairs(self) -> bool:
        return True

    def recover_key(self, row: int, value) -> int:
        outer = getattr(self, "_outer_values", None)
        if outer is None:
            raise RuntimeError(
                f"{type(self).__name__}.recover_key needs the join to have "
                "executed first"
            )
        return outer[value[0]]

    def _check_match_fraction(self) -> None:
        if not 0.0 < self.match_fraction <= 1.0:
            raise ValueError("match_fraction must be in (0, 1]")


@dataclass
class MergeJoinNode(_JoinNode):
    """Merge join; both inputs must already be sorted."""

    left: PlanNode
    right: PlanNode
    match_fraction: float = 1.0

    def __post_init__(self) -> None:
        self._check_match_fraction()

    def pattern(self) -> Pattern:
        return merge_join_pattern(self.left.output_region(),
                                  self.right.output_region(),
                                  self.output_region())

    @property
    def is_pipelined(self) -> bool:
        return True

    def pipelined_inputs(self) -> tuple[bool, ...]:
        return (True, True)

    @property
    def produces_sorted_output(self) -> bool:
        return True

    def cpu_cycles(self) -> float:
        return cpu_cycles("merge_join", self.left.output_region().n
                          + self.right.output_region().n)

    def _run(self, db: Database) -> Column:
        left = self.left.execute(db)
        right = self.right.execute(db)
        self._outer_values = left.values
        capacity = max(left.n, right.n, 1)
        return merge_join(db, left, right,
                          output_name=self.output_region().name,
                          output_capacity=capacity)

    def label(self) -> str:
        return "merge_join"


@dataclass
class HashJoinNode(_JoinNode):
    """Hash join (builds on the right/inner input).

    Two phases: *build* drains the inner input (streamed if the inner
    child pipelines) into the hash table; *probe* drains the outer input
    and streams the output.  Pipelined composition overlaps each input
    with its phase only — the probe never starts before the build ends.
    """

    left: PlanNode
    right: PlanNode
    match_fraction: float = 1.0

    def __post_init__(self) -> None:
        self._check_match_fraction()

    def _hash_region(self) -> DataRegion:
        return hash_table_region(self.right.output_region(),
                                 max_load=DEFAULT_HASH_MAX_LOAD)

    def pattern(self) -> Pattern:
        return hash_join_pattern(self.left.output_region(),
                                 self.right.output_region(),
                                 self.output_region(),
                                 H=self._hash_region())

    @property
    def is_pipelined(self) -> bool:
        return True

    def pipelined_inputs(self) -> tuple[bool, ...]:
        return (True, True)

    @property
    def produces_sorted_output(self) -> bool:
        # Output follows the outer (probe) order.
        return self.left.produces_sorted_output

    def cpu_cycles(self) -> float:
        return cpu_cycles("hash_join", self.left.output_region().n
                          + self.right.output_region().n)

    def compose(self, pipeline: bool = True) -> tuple[Pattern | None, Pattern | None]:
        if not pipeline:
            return super().compose(False)
        H = self._hash_region()
        build = hash_build_pattern(self.right.output_region(), H)
        probe = hash_probe_pattern(self.left.output_region(), H,
                                   self.output_region())
        prefix_parts: list[Pattern] = []
        prefix_parts.append(
            _compose_edge(self.right, build, prefix_parts, True))
        stream = _compose_edge(self.left, probe, prefix_parts, True)
        return _seq(*prefix_parts), stream

    def _run(self, db: Database) -> Column:
        left = self.left.execute(db)
        right = self.right.execute(db)
        self._outer_values = left.values
        capacity = max(left.n, right.n, 1)
        out, _ = hash_join(db, left, right,
                           output_name=self.output_region().name,
                           output_capacity=capacity)
        return out

    def label(self) -> str:
        return "hash_join"


@dataclass
class NestedLoopJoinNode(_JoinNode):
    """Nested-loop join: a full inner traversal per outer item.  The
    inner input must be materialized (it is rescanned)."""

    left: PlanNode
    right: PlanNode
    match_fraction: float = 1.0

    def __post_init__(self) -> None:
        self._check_match_fraction()

    def pattern(self) -> Pattern:
        return nested_loop_join_pattern(self.left.output_region(),
                                        self.right.output_region(),
                                        self.output_region())

    @property
    def is_pipelined(self) -> bool:
        return True

    def pipelined_inputs(self) -> tuple[bool, ...]:
        return (True, False)

    @property
    def produces_sorted_output(self) -> bool:
        return self.left.produces_sorted_output

    def cpu_cycles(self) -> float:
        return cpu_cycles("nested_loop_join",
                          self.left.output_region().n
                          * self.right.output_region().n)

    def _run(self, db: Database) -> Column:
        left = self.left.execute(db)
        right = self.right.execute(db)
        self._outer_values = left.values
        capacity = max(left.n, right.n, 1)
        return nested_loop_join(db, left, right,
                                output_name=self.output_region().name,
                                output_capacity=capacity)

    def label(self) -> str:
        return "nested_loop_join"


@dataclass
class PartitionedHashJoinNode(_JoinNode):
    """Partition both inputs into ``partitions`` clusters, then hash-join
    matching cluster pairs (paper Section 6.2, Figure 7e).  The partition
    count is injected by the optimizer (smallest count making each
    per-cluster hash table cache-resident)."""

    left: PlanNode
    right: PlanNode
    match_fraction: float = 1.0
    partitions: int = 2

    def __post_init__(self) -> None:
        self._check_match_fraction()
        if self.partitions < 2:
            raise ValueError("partitioned hash join needs >= 2 partitions "
                             "(use HashJoinNode for m = 1)")

    def _effective_partitions(self) -> int:
        l, r = self.left.output_region(), self.right.output_region()
        return max(1, min(self.partitions, l.n, r.n, self.output_region().n))

    def _phase_patterns(self) -> tuple[Pattern, Pattern, Pattern]:
        """(partition left, partition right, clustered joins)."""
        U = self.left.output_region()
        V = self.right.output_region()
        W = self.output_region()
        m = self._effective_partitions()
        PU = DataRegion(f"P({U.name})", n=U.n, w=U.w)
        PV = DataRegion(f"P({V.name})", n=V.n, w=V.w)
        V_parts = PV.split(m)
        H_regions = tuple(
            hash_table_region(v, max_load=DEFAULT_HASH_MAX_LOAD)
            for v in V_parts
        )
        joins = partitioned_hash_join_pattern(
            PU.split(m), V_parts, W.split(m), H_regions=H_regions
        )
        return (partition_pattern(U, PU, m),
                partition_pattern(V, PV, m),
                joins)

    def pattern(self) -> Pattern:
        part_l, part_r, joins = self._phase_patterns()
        return part_l + part_r + joins

    def pipelined_inputs(self) -> tuple[bool, ...]:
        # Each partition pass streams its input; the join phase starts
        # only after both passes finished, so the node itself blocks.
        return (True, True)

    def cpu_cycles(self) -> float:
        return cpu_cycles("partitioned_hash_join",
                          self.left.output_region().n
                          + self.right.output_region().n)

    def compose(self, pipeline: bool = True) -> tuple[Pattern | None, Pattern | None]:
        if not pipeline:
            return super().compose(False)
        part_l, part_r, joins = self._phase_patterns()
        prefix_parts: list[Pattern] = []
        for child, part_pass in ((self.left, part_l), (self.right, part_r)):
            prefix_parts.append(
                _compose_edge(child, part_pass, prefix_parts, True))
        prefix_parts.append(joins)
        return _seq(*prefix_parts), None

    def _run(self, db: Database) -> Column:
        left = self.left.execute(db)
        right = self.right.execute(db)
        # The cluster count the pattern was priced with, re-clamped only
        # by the actual input sizes (partition() needs m <= n).
        m = max(1, min(self._effective_partitions(), left.n, right.n))
        left_parts = partition(db, left, m)
        right_parts = partition(db, right, m)
        outputs, _ = join_partitions(
            db, left_parts, right_parts,
            output_name=self.output_region().name,
        )
        # Pairs are re-indexed to (global output row, local inner oid):
        # the cluster-local outer oid is ambiguous once clusters are
        # concatenated, and a global first component keeps key recovery
        # value-based (correct under filtering/reordering above).
        values: list = []
        keys: list[int] = []
        for out_col, outer_cluster in zip(outputs, left_parts.clusters):
            for pair in out_col.values:
                keys.append(outer_cluster.values[pair[0]])
                values.append((len(values), pair[1]))
        self._keys = keys
        # The cluster outputs already live in simulated memory (the W_j
        # regions of the pattern); this combined column is a zero-copy
        # view for the consumer, so its creation is not measured.
        return db.create_column(self.output_region().name, values,
                                width=OUTPUT_WIDTH)

    def recover_key(self, row: int, value) -> int:
        return self._keys[value[0]]

    def label(self) -> str:
        return f"partitioned_hash_join(m={self.partitions})"


@dataclass
class GraceHashJoinNode(_JoinNode):
    """Grace (spilling partitioned) hash join: partition both inputs
    until each per-partition hash table fits ``memory_budget``, then
    hash-join matching partition pairs.  The in-memory
    :class:`PartitionedHashJoinNode` picks its fan-out to make tables
    *cache*-resident; this node picks it to make them fit the working
    memory the engine is allowed at all — the paper's Section 7
    unification makes the two the same decision at different levels of
    the hierarchy."""

    left: PlanNode
    right: PlanNode
    match_fraction: float = 1.0
    memory_budget: int = 0

    def __post_init__(self) -> None:
        self._check_match_fraction()
        if self.memory_budget < 1:
            raise ValueError("memory_budget must be positive")

    def effective_partitions(self) -> int:
        # Clamped exactly like the engine (grace_hash_join): by the
        # input sizes only — a selective join's small *output* must not
        # collapse the model's fan-out while the engine still spills.
        V = self.right.output_region()
        H = hash_table_region(V, max_load=DEFAULT_HASH_MAX_LOAD)
        m = spill_partition_count(H.size, self.memory_budget)
        return max(1, min(m, self.left.output_region().n, V.n))

    @property
    def spills(self) -> bool:
        return self.effective_partitions() > 1

    def _phases(self):
        return grace_hash_join_phases(
            self.left.output_region(), self.right.output_region(),
            self.output_region(), self.memory_budget)

    def pattern(self) -> Pattern:
        phases = self._phases()
        if phases is None:
            V = self.right.output_region()
            H = hash_table_region(V, max_load=DEFAULT_HASH_MAX_LOAD)
            return hash_join_pattern(self.left.output_region(), V,
                                     self.output_region(), H=H)
        part_l, part_r, joins = phases
        return part_l + part_r + joins

    def pipelined_inputs(self) -> tuple[bool, ...]:
        # Each partition pass streams its input; the join phase starts
        # only after both passes finished, so the node itself blocks.
        return (True, True)

    def cpu_cycles(self) -> float:
        return cpu_cycles("partitioned_hash_join",
                          self.left.output_region().n
                          + self.right.output_region().n)

    def compose(self, pipeline: bool = True) -> tuple[Pattern | None, Pattern | None]:
        if not pipeline:
            return super().compose(False)
        phases = self._phases()
        if phases is None:
            return super().compose(True)
        part_l, part_r, joins = phases
        prefix_parts: list[Pattern] = []
        for child, part_pass in ((self.left, part_l), (self.right, part_r)):
            prefix_parts.append(
                _compose_edge(child, part_pass, prefix_parts, True))
        prefix_parts.append(joins)
        return _seq(*prefix_parts), None

    def _run(self, db: Database) -> Column:
        left = self.left.execute(db)
        right = self.right.execute(db)
        result = grace_hash_join(db, left, right, self.memory_budget,
                                 output_name=self.output_region().name)
        if not isinstance(result, GraceJoinResult):
            # No spill: the plain hash join ran; its pairs are
            # (outer row, inner payload), so the outer values list is
            # the key table (the _JoinNode convention).
            out, _ = result
            self._keys = left.values
            return out
        # Re-index cluster-local pairs to (global output row, local
        # inner oid), keeping key recovery value-based (same convention
        # as PartitionedHashJoinNode).
        values: list = []
        keys: list[int] = []
        for out_col, outer_cluster in zip(result.outputs,
                                          result.outer_parts.clusters):
            for pair in out_col.values:
                keys.append(outer_cluster.values[pair[0]])
                values.append((len(values), pair[1]))
        self._keys = keys
        return db.create_column(self.output_region().name, values,
                                width=OUTPUT_WIDTH)

    def recover_key(self, row: int, value) -> int:
        return self._keys[value[0]]

    def label(self) -> str:
        return (f"grace_hash_join(m={self.effective_partitions()}, "
                f"budget={self.memory_budget})")


@dataclass
class AggregateNode(PlanNode):
    """Hash-based group-count; ``groups`` is the oracle's group count.
    ``key_of`` extracts the grouping key from a stored value (join
    outputs store (outer oid, inner oid) pairs).

    Two phases: *consume* drains the input (streamed if the child
    pipelines), *emit* sweeps the group table — so only the consume
    phase ``⊙``-overlaps a pipelined producer.
    """

    child: PlanNode
    groups: int = 64
    key_of: Callable | None = None

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ValueError("groups must be positive")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        return DataRegion("agg", n=max(1, self.groups), w=16)

    def _group_region(self) -> DataRegion:
        return hash_table_region(
            DataRegion("G", n=self.groups, w=16),
            max_load=DEFAULT_HASH_MAX_LOAD, name="G",
        )

    def _phases(self) -> tuple[Pattern, Pattern]:
        return hash_aggregate_phases(self.child.output_region(),
                                     self._group_region(),
                                     self.output_region())

    def pattern(self) -> Pattern:
        consume, emit = self._phases()
        return consume + emit

    def pipelined_inputs(self) -> tuple[bool, ...]:
        return (True,)

    def cpu_cycles(self) -> float:
        return cpu_cycles("hash_aggregate", self.child.output_region().n)

    def compose(self, pipeline: bool = True) -> tuple[Pattern | None, Pattern | None]:
        if not pipeline:
            return super().compose(False)
        consume, emit = self._phases()
        prefix_parts: list[Pattern] = []
        prefix_parts.append(
            _compose_edge(self.child, consume, prefix_parts, True))
        prefix_parts.append(emit)
        return _seq(*prefix_parts), None

    def _run(self, db: Database) -> Column:
        source = self.child.execute(db)
        return hash_aggregate(db, source, groups_hint=self.groups,
                              key_of=self.key_of)

    def label(self) -> str:
        return f"aggregate(groups={self.groups})"


@dataclass
class SortAggregateNode(PlanNode):
    """Sort-based group-count: quick-sort the (materialized) input in
    place, then one sequential grouping pass.  Only applicable when the
    raw values are the grouping keys (no ``key_of`` extraction)."""

    child: PlanNode
    groups: int = 64
    stop_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ValueError("groups must be positive")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        return DataRegion("agg", n=max(1, self.groups), w=16)

    def pattern(self) -> Pattern:
        return sort_aggregate_pattern(self.child.output_region(),
                                      self.output_region(),
                                      stop_bytes=self.stop_bytes)

    @property
    def produces_sorted_output(self) -> bool:
        return True

    def cpu_cycles(self) -> float:
        n = self.child.output_region().n
        return (cpu_cycles("sort", n * sort_depth(n))
                + cpu_cycles("aggregate_pass", n))

    def _run(self, db: Database) -> Column:
        source = self.child.execute(db)
        return sort_aggregate(db, source)

    def label(self) -> str:
        return f"sort_aggregate(groups={self.groups})"


@dataclass
class SpillingAggregateNode(PlanNode):
    """Hash-based group-count under a group-table budget: partition the
    input by (extracted) grouping key until each per-partition group
    table fits ``memory_budget``, then hash-aggregate every partition.
    A key meets all its duplicates inside one partition, so the
    concatenated per-partition results are the exact group counts.

    Two phases like :class:`AggregateNode`: the *partition* pass drains
    the input (streamed if the child pipelines); the per-partition
    aggregates run after it."""

    child: PlanNode
    groups: int = 64
    memory_budget: int = 0
    key_of: Callable | None = None

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ValueError("groups must be positive")
        if self.memory_budget < 1:
            raise ValueError("memory_budget must be positive")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        return DataRegion("agg", n=max(1, self.groups), w=16)

    def _phases(self):
        return spilling_hash_aggregate_phases(
            self.child.output_region(), self.output_region(),
            self.groups, self.memory_budget)

    def pattern(self) -> Pattern:
        phases = self._phases()
        if phases is None:
            G = hash_table_region(
                DataRegion("G", n=self.groups, w=16),
                max_load=DEFAULT_HASH_MAX_LOAD, name="G")
            consume, emit = hash_aggregate_phases(
                self.child.output_region(), G, self.output_region())
            return consume + emit
        partition_pass, aggregates = phases
        return partition_pass + aggregates

    def effective_partitions(self) -> int:
        """The spill fan-out, without building the phase patterns —
        the same policy and clamps ``spilling_hash_aggregate_phases``
        applies."""
        G = hash_table_region(DataRegion("G", n=self.groups, w=16),
                              max_load=DEFAULT_HASH_MAX_LOAD, name="G")
        m = spill_partition_count(G.size, self.memory_budget)
        return max(1, min(m, self.child.output_region().n, self.groups))

    @property
    def spills(self) -> bool:
        return self.effective_partitions() > 1

    def pipelined_inputs(self) -> tuple[bool, ...]:
        return (True,)

    def cpu_cycles(self) -> float:
        n = self.child.output_region().n
        cycles = cpu_cycles("hash_aggregate", n)
        if self.spills:
            cycles += cpu_cycles("partition_pass", n)
        return cycles

    def compose(self, pipeline: bool = True) -> tuple[Pattern | None, Pattern | None]:
        if not pipeline:
            return super().compose(False)
        phases = self._phases()
        if phases is None:
            return super().compose(True)
        partition_pass, aggregates = phases
        prefix_parts: list[Pattern] = []
        prefix_parts.append(
            _compose_edge(self.child, partition_pass, prefix_parts, True))
        prefix_parts.append(aggregates)
        return _seq(*prefix_parts), None

    def _run(self, db: Database) -> Column:
        source = self.child.execute(db)
        return spilling_hash_aggregate(db, source, self.memory_budget,
                                       groups_hint=self.groups,
                                       key_of=self.key_of)

    def label(self) -> str:
        return (f"spilling_aggregate(groups={self.groups}, "
                f"budget={self.memory_budget})")


class QueryPlan:
    """A physical plan with derived whole-query costs."""

    def __init__(self, root: PlanNode) -> None:
        self.root = root
        self._patterns: dict[bool, Pattern] = {}

    def pattern(self, pipeline: bool = True) -> Pattern:
        """The whole plan's access pattern.  ``pipeline=True`` combines
        pipelined producer/consumer edges with ``⊙`` (Section 3.3);
        ``pipeline=False`` models every edge as materialization.

        Derived once per mode and cached (plan trees are not mutated
        after construction — the enumerator estimates many candidates)."""
        if pipeline not in self._patterns:
            pattern = self.root.full_pattern(pipeline)
            if pattern is None:
                raise ValueError(
                    "the plan performs no data access (bare scan)")
            self._patterns[pipeline] = pattern
        return self._patterns[pipeline]

    def pipeline_stages(self, pipeline: bool = True) -> tuple[Pattern, ...]:
        """The plan's pattern as its top-level ``⊕`` stages, in
        execution order.

        Each stage is one barrier-separated phase of the plan — a
        pipeline of ``⊙``-overlapped operators, or a single blocking
        operator's pass.  One stage at a time occupies the cache, which
        is why a plan's footprint under external ``⊙`` composition is
        its *maximum* stage footprint, not the sum: this is the
        extraction hook the concurrent workload service composes co-run
        candidates from."""
        pattern = self.pattern(pipeline)
        if isinstance(pattern, Seq):
            return pattern.parts
        return (pattern,)

    def cpu_cycles(self) -> float:
        """Whole-plan calibrated CPU cycles (shared Eq. 6.1 constants)."""
        return sum(node.cpu_cycles() for node in self.root.walk())

    def estimate(self, model: CostModel, cpu_ns: float | None = None,
                 pipeline: bool = True) -> CostEstimate:
        """Whole-plan cost.  ``cpu_ns=None`` derives the CPU term from
        the shared per-operator calibration; pass an explicit value (or
        ``0.0`` for memory cost only) to override."""
        if cpu_ns is None:
            cpu_ns = model.hierarchy.nanoseconds(self.cpu_cycles())
        return model.estimate(self.pattern(pipeline), cpu_ns=cpu_ns)

    def execute(self, db: Database) -> Column:
        return self.root.execute(db)

    def explanation(self, model: CostModel, pipeline: bool = True,
                    signature: str | None = None,
                    cache_hit: bool | None = None) -> "Explanation":
        """This plan's typed :class:`~repro.query.Explanation`: the
        operator tree with per-node pattern notation, spill flags, and
        per-cache-level predictions (standalone and state-threaded),
        plus the pipeline-aware whole-plan totals."""
        from .observe import Explanation
        return Explanation.from_plan(self, model, pipeline=pipeline,
                                     signature=signature,
                                     cache_hit=cache_hit)

    def explain(self, model: CostModel, pipeline: bool = True,
                notation_width: int = 48) -> str:
        """Per-operator predicted memory cost and pattern notation,
        post-order, plus the pipeline-aware whole-plan total broken
        down per cache level (including a buffer pool, if the profile
        has one).  Spilling operators are marked ``[spill]``.

        Rendered via :meth:`explanation` — prefer that for anything
        machine-readable; this is its ``to_text()``."""
        return self.explanation(model, pipeline=pipeline).to_text(
            notation_width=notation_width)
