"""Deprecated backward-compatibility shim.

The single-module plan layer grew into a package: logical algebra in
:mod:`repro.query.logical`, physical operators in
:mod:`repro.query.physical`, and the cost-driven plan enumerator in
:mod:`repro.query.optimizer`.  Importing any of the moved names from
here still works but emits a :class:`DeprecationWarning` pointing at the
new home.
"""

from __future__ import annotations

import warnings

from . import physical as _physical

__all__ = [
    "PlanNode",
    "ScanNode",
    "SelectNode",
    "ProjectNode",
    "SortNode",
    "MergeJoinNode",
    "HashJoinNode",
    "NestedLoopJoinNode",
    "PartitionedHashJoinNode",
    "AggregateNode",
    "SortAggregateNode",
    "QueryPlan",
]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.query.plan is deprecated: import {name} from "
            "repro.query.physical (plan enumeration lives in "
            "repro.query.optimizer)",
            DeprecationWarning, stacklevel=2)
        return getattr(_physical, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
