"""Backward-compatibility shim.

The single-module plan layer grew into a package: logical algebra in
:mod:`repro.query.logical`, physical operators in
:mod:`repro.query.physical`, and the cost-driven plan enumerator in
:mod:`repro.query.optimizer`.  This module re-exports the physical names
so existing ``from repro.query.plan import ...`` imports keep working.
"""

from .physical import (
    AggregateNode,
    HashJoinNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    PartitionedHashJoinNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    ScanNode,
    SelectNode,
    SortAggregateNode,
    SortNode,
)

__all__ = [
    "PlanNode",
    "ScanNode",
    "SelectNode",
    "ProjectNode",
    "SortNode",
    "MergeJoinNode",
    "HashJoinNode",
    "NestedLoopJoinNode",
    "PartitionedHashJoinNode",
    "AggregateNode",
    "SortAggregateNode",
    "QueryPlan",
]
