"""Whole-query composition (paper Section 6: "Extension to further
operations and whole queries is straight forward, as it just means
applying the same techniques to combine access patterns").

A physical plan is a tree of operator nodes.  Each node knows

* how to **execute** against the engine (producing real columns and a
  real access trace in the simulator), and
* how to **describe** its data access as a pattern, given the regions
  of its inputs — so the whole plan's cost function is the ``⊕``
  combination of its operators' patterns, derived automatically.

Cardinalities come from the logical cost component, which the paper
assumes to be a perfect oracle; nodes take explicit selectivity/
cardinality hints for the same effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..core.algorithms import (
    hash_aggregate_pattern,
    hash_join_pattern,
    merge_join_pattern,
    quick_sort_pattern,
    select_pattern,
)
from ..core.cost import CostEstimate, CostModel
from ..core.patterns import Pattern, Seq
from ..core.regions import DataRegion
from ..db.aggregate import hash_aggregate
from ..db.column import Column
from ..db.context import Database
from ..db.hashtable import SimHashTable
from ..db.join import OUTPUT_WIDTH, hash_join, merge_join
from ..db.scan import select
from ..db.sort import quick_sort

__all__ = [
    "PlanNode",
    "ScanNode",
    "SelectNode",
    "SortNode",
    "MergeJoinNode",
    "HashJoinNode",
    "AggregateNode",
    "QueryPlan",
]


class PlanNode:
    """Base class of physical plan operators."""

    def output_region(self) -> DataRegion:
        """The (oracle-estimated) region this node produces."""
        raise NotImplementedError

    def pattern(self) -> Pattern | None:
        """This node's own data access pattern (excluding children).
        ``None`` for nodes that perform no access of their own."""
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def execute(self, db: Database) -> Column:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    # ------------------------------------------------------------------
    def full_pattern(self) -> Pattern | None:
        """The whole sub-plan's pattern: children first (left to right),
        then this operator — all ``⊕``-combined (pipelining is modelled
        conservatively as materialisation, as the paper's operator
        patterns do).  ``None`` for access-free sub-plans (bare scans)."""
        parts = [child.full_pattern() for child in self.children()]
        own = self.pattern()
        if own is not None:
            parts.append(own)
        parts = [p for p in parts if p is not None]
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return Seq.of(*parts)


@dataclass
class ScanNode(PlanNode):
    """A base-table column (no access of its own: consumers read it)."""

    column: Column

    def output_region(self) -> DataRegion:
        return self.column.region()

    def pattern(self) -> Pattern | None:
        # The scan itself is folded into the consuming operator's
        # sequential input sweep; a bare scan costs nothing extra.
        return None

    def execute(self, db: Database) -> Column:
        return self.column

    def label(self) -> str:
        return f"scan({self.column.name})"


@dataclass
class SelectNode(PlanNode):
    """Filter; ``selectivity`` is the oracle's output fraction."""

    child: PlanNode
    predicate: Callable[[int], bool]
    selectivity: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError("selectivity must be in (0, 1]")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        src = self.child.output_region()
        n = max(1, int(src.n * self.selectivity))
        return DataRegion(f"σ({src.name})", n=n, w=src.w)

    def pattern(self) -> Pattern:
        return select_pattern(self.child.output_region(), self.output_region())

    def execute(self, db: Database) -> Column:
        source = self.child.execute(db)
        return select(db, source, self.predicate,
                      output_name=self.output_region().name)

    def label(self) -> str:
        return f"select(sel={self.selectivity})"


@dataclass
class SortNode(PlanNode):
    """In-place quick-sort of the child's output."""

    child: PlanNode
    stop_bytes: int | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        src = self.child.output_region()
        return DataRegion(f"sort({src.name})", n=src.n, w=src.w)

    def pattern(self) -> Pattern:
        return quick_sort_pattern(self.child.output_region(),
                                  stop_bytes=self.stop_bytes)

    def execute(self, db: Database) -> Column:
        column = self.child.execute(db)
        quick_sort(db, column)
        return column

    def label(self) -> str:
        return "sort"


@dataclass
class MergeJoinNode(PlanNode):
    """Merge join; both inputs must already be sorted."""

    left: PlanNode
    right: PlanNode
    match_fraction: float = 1.0

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def output_region(self) -> DataRegion:
        l, r = self.left.output_region(), self.right.output_region()
        n = max(1, int(min(l.n, r.n) * self.match_fraction))
        return DataRegion(f"({l.name}⋈{r.name})", n=n, w=OUTPUT_WIDTH)

    def pattern(self) -> Pattern:
        return merge_join_pattern(self.left.output_region(),
                                  self.right.output_region(),
                                  self.output_region())

    def execute(self, db: Database) -> Column:
        left = self.left.execute(db)
        right = self.right.execute(db)
        capacity = max(left.n, right.n, 1)
        return merge_join(db, left, right,
                          output_name=self.output_region().name,
                          output_capacity=capacity)

    def label(self) -> str:
        return "merge_join"


@dataclass
class HashJoinNode(PlanNode):
    """Hash join (builds on the right/inner input)."""

    left: PlanNode
    right: PlanNode
    match_fraction: float = 1.0

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def output_region(self) -> DataRegion:
        l, r = self.left.output_region(), self.right.output_region()
        n = max(1, int(min(l.n, r.n) * self.match_fraction))
        return DataRegion(f"({l.name}⋈{r.name})", n=n, w=OUTPUT_WIDTH)

    def _hash_region(self) -> DataRegion:
        inner = self.right.output_region()
        capacity = 1
        while capacity * 0.5 < inner.n:
            capacity *= 2
        return DataRegion(f"H({inner.name})", n=capacity, w=16)

    def pattern(self) -> Pattern:
        return hash_join_pattern(self.left.output_region(),
                                 self.right.output_region(),
                                 self.output_region(),
                                 H=self._hash_region())

    def execute(self, db: Database) -> Column:
        left = self.left.execute(db)
        right = self.right.execute(db)
        capacity = max(left.n, right.n, 1)
        out, _ = hash_join(db, left, right,
                           output_name=self.output_region().name,
                           output_capacity=capacity)
        return out

    def label(self) -> str:
        return "hash_join"


@dataclass
class AggregateNode(PlanNode):
    """Hash-based group-count; ``groups`` is the oracle's group count.
    ``key_of`` extracts the grouping key from a stored value (join
    outputs store (outer oid, inner oid) pairs)."""

    child: PlanNode
    groups: int = 64
    key_of: Callable | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        return DataRegion("agg", n=max(1, self.groups), w=16)

    def _group_region(self) -> DataRegion:
        capacity = 1
        while capacity < self.groups * 2:
            capacity *= 2
        return DataRegion("G", n=capacity, w=16)

    def pattern(self) -> Pattern:
        return hash_aggregate_pattern(self.child.output_region(),
                                      self._group_region(),
                                      self.output_region())

    def execute(self, db: Database) -> Column:
        source = self.child.execute(db)
        return hash_aggregate(db, source, groups_hint=self.groups,
                              key_of=self.key_of)

    def label(self) -> str:
        return f"aggregate(groups={self.groups})"


class QueryPlan:
    """A physical plan with derived whole-query costs."""

    def __init__(self, root: PlanNode) -> None:
        self.root = root

    def pattern(self) -> Pattern:
        pattern = self.root.full_pattern()
        if pattern is None:
            raise ValueError("the plan performs no data access (bare scan)")
        return pattern

    def estimate(self, model: CostModel, cpu_ns: float = 0.0) -> CostEstimate:
        return model.estimate(self.pattern(), cpu_ns=cpu_ns)

    def execute(self, db: Database) -> Column:
        return self.root.execute(db)

    def explain(self, model: CostModel) -> str:
        """Per-operator predicted memory cost, post-order."""
        lines = ["plan (post-order):"]

        def visit(node: PlanNode, depth: int) -> None:
            for child in node.children():
                visit(child, depth + 1)
            own = node.pattern()
            cost = 0.0 if own is None else model.estimate(own).memory_ns
            lines.append(f"  {'  ' * depth}{node.label():<28}"
                         f"T_mem {cost / 1e3:>10.1f} us   "
                         f"out n={node.output_region().n}")

        visit(self.root, 0)
        total = self.estimate(model).memory_ns
        lines.append(f"  {'total':<30}T_mem {total / 1e3:>10.1f} us")
        return "\n".join(lines)
