"""Typed observability surface: explanations and measured results.

The paper's central deliverable is *per-formula* validation — every cost
function is judged by predicted-vs-measured curves, not whole-plan
totals.  This module gives the repro's public surface exactly that
granularity as machine-readable objects instead of opaque strings and
bare tuples:

* :class:`Explanation` — a tree mirroring the physical plan.  Per node:
  operator label, pattern notation, spill flag, and the per-cache-level
  seq/rand/time predictions, both *standalone* (the node's own pattern
  on a cold cache, which is what the classic ``explain`` text prints)
  and *attributed* (state-threaded in execution order, Eqs. 5.1/5.2 —
  what a measured materialized execution should match).
  :meth:`Explanation.to_text` reproduces the legacy ``explain`` string
  byte for byte; :meth:`Explanation.to_json` /
  :meth:`Explanation.from_json` round-trip losslessly.
* :class:`QueryResult` — the result column plus plan provenance
  (explanation, signature, plan-cache hit/miss) and wall/simulated time.
* :class:`MeasuredResult` — a :class:`QueryResult` that additionally
  carries the whole-plan counter delta and a per-operator measured
  attribution (:class:`OperatorMeasurement`), captured by scoping every
  :meth:`PlanNode.execute <repro.query.PlanNode.execute>` in simulator
  snapshot deltas — every query becomes a paper-style model-vs-measured
  experiment at operator granularity.  Per-operator *exclusive* deltas
  sum exactly to the whole-plan counters.  Legacy tuple unpacking
  (``column, counters = result``) still works via :meth:`__iter__`,
  with a :class:`DeprecationWarning`.

The module is deliberately independent of the optimizer: plans are
duck-typed (``root``/``walk``/``pattern``/``estimate``), signatures are
passed in by callers that know them.
"""

from __future__ import annotations

import time
import warnings
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..core.cost import CostEstimate, CostModel
from ..db.column import Column
from ..db.context import Database
from ..simulator.counters import CounterSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .physical import QueryPlan

__all__ = [
    "LevelPrediction",
    "ExplanationNode",
    "Explanation",
    "OperatorMeasurement",
    "QueryResult",
    "MeasuredResult",
    "measure_plan",
    "capture_measured",
    "execute_result",
]


# ----------------------------------------------------------------------
# predictions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LevelPrediction:
    """Predicted sequential/random misses and time of one cache level."""

    name: str
    seq: float
    rand: float
    time_ns: float

    @property
    def total(self) -> float:
        """Total predicted misses (seq + rand)."""
        return self.seq + self.rand

    def to_json(self) -> dict:
        return {"name": self.name, "seq": self.seq, "rand": self.rand,
                "time_ns": self.time_ns}

    @classmethod
    def from_json(cls, data: dict) -> "LevelPrediction":
        return cls(name=data["name"], seq=data["seq"], rand=data["rand"],
                   time_ns=data["time_ns"])


def _levels_of(estimate: CostEstimate) -> tuple[LevelPrediction, ...]:
    return tuple(
        LevelPrediction(name=lc.name, seq=lc.misses.seq,
                        rand=lc.misses.rand, time_ns=lc.time_ns)
        for lc in estimate.levels
    )


@dataclass(frozen=True)
class ExplanationNode:
    """One operator of an explained plan.

    ``memory_ns``/``levels`` price the node's own pattern standalone on
    a cold cache — the numbers the classic ``explain`` text prints.
    ``attributed_memory_ns``/``attributed_levels`` price the same
    pattern with the cache state every *preceding* operator (in
    execution order) left behind, which is the prediction a measured
    cold materialized execution should match per operator.
    """

    operator: str
    pattern: str | None
    spill: bool
    output_n: int
    memory_ns: float
    levels: tuple[LevelPrediction, ...]
    attributed_memory_ns: float
    attributed_levels: tuple[LevelPrediction, ...]
    children: tuple["ExplanationNode", ...] = ()

    def nodes(self) -> Iterator["ExplanationNode"]:
        """All nodes of this subtree, post-order (execution order —
        aligned with :meth:`repro.query.PlanNode.walk`)."""
        for child in self.children:
            yield from child.nodes()
        yield self

    def to_json(self) -> dict:
        return {
            "operator": self.operator,
            "pattern": self.pattern,
            "spill": self.spill,
            "output_n": self.output_n,
            "memory_ns": self.memory_ns,
            "levels": [lv.to_json() for lv in self.levels],
            "attributed_memory_ns": self.attributed_memory_ns,
            "attributed_levels": [lv.to_json()
                                  for lv in self.attributed_levels],
            "children": [child.to_json() for child in self.children],
        }

    @classmethod
    def from_json(cls, data: dict) -> "ExplanationNode":
        return cls(
            operator=data["operator"],
            pattern=data["pattern"],
            spill=data["spill"],
            output_n=data["output_n"],
            memory_ns=data["memory_ns"],
            levels=tuple(LevelPrediction.from_json(lv)
                         for lv in data["levels"]),
            attributed_memory_ns=data["attributed_memory_ns"],
            attributed_levels=tuple(LevelPrediction.from_json(lv)
                                    for lv in data["attributed_levels"]),
            children=tuple(cls.from_json(child)
                           for child in data["children"]),
        )


@dataclass(frozen=True)
class Explanation:
    """A physical plan's predicted cost breakdown, as a typed tree.

    ``levels``/``memory_ns`` are the pipeline-aware whole-plan totals
    (``⊙`` across pipelined edges when ``pipeline`` is true);
    ``cpu_ns`` is the calibrated pure-CPU term (Eq. 6.1).
    ``cache_hit`` records the compile's plan-cache provenance when the
    explaining caller knows it (``None`` otherwise — e.g. a bare
    :meth:`QueryPlan.explain <repro.query.QueryPlan.explanation>`).
    """

    root: ExplanationNode
    memory_ns: float
    cpu_ns: float
    levels: tuple[LevelPrediction, ...]
    pipeline: bool = True
    signature: str | None = None
    cache_hit: bool | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_plan(cls, plan: "QueryPlan", model: CostModel,
                  pipeline: bool = True, signature: str | None = None,
                  cache_hit: bool | None = None) -> "Explanation":
        """Explain ``plan`` under ``model``.

        Builds per-node standalone estimates (what the text rendering
        prints), per-node state-threaded attribution
        (:meth:`CostModel.sequential_estimates
        <repro.core.CostModel.sequential_estimates>` over the operators
        in execution order), and the pipeline-aware whole-plan totals.
        """
        # One attribution slot per *tree position* (walk may yield a
        # shared node instance once per position — it executes once per
        # position too), threaded in execution order.
        attributed = model.sequential_estimates(
            [node.pattern() for node in plan.root.walk()])
        position = iter(attributed)

        def build(node) -> ExplanationNode:
            # children first: build() assigns post-order positions,
            # matching walk() and the execution order exactly
            children = tuple(build(child) for child in node.children())
            own = node.pattern()
            if own is None:
                standalone = CostEstimate(levels=())
                notation = None
            else:
                standalone = model.estimate(own)
                notation = own.notation()
            threaded = next(position)
            return ExplanationNode(
                operator=node.label(),
                pattern=notation,
                spill=node.spills,
                output_n=node.output_region().n,
                memory_ns=standalone.memory_ns,
                levels=_levels_of(standalone),
                attributed_memory_ns=threaded.memory_ns,
                attributed_levels=_levels_of(threaded),
                children=children,
            )

        try:
            total = plan.estimate(model, cpu_ns=0.0, pipeline=pipeline)
        except ValueError:  # access-free plan (bare scan)
            total = CostEstimate(levels=())
        return cls(
            root=build(plan.root),
            memory_ns=total.memory_ns,
            cpu_ns=model.hierarchy.nanoseconds(plan.cpu_cycles()),
            levels=_levels_of(total),
            pipeline=pipeline,
            signature=signature,
            cache_hit=cache_hit,
        )

    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[ExplanationNode]:
        """All operator nodes, post-order (execution order)."""
        return self.root.nodes()

    def level(self, name: str) -> LevelPrediction:
        """The whole-plan prediction for the named cache level."""
        for lv in self.levels:
            if lv.name == name:
                return lv
        raise KeyError(f"no level named {name!r}")

    @property
    def total_ns(self) -> float:
        """Predicted total time ``T = T_mem + T_cpu`` (Eq. 6.1)."""
        return self.memory_ns + self.cpu_ns

    # ------------------------------------------------------------------
    def to_text(self, notation_width: int = 48) -> str:
        """The classic ``explain`` rendering, byte-identical to the
        string API it replaces: per-operator standalone cost and
        (clipped) pattern notation post-order, ``[spill]`` markers, the
        pipeline-aware total broken down per cache level, and — when
        provenance is known — the plan-cache hit/miss line."""
        lines = ["plan (post-order):"]

        def clip(text: str) -> str:
            if len(text) <= notation_width:
                return text
            return text[: notation_width - 1] + "…"

        def visit(node: ExplanationNode, depth: int) -> None:
            for child in node.children:
                visit(child, depth + 1)
            notation = "—" if node.pattern is None else clip(node.pattern)
            marker = "[spill] " if node.spill else ""
            lines.append(f"  {'  ' * depth}{node.operator:<28}"
                         f"T_mem {node.memory_ns / 1e3:>10.1f} us   "
                         f"out n={node.output_n:<8} "
                         f"{marker}{notation}")

        visit(self.root, 0)
        lines.append(f"  {'total':<30}T_mem "
                     f"{self.memory_ns / 1e3:>10.1f} us")
        for lv in self.levels:
            lines.append(f"    {lv.name:<12} seq {lv.seq:>10.0f}  "
                         f"rand {lv.rand:>10.0f}  "
                         f"T {lv.time_ns / 1e3:>10.1f} us")
        if self.cache_hit is not None:
            lines.append(
                f"  plan cache: {'hit' if self.cache_hit else 'miss'}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """A JSON-serializable dict; :meth:`from_json` inverts it."""
        return {
            "kind": "explanation",
            "pipeline": self.pipeline,
            "signature": self.signature,
            "cache_hit": self.cache_hit,
            "memory_ns": self.memory_ns,
            "cpu_ns": self.cpu_ns,
            "levels": [lv.to_json() for lv in self.levels],
            "root": self.root.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Explanation":
        if data.get("kind") != "explanation":
            raise ValueError(
                f"not an explanation payload: kind={data.get('kind')!r}")
        return cls(
            root=ExplanationNode.from_json(data["root"]),
            memory_ns=data["memory_ns"],
            cpu_ns=data["cpu_ns"],
            levels=tuple(LevelPrediction.from_json(lv)
                         for lv in data["levels"]),
            pipeline=data["pipeline"],
            signature=data["signature"],
            cache_hit=data["cache_hit"],
        )


# ----------------------------------------------------------------------
# measurements
# ----------------------------------------------------------------------

def _counters_json(snapshot: CounterSnapshot) -> dict:
    return {
        "elapsed_ns": snapshot.elapsed_ns,
        "accesses": snapshot.accesses,
        "levels": snapshot.as_dict(),
    }


@dataclass(frozen=True)
class OperatorMeasurement:
    """One operator's measured counters next to its model prediction.

    ``counters`` is the operator's *exclusive* delta — its own accesses,
    children subtracted — so a plan's measurements sum to the whole-plan
    counters.  The prediction is the state-threaded attribution
    (:attr:`ExplanationNode.attributed_levels`), i.e. what this operator
    should cost given everything that ran before it.
    """

    operator: str
    spill: bool
    predicted_memory_ns: float
    predicted_levels: tuple[LevelPrediction, ...]
    counters: CounterSnapshot

    @property
    def measured_ns(self) -> float:
        """Measured memory-access time of this operator alone."""
        return self.counters.elapsed_ns

    def predicted_misses(self, name: str) -> float:
        for lv in self.predicted_levels:
            if lv.name == name:
                return lv.total
        raise KeyError(f"no level named {name!r}")

    def measured_misses(self, name: str) -> int:
        return self.counters.misses(name)

    def to_json(self) -> dict:
        return {
            "operator": self.operator,
            "spill": self.spill,
            "predicted_memory_ns": self.predicted_memory_ns,
            "predicted_levels": [lv.to_json()
                                 for lv in self.predicted_levels],
            "measured": _counters_json(self.counters),
        }


class QueryResult:
    """A query's result column plus its provenance and timing.

    Parameters
    ----------
    column:
        The result :class:`~repro.db.Column`.
    explanation:
        The chosen plan's :class:`Explanation` (carries the signature
        and the per-operator predictions).
    cache_hit:
        Whether the compile was served from the plan cache (``None``
        when unknown, e.g. constructed outside a session).
    wall_seconds:
        Real (Python-level) execution time.
    simulated_ns:
        Simulated memory-access time the execution added to the
        engine's clock.
    """

    def __init__(self, column: Column, explanation: Explanation,
                 cache_hit: bool | None, wall_seconds: float,
                 simulated_ns: float) -> None:
        self.column = column
        self.explanation = explanation
        self.cache_hit = cache_hit
        self.wall_seconds = wall_seconds
        self.simulated_ns = simulated_ns

    # ------------------------------------------------------------------
    @property
    def values(self) -> list:
        """The result values (result-column convenience)."""
        return self.column.values

    @property
    def signature(self) -> str | None:
        """The chosen plan's one-line shape."""
        return self.explanation.signature

    @property
    def predicted_ns(self) -> float:
        """The pipeline-aware predicted memory time of the plan."""
        return self.explanation.memory_ns

    def __len__(self) -> int:
        return len(self.column.values)

    def _json_values(self) -> list:
        return [list(v) if isinstance(v, tuple) else v
                for v in self.column.values]

    def to_json(self, include_values: bool = False) -> dict:
        """A JSON-serializable dict of the result: row count, timing,
        provenance, and the full explanation (the one serialization
        path results, benches, and reports share).  ``include_values``
        embeds the result values (join pairs become 2-lists)."""
        out = {
            "kind": "query_result",
            "rows": len(self.column.values),
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
            "simulated_ns": self.simulated_ns,
            "explanation": self.explanation.to_json(),
        }
        if include_values:
            out["values"] = self._json_values()
        return out

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.signature!r}, "
                f"rows={len(self.column.values)}, "
                f"simulated={self.simulated_ns / 1e3:.1f}us)")


class MeasuredResult(QueryResult):
    """A :class:`QueryResult` with measured counters attached.

    ``counters`` is the whole-plan delta; ``operators`` the per-operator
    exclusive attribution in execution (post-order) order.  Iterating
    yields ``(column, counters)`` for backward-compatible tuple
    unpacking — deprecated; read :attr:`column` and :attr:`counters`.
    """

    def __init__(self, column: Column, explanation: Explanation,
                 cache_hit: bool | None, wall_seconds: float,
                 counters: CounterSnapshot,
                 operators: tuple[OperatorMeasurement, ...]) -> None:
        super().__init__(column, explanation, cache_hit, wall_seconds,
                         simulated_ns=counters.elapsed_ns)
        self.counters = counters
        self.operators = operators

    def __iter__(self) -> Iterator:
        """Legacy ``column, counters = result`` unpacking.

        .. deprecated:: 1.2
           ``execute_measured`` used to return a bare
           ``(Column, CounterSnapshot)`` tuple; unpacking keeps working
           for one release.  Migrate to the named attributes
           ``result.column`` and ``result.counters`` (and gain
           ``result.operators`` / ``result.explanation``).
        """
        warnings.warn(
            "tuple unpacking of a MeasuredResult is deprecated; use "
            ".column and .counters (per-operator attribution is in "
            ".operators)", DeprecationWarning, stacklevel=2)
        yield self.column
        yield self.counters

    @property
    def measured_ns(self) -> float:
        """Measured whole-plan memory-access time."""
        return self.counters.elapsed_ns

    @property
    def error(self) -> float:
        """Relative error of the predicted memory time against the
        measurement (0 when nothing was measured)."""
        if self.measured_ns <= 0:
            return 0.0
        return abs(self.predicted_ns - self.measured_ns) / self.measured_ns

    def attribution_table(self) -> str:
        """A per-operator predicted-vs-measured text table (T_mem)."""
        lines = [f"{'operator':<44}{'pred us':>10}{'meas us':>10}"
                 f"{'error':>8}"]
        for op in self.operators:
            if op.predicted_memory_ns == 0.0 and op.measured_ns == 0.0:
                continue
            err = (abs(op.predicted_memory_ns - op.measured_ns)
                   / op.measured_ns if op.measured_ns > 0 else 0.0)
            marker = "[spill] " if op.spill else ""
            lines.append(f"{marker + op.operator:<44}"
                         f"{op.predicted_memory_ns / 1e3:>10.1f}"
                         f"{op.measured_ns / 1e3:>10.1f}"
                         f"{err * 100:>7.1f}%")
        lines.append(f"{'whole plan (pipeline-aware)':<44}"
                     f"{self.predicted_ns / 1e3:>10.1f}"
                     f"{self.measured_ns / 1e3:>10.1f}"
                     f"{self.error * 100:>7.1f}%")
        return "\n".join(lines)

    def to_json(self, include_values: bool = False) -> dict:
        out = super().to_json(include_values=include_values)
        out["kind"] = "measured_result"
        out["measured"] = _counters_json(self.counters)
        out["operators"] = [op.to_json() for op in self.operators]
        return out


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------

def _exclusive_deltas(records) -> list[tuple[object, CounterSnapshot]]:
    """Per-execution exclusive counter deltas, in post-order.

    ``records`` holds one ``(node, inclusive delta)`` pair per operator
    *execution*, appended at completion — which is exactly the order
    :meth:`PlanNode.walk <repro.query.PlanNode.walk>` yields tree
    positions, including a shared node instance executed once per
    position.  A stack reconstruction subtracts each execution's own
    children, so attribution never keys on object identity (a node
    reused across tree positions gets each execution attributed to its
    position, not last-write-wins)."""
    stack: list[tuple[object, CounterSnapshot]] = []
    out: list[tuple[object, CounterSnapshot]] = []
    for node, inclusive in records:
        children = node.children()
        exclusive = inclusive
        if children:
            tail = stack[-len(children):]
            if len(tail) != len(children) or any(
                    recorded is not child
                    for (recorded, _), child in zip(tail, children)):
                raise ValueError(
                    f"per-operator measurement incomplete under "
                    f"{node.label()}: a child execution did not report "
                    "to the operator probe (PlanNode subclasses must "
                    "implement _run(); execute() is the instrumented "
                    "wrapper)")
            for _, child_inclusive in tail:
                exclusive = exclusive - child_inclusive
            del stack[-len(children):]
        stack.append((node, inclusive))
        out.append((node, exclusive))
    if len(stack) != 1 and records:
        raise ValueError(
            "per-operator measurement incomplete: "
            f"{len(stack)} unconsumed operator records")
    return out


def execute_result(db: Database, plan: "QueryPlan",
                   explanation: Explanation,
                   restoring=None) -> QueryResult:
    """Execute ``plan`` and wrap it as a :class:`QueryResult` with
    wall/simulated timing — the one assembly behind ``Session.run`` and
    ``PreparedStatement.run`` (provenance rides on ``explanation``).
    ``restoring`` is an optional context manager held around the
    execution (column snapshot/restore)."""
    start = time.perf_counter()
    before_ns = db.mem.elapsed_ns
    with (restoring if restoring is not None else nullcontext()):
        column = db.execute(plan)
    return QueryResult(
        column=column,
        explanation=explanation,
        cache_hit=explanation.cache_hit,
        wall_seconds=time.perf_counter() - start,
        simulated_ns=db.mem.elapsed_ns - before_ns,
    )


def capture_measured(db: Database, plan: "QueryPlan",
                     explanation: Explanation,
                     cold: bool = True) -> MeasuredResult:
    """Execute ``plan`` with whole-plan *and* per-operator measurement.

    Activates the database's operator probe so every
    :meth:`PlanNode.execute <repro.query.PlanNode.execute>` wraps its
    run in simulator snapshots, then pairs each operator's exclusive
    delta (children subtracted) with the matching node of
    ``explanation`` — which must have been built from the same plan.
    ``cold=True`` resets caches and counters first (the model's
    empty-initial-state setting, which the attributed predictions
    assume).
    """
    start = time.perf_counter()
    if cold:
        db.reset()
    with db.operator_measurement() as records:
        with db.measure() as result:
            column = plan.execute(db)
    wall = time.perf_counter() - start
    counters = result[0]
    exclusives = _exclusive_deltas(records)
    explained_nodes = list(explanation.nodes())
    if len(exclusives) != len(explained_nodes):
        raise ValueError(
            f"per-operator measurement incomplete: {len(exclusives)} "
            f"operator executions reported for {len(explained_nodes)} "
            "plan operators (PlanNode subclasses must implement _run(); "
            "execute() is the instrumented wrapper)")
    operators = []
    for (node, exclusive), explained in zip(exclusives, explained_nodes):
        operators.append(OperatorMeasurement(
            operator=explained.operator,
            spill=explained.spill,
            predicted_memory_ns=explained.attributed_memory_ns,
            predicted_levels=explained.attributed_levels,
            counters=exclusive,
        ))
    return MeasuredResult(
        column=column,
        explanation=explanation,
        cache_hit=explanation.cache_hit,
        wall_seconds=wall,
        counters=counters,
        operators=tuple(operators),
    )


def measure_plan(db: Database, plan: "QueryPlan", model: CostModel,
                 pipeline: bool = True, cold: bool = True,
                 signature: str | None = None,
                 cache_hit: bool | None = None) -> MeasuredResult:
    """Explain and execute ``plan`` in one measured pass — the
    session-less entry point (benches, the workload service) to the
    same typed result the session façade returns."""
    explanation = Explanation.from_plan(plan, model, pipeline=pipeline,
                                        signature=signature,
                                        cache_hit=cache_hit)
    return capture_measured(db, plan, explanation, cold=cold)
