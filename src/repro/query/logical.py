"""Logical relational algebra with a cardinality oracle.

The paper assumes "a perfect oracle to predict the data volumes"; the
logical layer carries that oracle as explicit hints (selectivity, match
fraction, group count) so the optimizer can derive the regions of every
intermediate result *before* choosing physical operators for it.

A logical tree says **what** to compute::

    Aggregate(Join(Filter(Relation(orders), p, 0.5), Relation(customers)),
              groups=64)

and :class:`repro.query.Optimizer` decides **how**: join order, one
implementation per operator (merge vs. hash vs. partitioned hash vs.
nested loop; hash vs. sort aggregation), sort-ahead placement, and
partition counts — by minimizing the cost the model derives from each
candidate plan's combined access pattern.

Relations either wrap an engine :class:`~repro.db.Column` (executable
plans) or a bare :class:`~repro.core.DataRegion` (model-only planning at
sizes the trace-driven simulator cannot execute).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.regions import DataRegion
from ..db.column import Column
from ..db.join import OUTPUT_WIDTH

__all__ = [
    "LogicalOp",
    "Relation",
    "Filter",
    "Join",
    "Sort",
    "Aggregate",
    "callable_key",
]


def callable_key(fn: Callable | None) -> str:
    """A canonicalization token for a predicate/key callable.

    Two trees share a token only while they reference the *same* callable
    object — ``id()`` can only be reused after the object dies, and a plan
    cache entry keeps every callable its compiled plan references alive,
    so a token can never match a stale cache entry."""
    if fn is None:
        return "-"
    name = getattr(fn, "__name__", type(fn).__name__)
    return f"{name}@{id(fn):x}"


class LogicalOp:
    """Base class of logical operators."""

    def children(self) -> tuple["LogicalOp", ...]:
        return ()

    def output_region(self) -> DataRegion:
        """The oracle-estimated region of this operator's result."""
        raise NotImplementedError

    def canonical_key(self) -> str:
        """A canonical rendering of this tree for plan-cache keys.

        Two logical trees with equal keys describe the same query over
        the same base columns with the same oracle hints (and the same
        predicate/key callables), so a plan compiled for one is valid
        for the other.  Keys embed object identity for columns and
        callables (see :func:`callable_key`); they are meaningful only
        while those objects are alive, which any cache holding the
        compiled plan guarantees."""
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__.lower()

    def describe(self, depth: int = 0) -> str:
        lines = [f"{'  ' * depth}{self.label()}  [n={self.output_region().n}]"]
        for child in self.children():
            lines.append(child.describe(depth + 1))
        return "\n".join(lines)


@dataclass
class Relation(LogicalOp):
    """A base relation: an engine column, or a bare region for
    model-only planning.  ``sorted`` declares an existing physical
    order the optimizer may exploit (merge join without sort-ahead)."""

    column: Column | None = None
    region: DataRegion | None = None
    sorted: bool = False

    def __post_init__(self) -> None:
        if (self.column is None) == (self.region is None):
            raise ValueError("a Relation needs exactly one of column/region")

    @classmethod
    def of_column(cls, column: Column, sorted: bool = False) -> "Relation":
        return cls(column=column, sorted=sorted)

    @classmethod
    def of_region(cls, region: DataRegion, sorted: bool = False) -> "Relation":
        return cls(region=region, sorted=sorted)

    def output_region(self) -> DataRegion:
        return self.column.region() if self.column is not None else self.region

    def canonical_key(self) -> str:
        if self.column is not None:
            src = f"col:{self.column.name}@{id(self.column):x}"
        else:
            src = f"reg:{self.region.name}/{self.region.n}/{self.region.w}"
        return f"rel({src},sorted={int(self.sorted)})"

    def label(self) -> str:
        return f"relation({self.output_region().name})"


@dataclass
class Filter(LogicalOp):
    """Selection; ``selectivity`` is the oracle's output fraction."""

    child: LogicalOp
    predicate: Callable[[int], bool]
    selectivity: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError("selectivity must be in (0, 1]")

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        src = self.child.output_region()
        n = max(1, int(src.n * self.selectivity))
        return DataRegion(f"σ({src.name})", n=n, w=src.w)

    def canonical_key(self) -> str:
        # float() normalizes int-valued hints (sel=1 vs the text
        # frontend's sel=1.0) so all frontends render one key
        return (f"filter({self.child.canonical_key()},"
                f"sel={float(self.selectivity)!r},"
                f"pred={callable_key(self.predicate)})")

    def label(self) -> str:
        return f"filter(sel={self.selectivity})"


@dataclass
class Join(LogicalOp):
    """Equi-join; ``match_fraction`` is the oracle's fraction of the
    smaller input that finds matches (containment assumption, so the
    output cardinality is ``min(|L|, |R|) * match_fraction``).

    Nested joins form an n-way join whose association the optimizer is
    free to reorder (all joins of one chain are over a shared key
    domain, the engine's oid-style semantics).
    """

    left: LogicalOp
    right: LogicalOp
    match_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.match_fraction <= 1.0:
            raise ValueError("match_fraction must be in (0, 1]")

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    def output_region(self) -> DataRegion:
        l, r = self.left.output_region(), self.right.output_region()
        n = max(1, int(min(l.n, r.n) * self.match_fraction))
        return DataRegion(f"({l.name}⋈{r.name})", n=n, w=OUTPUT_WIDTH)

    def canonical_key(self) -> str:
        return (f"join({self.left.canonical_key()},"
                f"{self.right.canonical_key()},"
                f"mf={float(self.match_fraction)!r})")

    def label(self) -> str:
        return f"join(mf={self.match_fraction})"


@dataclass
class Sort(LogicalOp):
    """Request a sorted result (ORDER BY)."""

    child: LogicalOp

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        src = self.child.output_region()
        return DataRegion(f"sort({src.name})", n=src.n, w=src.w)

    def canonical_key(self) -> str:
        return f"sort({self.child.canonical_key()})"


@dataclass
class Aggregate(LogicalOp):
    """Group-count; ``groups`` is the oracle's group count and
    ``key_of`` extracts the grouping key from a stored value (join
    outputs store (outer oid, inner oid) pairs).

    With ``key_of=None`` over a join, the optimizer groups by the join
    *key* (inserting a projection), which is invariant under join
    reordering — the recommended form.  A provided ``key_of`` is
    *positional*: it reads the raw pair structure, whose meaning depends
    on join order, operand sides and row order, so the optimizer pins
    the child subtree to the canonical order-preserving plan instead of
    enumerating alternatives."""

    child: LogicalOp
    groups: int = 64
    key_of: Callable | None = None

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ValueError("groups must be positive")

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def output_region(self) -> DataRegion:
        return DataRegion("agg", n=max(1, self.groups), w=16)

    def canonical_key(self) -> str:
        return (f"agg({self.child.canonical_key()},"
                f"groups={self.groups},"
                f"key={callable_key(self.key_of)})")

    def label(self) -> str:
        return f"aggregate(groups={self.groups})"
