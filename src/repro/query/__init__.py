"""Whole-query composition: physical plans whose cost functions are the
⊕-combination of their operators' patterns (paper Section 6)."""

from .plan import (
    AggregateNode,
    HashJoinNode,
    MergeJoinNode,
    PlanNode,
    QueryPlan,
    ScanNode,
    SelectNode,
    SortNode,
)

__all__ = [
    "PlanNode",
    "ScanNode",
    "SelectNode",
    "SortNode",
    "MergeJoinNode",
    "HashJoinNode",
    "AggregateNode",
    "QueryPlan",
]
