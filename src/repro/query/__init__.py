"""Whole-query optimization and composition (paper Sections 1 and 6).

Three layers:

* :mod:`repro.query.logical` — what to compute (relational algebra with
  a cardinality oracle),
* :mod:`repro.query.physical` — how to compute it (operator nodes whose
  whole-plan cost function is the ``⊕``/``⊙`` combination of their
  access patterns, pipeline-aware per Section 3.3),
* :mod:`repro.query.optimizer` — which plan to pick (join ordering and
  per-operator implementation selection by derived cost),
* :mod:`repro.query.observe` — what happened (typed
  :class:`Explanation` / :class:`QueryResult` / :class:`MeasuredResult`
  with per-operator predicted-vs-measured attribution).
"""

from .logical import Aggregate, Filter, Join, LogicalOp, Relation, Sort
from .observe import (
    Explanation,
    ExplanationNode,
    LevelPrediction,
    MeasuredResult,
    OperatorMeasurement,
    QueryResult,
    capture_measured,
    measure_plan,
)
from .optimizer import (
    Optimizer,
    PlanCandidate,
    PlannedQuery,
    PlannerConfig,
    plan_signature,
)
from .physical import (
    AggregateNode,
    ExternalSortNode,
    GraceHashJoinNode,
    HashJoinNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    PartitionedHashJoinNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    ScanNode,
    SelectNode,
    SortAggregateNode,
    SortNode,
    SpillingAggregateNode,
)

__all__ = [
    # logical algebra
    "LogicalOp",
    "Relation",
    "Filter",
    "Join",
    "Sort",
    "Aggregate",
    # physical operators
    "PlanNode",
    "ScanNode",
    "SelectNode",
    "ProjectNode",
    "SortNode",
    "ExternalSortNode",
    "MergeJoinNode",
    "HashJoinNode",
    "NestedLoopJoinNode",
    "PartitionedHashJoinNode",
    "GraceHashJoinNode",
    "AggregateNode",
    "SortAggregateNode",
    "SpillingAggregateNode",
    "QueryPlan",
    # optimizer
    "Optimizer",
    "PlannerConfig",
    "PlanCandidate",
    "PlannedQuery",
    "plan_signature",
    # observability
    "Explanation",
    "ExplanationNode",
    "LevelPrediction",
    "QueryResult",
    "MeasuredResult",
    "OperatorMeasurement",
    "measure_plan",
    "capture_measured",
]
