"""Cost-driven plan enumeration: logical algebra in, physical plan out.

The optimizer closes the loop the paper motivates in its introduction:
the derived cost functions exist so that "the query optimizer [can]
choose the most suitable algorithm and/or implementation for each
operator".  Given a logical tree (:mod:`repro.query.logical`), it

* enumerates **join orders** (all binary association trees over the
  flattened n-way join — exhaustively for small queries, by dynamic
  programming over relation subsets beyond that),
* selects an **implementation per operator** by consulting the
  :class:`~repro.optimizer.AdvisorRegistry` (merge vs. hash vs.
  partitioned hash vs. nested-loop join; hash vs. sort aggregation),
* places **sort-ahead** operators where a merge join needs order it
  does not have, injects **partition counts** for partitioned hash
  joins, and inserts key **projections** between joins,

and ranks every candidate by :meth:`CostModel.estimate
<repro.core.CostModel.estimate>` applied to the candidate's whole-plan
access pattern — pipeline-aware (``⊙`` across pipelined edges) by
default — plus the shared per-operator CPU calibration.

The dynamic program keeps, per relation subset, the cheapest sub-plan
for each *interesting order* (sorted / unsorted output), pricing
sub-plans standalone; because ``⊕``-combination threads cache state
across operators, this is a (standard) heuristic relative to exhaustive
whole-plan costing, which remains available and is the default for
small queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..core.cost import CostEstimate, CostModel
from ..hardware.hierarchy import MemoryHierarchy
from .observe import Explanation
from ..optimizer.advisor import (
    AdvisorRegistry,
    AggregateAdvisor,
    JoinAdvisor,
    SortAdvisor,
    default_registry,
)
from .logical import Aggregate, Filter, Join, LogicalOp, Relation, Sort
from .physical import (
    AggregateNode,
    ExternalSortNode,
    GraceHashJoinNode,
    HashJoinNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    PartitionedHashJoinNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    ScanNode,
    SelectNode,
    SortAggregateNode,
    SortNode,
    SpillingAggregateNode,
)

__all__ = [
    "PlannerConfig",
    "PlanCandidate",
    "PlannedQuery",
    "Optimizer",
    "plan_signature",
]


@dataclass(frozen=True)
class PlannerConfig:
    """Enumeration knobs.

    ``pipeline`` selects pipeline-aware (``⊙``) whole-plan costing;
    ``max_exhaustive_relations`` bounds exhaustive join-order
    enumeration (beyond it, ``optimize`` switches to the subset DP).
    """

    include_nested_loop: bool = False
    reorder_joins: bool = True
    pipeline: bool = True
    #: "auto" uses exhaustive whole-plan costing up to this many base
    #: relations and the subset DP beyond.  Candidate counts grow ~30x
    #: per relation (3 relations ≈ 100 plans, 4 ≈ 3000), and each is
    #: costed with a full pattern derivation, so raise this only for
    #: small inputs (or call optimize(..., method="exhaustive")).
    max_exhaustive_relations: int = 3
    #: Working-memory bound per operator in bytes (sort area, hash
    #: table, group table), or ``None`` for unbounded.  With a budget,
    #: in-memory implementations whose working structures exceed it are
    #: inadmissible and the enumerator builds their spilling variants
    #: (external merge sort, grace hash join, spilling aggregate)
    #: instead.  Part of this frozen config's ``repr`` and therefore of
    #: every plan-cache key: cached plans never leak across budgets.
    memory_budget: int | None = None
    #: Execution mode plans run under: ``"vectorized"`` (chunked
    #: kernels over contiguous columns with range-coalesced simulator
    #: reporting, the default) or ``"scalar"`` (the historical
    #: item-at-a-time interpreter).  Both produce identical result
    #: columns and identical simulator counters — the mode only changes
    #: real wall-clock — but it is still part of the frozen config's
    #: ``repr`` and therefore of every plan-cache key, like every other
    #: planner knob.
    execution: str = "vectorized"


def plan_signature(node: PlanNode) -> str:
    """A compact one-line rendering of a physical plan's shape."""
    if isinstance(node, ScanNode):
        return node.output_region().name
    if isinstance(node, SelectNode):
        return f"σ({plan_signature(node.child)})"
    if isinstance(node, ProjectNode):
        return f"k({plan_signature(node.child)})"
    if isinstance(node, SortNode):
        return f"sort({plan_signature(node.child)})"
    if isinstance(node, ExternalSortNode):
        return f"xsort[r={node.runs()}]({plan_signature(node.child)})"
    if isinstance(node, MergeJoinNode):
        return f"mj({plan_signature(node.left)}, {plan_signature(node.right)})"
    if isinstance(node, HashJoinNode):
        return f"hj({plan_signature(node.left)}, {plan_signature(node.right)})"
    if isinstance(node, NestedLoopJoinNode):
        return f"nlj({plan_signature(node.left)}, {plan_signature(node.right)})"
    if isinstance(node, PartitionedHashJoinNode):
        return (f"phj[m={node.partitions}]({plan_signature(node.left)}, "
                f"{plan_signature(node.right)})")
    if isinstance(node, GraceHashJoinNode):
        return (f"ghj[m={node.effective_partitions()}]"
                f"({plan_signature(node.left)}, "
                f"{plan_signature(node.right)})")
    if isinstance(node, AggregateNode):
        return f"agg({plan_signature(node.child)})"
    if isinstance(node, SortAggregateNode):
        return f"sort_agg({plan_signature(node.child)})"
    if isinstance(node, SpillingAggregateNode):
        return f"spill_agg({plan_signature(node.child)})"
    return type(node).__name__


@dataclass(frozen=True)
class PlanCandidate:
    """One enumerated physical plan with its predicted cost."""

    plan: QueryPlan
    estimate: CostEstimate

    @property
    def total_ns(self) -> float:
        return self.estimate.total_ns

    @property
    def memory_ns(self) -> float:
        return self.estimate.memory_ns

    @property
    def signature(self) -> str:
        return plan_signature(self.plan.root)


class PlannedQuery:
    """The result of an :meth:`Optimizer.optimize` call: every
    enumerated candidate, cheapest first.

    Executing candidates is not side-effect free: sort-based operators
    sort the *shared base columns* in place, and candidates share scan
    nodes, so running one plan changes the data (and access traces) the
    others would see.  To compare several candidates on one
    :class:`~repro.db.Database`, snapshot ``column.values`` before each
    run and restore afterwards (see ``examples/optimize_query.py``)."""

    def __init__(self, candidates: list[PlanCandidate]) -> None:
        if not candidates:
            raise ValueError("no candidate plans were enumerated")
        self.candidates = sorted(candidates, key=lambda c: c.total_ns)

    @property
    def best(self) -> PlanCandidate:
        return self.candidates[0]

    @property
    def worst(self) -> PlanCandidate:
        return self.candidates[-1]

    @property
    def plan(self) -> QueryPlan:
        """The chosen (cheapest) physical plan."""
        return self.best.plan

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)

    def explanation(self, model: CostModel, pipeline: bool = True,
                    cache_hit: bool | None = None) -> Explanation:
        """The chosen plan's typed :class:`~repro.query.Explanation`,
        stamped with this compilation's plan signature (and, when the
        caller knows it, the compile's plan-cache provenance)."""
        return self.plan.explanation(model, pipeline=pipeline,
                                     signature=self.best.signature,
                                     cache_hit=cache_hit)

    def summary(self, limit: int = 8) -> str:
        """Cheapest candidates, one line each."""
        lines = [f"{len(self.candidates)} candidate plans "
                 f"(best {self.best.total_ns / 1e3:.1f} us, "
                 f"worst {self.worst.total_ns / 1e3:.1f} us):"]
        shown = self.candidates[:limit]
        for rank, cand in enumerate(shown, start=1):
            lines.append(f"  {rank:>3}. {cand.total_ns / 1e3:>12.1f} us  "
                         f"{cand.signature}")
        if len(self.candidates) > limit:
            lines.append(f"  ... {len(self.candidates) - limit} more")
        return "\n".join(lines)


class Optimizer:
    """Enumerates physical plans for a logical tree and ranks them by
    derived whole-plan cost.

    Parameters
    ----------
    hierarchy:
        Machine profile the plans are costed against.
    config:
        Enumeration knobs (:class:`PlannerConfig`).
    registry:
        Operator advisors; defaults to
        :func:`repro.optimizer.default_registry`.

    Optimizers are **re-entrant**: :meth:`optimize` touches no mutable
    instance state (enumeration memos are call-local), so one instance
    may serve several sessions — or interleaved calls — concurrently.
    Any plan cache is passed per call, never stored on the optimizer.
    """

    def __init__(self, hierarchy: MemoryHierarchy,
                 config: PlannerConfig | None = None,
                 registry: AdvisorRegistry | None = None) -> None:
        self.hierarchy = hierarchy
        self.model = CostModel(hierarchy)
        self.config = config or PlannerConfig()
        self.registry = registry or default_registry(
            hierarchy, memory_budget=self.config.memory_budget)
        self.fingerprint = hierarchy.fingerprint()
        # Cache-key component for the advisor registry: all default
        # registries on one profile are interchangeable; a custom
        # registry keys by identity so optimizers sharing a cache never
        # serve plans enumerated under someone else's advisors.
        self._registry_token = (
            "default" if registry is None
            else f"{type(registry).__name__}@{id(registry):x}")

    # ------------------------------------------------------------------
    @property
    def _join_advisor(self) -> JoinAdvisor:
        return self.registry.advisor("join")

    @property
    def _sort_advisor(self) -> SortAdvisor:
        return self.registry.advisor("sort")

    @property
    def _aggregate_advisor(self) -> AggregateAdvisor:
        return self.registry.advisor("aggregate")

    def _stop_bytes(self) -> int:
        return self._sort_advisor.stop_bytes()

    def _effective_budget(self, advisor) -> int | None:
        """The budget a spilling node is built with: the planner
        config's, or — for a custom registry carrying its own budget
        under a budget-less config — the deciding advisor's.  The
        advisor that ruled the in-memory variant inadmissible always
        has one."""
        if self.config.memory_budget is not None:
            return self.config.memory_budget
        return advisor.memory_budget

    def _sort_node(self, child: PlanNode) -> PlanNode:
        """The admissible sort of ``child``'s output: in-place
        quick-sort, or external merge sort once the input exceeds the
        memory budget (the sort advisor's call)."""
        if self._sort_advisor.needs_external(child.output_region()):
            return ExternalSortNode(
                child, self._effective_budget(self._sort_advisor),
                stop_bytes=self._stop_bytes())
        return SortNode(child, stop_bytes=self._stop_bytes())

    # ------------------------------------------------------------------
    def _resolve_method(self, logical: LogicalOp, method: str) -> str:
        if method not in ("auto", "exhaustive", "dp"):
            raise ValueError(f"unknown method {method!r}")
        if method == "auto":
            n_relations = sum(
                1 for _ in _walk_logical(logical) if isinstance(_, Relation)
            )
            method = ("exhaustive"
                      if n_relations <= self.config.max_exhaustive_relations
                      else "dp")
        return method

    def cache_key(self, logical: LogicalOp,
                  method: str = "auto") -> tuple[str, str, str, str, str]:
        """The plan-cache key for ``logical`` under this optimizer:
        (profile fingerprint, planner config, advisor registry,
        resolved enumeration method, canonical logical tree).
        ``"auto"`` is resolved first, so it shares entries with the
        equivalent explicit method."""
        return (self.fingerprint, repr(self.config), self._registry_token,
                self._resolve_method(logical, method),
                logical.canonical_key())

    def optimize(self, logical: LogicalOp, method: str = "auto",
                 cache=None) -> PlannedQuery:
        """Enumerate, cost, and rank plans for ``logical``.

        ``method`` is ``"exhaustive"`` (every join order costed as a
        whole plan), ``"dp"`` (dynamic programming over relation
        subsets), or ``"auto"`` (exhaustive up to
        ``config.max_exhaustive_relations`` base relations).

        ``cache`` is an optional plan cache (anything with
        ``get(key) -> PlannedQuery | None`` and ``put(key, value)``,
        e.g. :class:`repro.session.PlanCache`): a hit under
        :meth:`cache_key` returns the previously enumerated
        :class:`PlannedQuery` without re-running enumeration; a miss
        enumerates and stores."""
        method = self._resolve_method(logical, method)
        if cache is None:
            return self._enumerate(logical, method)
        key = self.cache_key(logical, method)
        planned = cache.get(key)
        if planned is None:
            planned = self._enumerate(logical, method)
            cache.put(key, planned)
        return planned

    def _enumerate(self, logical: LogicalOp, method: str) -> PlannedQuery:
        roots = self._alternatives(logical, use_dp=(method == "dp"))
        return PlannedQuery([self._candidate(root) for root in roots])

    def enumerate_plans(self, logical: LogicalOp) -> list[PlanNode]:
        """All physical alternatives for ``logical`` (exhaustive)."""
        return self._alternatives(logical, use_dp=False)

    def _candidate(self, root: PlanNode) -> PlanCandidate:
        plan = QueryPlan(root)
        try:
            estimate = plan.estimate(self.model, pipeline=self.config.pipeline)
        except ValueError:
            # access-free plan (bare scan): nothing to cost
            estimate = CostEstimate(levels=(), cpu_ns=0.0)
        return PlanCandidate(plan=plan, estimate=estimate)

    # ------------------------------------------------------------------
    def _alternatives(self, op: LogicalOp, use_dp: bool) -> list[PlanNode]:
        if isinstance(op, Relation):
            return [ScanNode(column=op.column, region=op.region,
                             sorted=op.sorted)]
        if isinstance(op, Filter):
            return [SelectNode(alt, op.predicate, op.selectivity)
                    for alt in self._alternatives(op.child, use_dp)]
        if isinstance(op, Sort):
            return [alt if alt.produces_sorted_output
                    else self._sort_node(alt)
                    for alt in self._alternatives(op.child, use_dp)]
        if isinstance(op, Aggregate):
            if op.key_of is not None and _contains_join(op.child):
                # A positional key_of reads the raw (outer oid, inner
                # oid) pairs, whose meaning depends on join order,
                # operand sides and output row order.  Any enumeration
                # freedom would change the query's *result*, so the
                # child subtree is pinned to the canonical
                # order-preserving physical form.
                return [AggregateNode(self._canonical(op.child),
                                      groups=op.groups, key_of=op.key_of)]
            out: list[PlanNode] = []
            specs = self._aggregate_advisor.candidate_specs
            for alt in self._alternatives(op.child, use_dp):
                if op.key_of is None and alt.produces_pairs:
                    # Group by the join key: narrow the pair output to
                    # its key column so the grouping is independent of
                    # the join order the enumerator picked.
                    alt = ProjectNode(alt)
                names = specs(composite_input=(alt.produces_pairs
                                               or op.key_of is not None),
                              U=alt.output_region(), groups=op.groups)
                for name in names:
                    if name == "hash_aggregate":
                        out.append(AggregateNode(alt, groups=op.groups,
                                                 key_of=op.key_of))
                    elif name == "sort_aggregate":
                        out.append(SortAggregateNode(
                            alt, groups=op.groups,
                            stop_bytes=self._stop_bytes()))
                    elif name == "spilling_hash_aggregate":
                        out.append(SpillingAggregateNode(
                            alt, groups=op.groups,
                            memory_budget=self._effective_budget(
                                self._aggregate_advisor),
                            key_of=op.key_of))
            return out
        if isinstance(op, Join):
            leaves = (self._flatten_join(op)
                      if self.config.reorder_joins else None)
            if leaves is not None and len(leaves) >= 2:
                if use_dp:
                    return self._dp_join_plans(leaves)
                return self._all_join_trees(leaves)
            out = []
            for l in self._alternatives(op.left, use_dp):
                for r in self._alternatives(op.right, use_dp):
                    out.extend(self._join_impls(l, r, op.match_fraction))
            return out
        raise TypeError(f"not a logical operator: {op!r}")

    def _canonical(self, op: LogicalOp) -> PlanNode:
        """The one physical plan that mirrors ``op`` exactly and
        preserves output row order (hash joins follow their outer
        input's order; no reordering, no operand swaps, no sort-based
        implementations) — required under a positional ``key_of``.
        Spilling variants repartition rows, so the canonical plan stays
        in-memory even under a budget (positional grouping over a
        spilled join would read reshuffled pairs)."""
        if isinstance(op, Relation):
            return ScanNode(column=op.column, region=op.region,
                            sorted=op.sorted)
        if isinstance(op, Filter):
            return SelectNode(self._canonical(op.child), op.predicate,
                              op.selectivity)
        if isinstance(op, Sort):
            return self._sorted_input(self._canonical(op.child))
        if isinstance(op, Join):
            left = self._key_input(self._canonical(op.left))
            right = self._key_input(self._canonical(op.right))
            return HashJoinNode(left, right, op.match_fraction)
        if isinstance(op, Aggregate):
            child = self._canonical(op.child)
            if op.key_of is None and child.produces_pairs:
                child = ProjectNode(child)
            return AggregateNode(child, groups=op.groups, key_of=op.key_of)
        raise TypeError(f"not a logical operator: {op!r}")

    # -- join ordering --------------------------------------------------
    def _flatten_join(self, join: Join) -> list[LogicalOp] | None:
        """The inputs of the n-way join ``join`` heads, or ``None`` when
        reordering must not change the oracle's cardinalities (a join
        chain with non-unit match fractions is left in the given
        association; implementations are still chosen per operator)."""
        leaves: list[LogicalOp] = []
        fractions: list[float] = []

        def collect(op: LogicalOp) -> None:
            if isinstance(op, Join):
                fractions.append(op.match_fraction)
                collect(op.left)
                collect(op.right)
            else:
                leaves.append(op)

        collect(join)
        if all(f == 1.0 for f in fractions):
            return leaves
        return None

    def _all_join_trees(self, leaves: list[LogicalOp]) -> list[PlanNode]:
        """Every binary association tree over ``leaves`` (both operand
        orders), with every implementation per join."""
        memo: dict[frozenset, list[PlanNode]] = {}

        def build(subset: frozenset) -> list[PlanNode]:
            if subset in memo:
                return memo[subset]
            if len(subset) == 1:
                (index,) = subset
                result = self._alternatives(leaves[index], use_dp=False)
            else:
                result = []
                members = sorted(subset)
                for k in range(1, len(members)):
                    for left_ids in combinations(members, k):
                        left_set = frozenset(left_ids)
                        right_set = subset - left_set
                        for l in build(left_set):
                            for r in build(right_set):
                                result.extend(self._join_impls(l, r, 1.0))
            memo[subset] = result
            return result

        return build(frozenset(range(len(leaves))))

    def _dp_join_plans(self, leaves: list[LogicalOp]) -> list[PlanNode]:
        """Dynamic programming over relation subsets, keeping per subset
        the cheapest sub-plan for each interesting order (sorted /
        unsorted output)."""
        best: dict[frozenset, dict[bool, tuple[float, PlanNode]]] = {}

        def keep(subset: frozenset, node: PlanNode) -> None:
            cost = self._standalone_cost(node)
            slot = best.setdefault(subset, {})
            key = node.produces_sorted_output
            if key not in slot or cost < slot[key][0]:
                slot[key] = (cost, node)

        n = len(leaves)
        for index in range(n):
            subset = frozenset((index,))
            for alt in self._alternatives(leaves[index], use_dp=True):
                keep(subset, alt)
                if not alt.produces_sorted_output:
                    keep(subset, self._sort_node(alt))
        indices = frozenset(range(n))
        for size in range(2, n + 1):
            for members in combinations(range(n), size):
                subset = frozenset(members)
                for k in range(1, size):
                    for left_ids in combinations(sorted(subset), k):
                        left_set = frozenset(left_ids)
                        right_set = subset - left_set
                        if left_set not in best or right_set not in best:
                            continue
                        for _, l in best[left_set].values():
                            for _, r in best[right_set].values():
                                for node in self._join_impls(l, r, 1.0):
                                    keep(subset, node)
        return [node for _, node in best[indices].values()]

    def _standalone_cost(self, node: PlanNode) -> float:
        pattern = node.full_pattern(self.config.pipeline)
        memory = 0.0 if pattern is None else self.model.estimate(pattern).memory_ns
        cpu = self.hierarchy.nanoseconds(
            sum(n.cpu_cycles() for n in node.walk())
        )
        return memory + cpu

    # -- per-join implementation selection ------------------------------
    def _key_input(self, node: PlanNode) -> PlanNode:
        """Joins consume plain key columns; narrow join-pair outputs."""
        return ProjectNode(node) if node.produces_pairs else node

    def _sorted_input(self, node: PlanNode) -> PlanNode:
        """Sort-ahead: order an input for a merge join if needed
        (external merge sort when the input exceeds the budget)."""
        if node.produces_sorted_output:
            return node
        return self._sort_node(node)

    def _join_impls(self, left: PlanNode, right: PlanNode,
                    match_fraction: float) -> list[PlanNode]:
        left = self._key_input(left)
        right = self._key_input(right)
        U, V = left.output_region(), right.output_region()
        impls: list[PlanNode] = []
        for spec in self._join_advisor.candidate_specs(
                U, V, include_nested_loop=self.config.include_nested_loop):
            if spec.algorithm == "merge_join":
                impls.append(MergeJoinNode(self._sorted_input(left),
                                           self._sorted_input(right),
                                           match_fraction))
            elif spec.algorithm == "hash_join":
                impls.append(HashJoinNode(left, right, match_fraction))
            elif spec.algorithm == "partitioned_hash_join":
                m = min(spec.partitions, U.n, V.n)
                if m >= 2:
                    impls.append(PartitionedHashJoinNode(
                        left, right, match_fraction, partitions=m))
            elif spec.algorithm == "grace_hash_join":
                impls.append(GraceHashJoinNode(
                    left, right, match_fraction,
                    memory_budget=self._effective_budget(
                        self._join_advisor)))
            elif spec.algorithm == "nested_loop_join":
                impls.append(NestedLoopJoinNode(left, right, match_fraction))
        return impls


def _walk_logical(op: LogicalOp):
    yield op
    for child in op.children():
        yield from _walk_logical(child)


def _contains_join(op: LogicalOp) -> bool:
    return any(isinstance(node, Join) for node in _walk_logical(op))
