"""The asyncio multi-tenant query server.

:class:`QueryServer` turns the offline cost-model stack into a
long-lived service: text-frontend queries arrive (open-loop, stamped
by an arrival process or live via :meth:`~QueryServer.submit`), are
compiled on a bounded worker pool through per-tenant plan caches
(thread-safe since :meth:`~repro.session.PlanCache.get_or_compute`),
wait in the admission controller's bounded queue, and execute as
⊙-guided co-run batches on the one simulated machine.

Two clocks run at once.  *Wall clock*: compiles genuinely run in
parallel on the pool, batches execute in worker threads while the
event loop keeps accepting traffic.  *Simulated clock*: the machine's
time, advanced batch by batch — a batch starts at
``max(machine-free, seed arrival)``, lasts its replayed makespan, and
a query's reported latency is simulated ``finish − arrival``.  All
scheduling decisions are functions of the simulated clock only (a
batch never includes a query that had not arrived when the batch
started, and a decision at simulated time *t* waits for every compile
whose query arrived by *t*), so a serving run is deterministic in
``(workload, seeds, policy)`` no matter how the pool's threads race.

Execution reuses the PR 3 machinery verbatim: each member's access
trace is recorded against its tenant's engine, shifted into the
tenant's private slice of the address space (tenants do not share
tables), and the batch replays round-robin-interleaved through one
cold :class:`~repro.simulator.MemorySystem` — the measured counterpart
of the ⊙ prediction the admission controller trusted.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..calibrator.autotune import LatencyGrid, Recalibration, Recalibrator
from ..hardware.hierarchy import MemoryHierarchy
from ..hardware.profiles import origin2000_scaled
from ..obs import Tracer
from ..query.optimizer import PlannerConfig, plan_signature
from ..service.executor import (
    DEFAULT_QUANTUM,
    BatchReplay,
    TraceRecorder,
    _restored_columns,
    measure_solo,
    replay_interleaved,
)
from ..service.interference import InterferenceModel
from ..service.metrics import BatchMetrics, percentile
from ..service.workload import WorkloadQuery
from .admission import AdmissionController, ServerTask
from .slo import DEFAULT_WINDOW_NS, SloTarget, SloTracker
from .tenant import Tenant, TenantQuota

__all__ = ["ServerResponse", "ServingReport", "QueryServer"]


@dataclass(frozen=True)
class ServerResponse:
    """One query's serving outcome on the simulated clock."""

    qid: int
    tenant: str
    kind: str
    text: str
    #: ``"ok"`` or ``"shed"`` (refused by admission control).
    outcome: str
    arrival_ns: float
    start_ns: float
    finish_ns: float
    #: Result cardinality (``None`` when shed).
    rows: int | None = None
    #: Plan-cache provenance of the compile (``None`` when shed).
    cache_hit: bool | None = None
    batch_index: int | None = None
    batch_size: int | None = None
    signature: str = ""
    #: Fingerprint of the tenant profile the plan was compiled under —
    #: after an online recalibration swaps the profile, subsequent
    #: responses carry the new fingerprint (provenance of which model
    #: priced the plan).
    fingerprint: str = ""
    #: Wall-clock nanoseconds the compile took (``None`` when shed
    #: before compiling finished mattering).  Compiles are free on the
    #: simulated clock — the machine's time never advances for them.
    compile_wall_ns: int | None = None

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    @property
    def latency_ns(self) -> float:
        """Simulated completion latency (0 for shed queries, which are
        refused immediately)."""
        return self.finish_ns - self.arrival_ns

    @property
    def wait_ns(self) -> float:
        """Simulated queueing delay before the query's batch started."""
        return self.start_ns - self.arrival_ns

    def to_json(self) -> dict:
        return {
            "qid": self.qid, "tenant": self.tenant, "kind": self.kind,
            "text": self.text, "outcome": self.outcome,
            "arrival_ns": self.arrival_ns, "start_ns": self.start_ns,
            "finish_ns": self.finish_ns, "latency_ns": self.latency_ns,
            "rows": self.rows, "cache_hit": self.cache_hit,
            "batch_index": self.batch_index,
            "batch_size": self.batch_size, "signature": self.signature,
            "fingerprint": self.fingerprint,
            "queue_ns": self.wait_ns,
            # Where compile time went, per clock: real nanoseconds on
            # the wall, zero on the simulated clock (compiles overlap
            # the machine; scheduling waits for them but never charges
            # them).  wall_ns varies run to run — strip it before
            # comparing runs for determinism.
            "compile_ns": {"wall_ns": self.compile_wall_ns,
                           "simulated_ns": 0.0},
        }


class ServingReport:
    """A serving run's full accounting: every response, every batch's
    ⊙ prediction next to its replay measurement, the SLO windows, and
    per-tenant counters."""

    def __init__(self, policy: str, responses: list[ServerResponse],
                 batches: list[BatchMetrics], slo: dict,
                 breaches: list, tenants: list[dict],
                 fingerprint: str = "") -> None:
        self.policy = policy
        self.responses = responses
        self.batches = batches
        self.slo = slo
        self.breaches = breaches
        self.tenants = tenants
        #: Profile fingerprint of the machine the server ran on — joins
        #: this report to the what-if candidate that predicted it.
        self.fingerprint = fingerprint

    # -- headline numbers ----------------------------------------------
    @property
    def completed(self) -> list[ServerResponse]:
        return [r for r in self.responses if r.ok]

    @property
    def shed(self) -> list[ServerResponse]:
        return [r for r in self.responses if not r.ok]

    @property
    def makespan_ns(self) -> float:
        """Simulated completion time of the last served query."""
        done = self.completed
        return max(r.finish_ns for r in done) if done else 0.0

    @property
    def sustained_qps(self) -> float:
        """Completions per simulated second over the whole run."""
        span = self.makespan_ns
        return len(self.completed) / (span / 1e9) if span > 0 else 0.0

    def latency_percentile(self, q: float) -> float | None:
        return percentile([r.latency_ns for r in self.completed], q,
                          empty=None)

    @property
    def p50_latency_ns(self) -> float | None:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_ns(self) -> float | None:
        return self.latency_percentile(95.0)

    @property
    def p99_latency_ns(self) -> float | None:
        return self.latency_percentile(99.0)

    @property
    def predicted_makespan_ns(self) -> float:
        """Σ of the ⊙-predicted batch makespans (busy time only)."""
        return sum(b.predicted_makespan_ns for b in self.batches)

    @property
    def measured_makespan_ns(self) -> float:
        """Σ of the replay-measured batch makespans."""
        return sum(b.measured_makespan_ns for b in self.batches)

    @property
    def mean_contention_error(self) -> float:
        """Mean relative ⊙-vs-replay error over co-run batches."""
        shared = [b.contention_error for b in self.batches if b.size > 1]
        return sum(shared) / len(shared) if shared else 0.0

    def to_json(self) -> dict:
        return {
            "kind": "serving_report",
            "policy": self.policy,
            "fingerprint": self.fingerprint,
            "completed": len(self.completed),
            "shed": len(self.shed),
            "makespan_ns": self.makespan_ns,
            "sustained_qps": self.sustained_qps,
            "p50_latency_ns": self.p50_latency_ns,
            "p95_latency_ns": self.p95_latency_ns,
            "p99_latency_ns": self.p99_latency_ns,
            "predicted_makespan_ns": self.predicted_makespan_ns,
            "measured_makespan_ns": self.measured_makespan_ns,
            "mean_contention_error": self.mean_contention_error,
            "slo": self.slo,
            "breaches": [b.to_json() for b in self.breaches],
            "tenants": self.tenants,
            "responses": [r.to_json() for r in self.responses],
            "batches": [b.to_json() for b in self.batches],
        }

    def render(self) -> str:
        def _ms(value: float | None) -> str:
            return "     -" if value is None else f"{value / 1e6:6.2f}"

        lines = [
            f"policy {self.policy}: {len(self.completed)} served, "
            f"{len(self.shed)} shed, {len(self.batches)} batches",
            f"  makespan   {self.makespan_ns / 1e6:>10.2f} ms   "
            f"sustained {self.sustained_qps:>8.1f} q/s",
            f"  latency    p50 {_ms(self.p50_latency_ns)} ms   "
            f"p95 {_ms(self.p95_latency_ns)} ms   "
            f"p99 {_ms(self.p99_latency_ns)} ms",
            f"  ⊙ vs replay error {self.mean_contention_error * 100:5.1f}% "
            f"(co-run batches)   SLO breaches {len(self.breaches)}",
        ]
        for tenant in self.tenants:
            cache = tenant["plan_cache"]
            lines.append(
                f"  tenant {tenant['name']:<10} "
                f"served {tenant['completed']:>4}  "
                f"shed {tenant['shed']:>3}  "
                f"plan cache {cache['hits']}/{cache['hits'] + cache['misses']}"
                f" hits")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ServingReport({self.policy!r}, "
                f"completed={len(self.completed)}, "
                f"shed={len(self.shed)}, "
                f"qps={self.sustained_qps:.0f})")


class QueryServer:
    """An asyncio query server over per-tenant session stacks.

    Parameters
    ----------
    hierarchy:
        The shared machine every tenant's queries execute on; defaults
        to the scaled Origin2000.
    mode:
        Batch-formation policy: ``"interference-aware"`` (⊙-guided
        admission, the default), ``"max-parallel"``, or
        ``"fifo-serial"`` (the benchmark baselines).
    max_workers:
        Worker-pool width for compiles and batch execution.
    max_batch / max_queue / slack / lookahead:
        Admission-controller knobs (:class:`AdmissionController`).
    quantum:
        Interleaved-replay time slice (accesses per co-runner per
        turn).
    slo / tenant_slos / slo_window_ns:
        Objectives for the :class:`~repro.server.slo.SloTracker`.
    config:
        Planner config handed to every tenant session.
    tracer:
        Opt-in observability (:class:`~repro.obs.Tracer`): dual-clock
        spans over the query lifecycle, live metrics (queries,
        latencies, admission decisions, plan caches, per-level
        simulator misses), and per-operator drift monitoring on
        solo-batch executions.  ``None`` (the default) records
        nothing.
    recalibration:
        Opt-in online self-calibration (requires ``tracer``): each
        tenant gets a :class:`~repro.calibrator.Recalibrator` fed by
        the solo-batch measured path; when the tracer's drift monitor
        flags the tenant's profile, the dispatcher searches the
        latency neighborhood over the tenant's recent samples and, on
        improvement, swaps the tenant's hierarchy in — retiring its
        cached plans (visible as ``plan_cache_retirements_total``)
        and stamping subsequent responses with the new fingerprint.
        All decisions happen on the dispatcher's simulated clock, so
        runs stay deterministic in (workload, seeds, policy).
    recalibration_grid / recalibration_min_samples / recalibration_dir:
        The recalibrators' search grid
        (:class:`~repro.calibrator.LatencyGrid`), minimum replay-sample
        depth before a response runs, and (optional) directory where
        published profiles and their sidecar manifests are written.
    """

    def __init__(self, hierarchy: MemoryHierarchy | None = None, *,
                 mode: str = "interference-aware", max_workers: int = 4,
                 max_batch: int = 4, max_queue: int = 64,
                 slack: float = 1.0, lookahead: int = 8,
                 quantum: int = DEFAULT_QUANTUM,
                 slo: SloTarget | None = None,
                 tenant_slos: dict[str, SloTarget] | None = None,
                 slo_window_ns: float = DEFAULT_WINDOW_NS,
                 config: PlannerConfig | None = None,
                 tracer: Tracer | None = None,
                 recalibration: bool = False,
                 recalibration_grid: "LatencyGrid | None" = None,
                 recalibration_min_samples: int = 1,
                 recalibration_dir=None) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        if recalibration and tracer is None:
            raise ValueError(
                "recalibration requires a tracer (drift events come "
                "from the tracer's monitor on solo-batch executions)")
        self.hierarchy = (hierarchy if hierarchy is not None
                          else origin2000_scaled())
        self.interference = InterferenceModel(self.hierarchy)
        self.admission = AdmissionController(
            self.interference, mode=mode, max_queue=max_queue,
            max_batch=max_batch, slack=slack, lookahead=lookahead)
        self.slo = SloTracker(target=slo, tenant_targets=tenant_slos,
                              window_ns=slo_window_ns)
        self.max_workers = max_workers
        self.quantum = quantum
        self.config = config
        self.tenants: dict[str, Tenant] = {}
        # online recalibration (opt-in; populated per tenant)
        self.recalibration = recalibration
        self._recal_grid = recalibration_grid
        self._recal_min_samples = recalibration_min_samples
        self._recal_dir = recalibration_dir
        self._recalibrators: dict[str, Recalibrator] = {}
        #: Every recalibration the dispatcher ran, in order.
        self.recalibrations: list[Recalibration] = []
        # accumulated accounting
        self._responses: list[ServerResponse] = []
        self._batches: list[BatchMetrics] = []
        self._clock = 0.0
        self._next_qid = 0
        self._batch_index = 0
        # runtime state (created by start())
        self._pool: ThreadPoolExecutor | None = None
        self._dispatcher: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._compiling: dict[int, float] = {}  # qid -> arrival_ns
        self._staged: list[ServerTask] = []  # compiled, not yet admitted
        self._outstanding = 0
        self._machine_lock = threading.Lock()
        self._model_lock = threading.Lock()
        # observability (all no-ops when tracer is None)
        self.tracer = tracer
        if tracer is not None:
            m = tracer.metrics
            self._m_queries = m.counter(
                "server_queries_total",
                "Queries resolved, by outcome.",
                ("tenant", "kind", "outcome"))
            self._m_latency = m.histogram(
                "server_latency_ns",
                "Simulated completion latency of served queries.",
                ("tenant",))
            self._m_queue_wait = m.histogram(
                "server_queue_wait_ns",
                "Simulated delay between arrival and batch start.",
                ("tenant",))
            self._m_admission = m.counter(
                "server_admission_total",
                "Admission-controller decisions.",
                ("tenant", "decision"))
            self._m_batches = m.counter(
                "server_batches_total", "Batches executed.", ("policy",))
            self._m_batch_size = m.histogram(
                "server_batch_size", "Co-run batch sizes.",
                bounds=tuple(float(n) for n in range(1, 33)))
            self._m_clock = m.gauge(
                "server_clock_ns", "The machine's simulated clock.")
            self._m_depth = m.gauge(
                "server_queue_depth",
                "Run-queue depth after the last dispatch.")
            self._m_level_hits = m.counter(
                "sim_level_hits_total",
                "Simulator per-level hits, sampled at batch "
                "boundaries.", ("level",))
            self._m_level_misses = m.counter(
                "sim_level_misses_total",
                "Simulator per-level misses, sampled at batch "
                "boundaries.", ("level", "kind"))
            self._m_cache_hits = m.counter(
                "plan_cache_hits_total", "Plan-cache hits.", ("tenant",))
            self._m_cache_misses = m.counter(
                "plan_cache_misses_total", "Plan-cache misses.",
                ("tenant",))
            self._m_cache_retired = m.counter(
                "plan_cache_retirements_total",
                "Plans retired from a tenant's cache (LRU eviction or "
                "a recalibration's explicit profile-swap clear).",
                ("tenant",))
            self._m_recalibrations = m.counter(
                "server_recalibrations_total",
                "Profiles republished by the online recalibrator.",
                ("tenant",))

    # -- tenants -------------------------------------------------------
    def add_tenant(self, name: str, quota: TenantQuota | None = None
                   ) -> Tenant:
        """Register a tenant (own catalog, own plan cache, own quota).
        Populate its catalog through ``tenant.session`` — e.g. hand it
        to a :class:`~repro.service.WorkloadGenerator`."""
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} already exists")
        tenant = Tenant(name, index=len(self.tenants),
                        hierarchy=self.hierarchy, quota=quota,
                        config=self.config)
        self.tenants[name] = tenant
        if self.tracer is not None:
            counters = {"hit": self._m_cache_hits,
                        "miss": self._m_cache_misses,
                        "retire": self._m_cache_retired}

            def _cache_event(event: str, count: int = 1,
                             *, _tenant: str = name) -> None:
                counters[event].inc(count, tenant=_tenant)

            tenant.plan_cache.attach_observer(_cache_event)
        if self.recalibration:
            # Samples and events arrive via ingest() from the
            # dispatcher (the tracer's monitor is the one detector —
            # the recalibrator's own stays idle).
            self._recalibrators[name] = Recalibrator(
                tenant.session, grid=self._recal_grid,
                min_samples=self._recal_min_samples,
                manifest_dir=self._recal_dir)
        return tenant

    def tenant(self, name: str) -> Tenant:
        try:
            return self.tenants[name]
        except KeyError:
            known = ", ".join(sorted(self.tenants)) or "none registered"
            raise KeyError(f"no tenant {name!r} (known: {known})") \
                from None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "QueryServer":
        """Create the worker pool and the dispatcher; idempotent."""
        if self._dispatcher is not None:
            return self
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-server")
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self) -> None:
        """Stop dispatching and release the pool (pending queries keep
        their futures unresolved; call :meth:`drain` first for a clean
        shutdown)."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def drain(self) -> None:
        """Wait until every submitted query has been resolved (served
        or shed) and the run queue is empty."""
        assert self._idle is not None, "server not started"
        while True:
            await self._idle.wait()
            if self._outstanding == 0 and not self.admission.queue \
                    and not self._staged and not self._compiling:
                return

    # -- submission ----------------------------------------------------
    def submit_nowait(self, tenant: str, text: str, kind: str = "adhoc",
                      arrival_ns: float | None = None
                      ) -> "asyncio.Future[ServerResponse]":
        """Accept one query for ``tenant`` and return a future for its
        :class:`ServerResponse`.  ``arrival_ns`` places it on the
        simulated clock (defaults to the machine's current simulated
        time — "it arrived just now")."""
        if self._pool is None or self._wake is None:
            raise RuntimeError("server not started (use `async with "
                               "QueryServer(...)` or await start())")
        owner = self.tenant(tenant)
        owner.submitted += 1
        qid = self._next_qid
        self._next_qid += 1
        arrival = self._clock if arrival_ns is None else float(arrival_ns)
        loop = asyncio.get_running_loop()
        response: asyncio.Future = loop.create_future()
        self._outstanding += 1
        self._idle.clear()
        self._compiling[qid] = arrival
        compile_future = loop.run_in_executor(
            self._pool, self._compile, owner, qid, kind, text, arrival)

        def _compiled(done: asyncio.Future) -> None:
            del self._compiling[qid]
            try:
                task = done.result()
            except BaseException as exc:  # bad query text, planner error
                if not response.done():
                    response.set_exception(exc)
                self._resolve_bookkeeping()
            else:
                # Stage only: the admission (quota/shedding) decision is
                # the dispatcher's, made on the simulated clock — queue
                # state must not depend on how compile threads raced.
                task.handle = response
                self._staged.append(task)
            self._wake.set()

        compile_future.add_done_callback(_compiled)
        return response

    async def submit(self, tenant: str, text: str, kind: str = "adhoc",
                     arrival_ns: float | None = None) -> ServerResponse:
        """Submit one query and wait for its response."""
        return await self.submit_nowait(tenant, text, kind, arrival_ns)

    async def serve(self, queries: list[WorkloadQuery],
                    tenant_for=None, realtime_factor: float | None = None
                    ) -> list[ServerResponse]:
        """Serve a stamped workload stream and return the responses in
        qid order.  ``tenant_for`` maps a query to a tenant name
        (default: clients dealt round-robin over registered tenants);
        ``realtime_factor`` additionally paces submissions on the wall
        clock (wall seconds per simulated second) — the simulated
        accounting is identical either way, pacing just makes the
        traffic observable."""
        if not self.tenants:
            raise RuntimeError("no tenants registered")
        names = [t.name for t in
                 sorted(self.tenants.values(), key=lambda t: t.index)]
        if tenant_for is None:
            def tenant_for(query):  # noqa: E306
                return names[query.client % len(names)]
        futures = []
        previous_arrival = 0.0
        for query in queries:
            if realtime_factor is not None:
                gap_ns = query.arrival_ns - previous_arrival
                previous_arrival = query.arrival_ns
                if gap_ns > 0:
                    await asyncio.sleep(gap_ns / 1e9 * realtime_factor)
            futures.append(self.submit_nowait(
                tenant_for(query), query.text, kind=query.kind,
                arrival_ns=query.arrival_ns))
        responses = await asyncio.gather(*futures)
        return sorted(responses, key=lambda r: r.qid)

    # -- worker-side stages --------------------------------------------
    def _compile(self, tenant: Tenant, qid: int, kind: str, text: str,
                 arrival_ns: float) -> ServerTask:
        """Worker thread: compile through the tenant's (thread-safe)
        plan cache and price the standalone run."""
        wall_start = time.perf_counter_ns()
        session = tenant.worker_session()
        planned = session.compile(text)
        plan = planned.plan
        with self._model_lock:
            memory, cpu = self.interference.standalone(plan)
        return ServerTask(qid=qid, tenant=tenant.name, kind=kind,
                          text=text, arrival_ns=arrival_ns, plan=plan,
                          solo_memory_ns=memory, cpu_ns=cpu,
                          cache_hit=session.last_compile_cached,
                          signature=plan_signature(plan.root),
                          fingerprint=session.fingerprint,
                          compile_wall_start_ns=wall_start,
                          compile_wall_end_ns=time.perf_counter_ns())

    def _execute_batch(self, batch: list[ServerTask], start_ns: float):
        """Worker thread: record each member's trace against its
        tenant's engine (shifted into the tenant's address slice) and
        replay the batch interleaved through one cold memory system on
        the server's machine.

        With a tracer attached, a *solo* batch takes the typed
        measured path instead — one execution against a fresh cold
        memory system, which yields the identical counters a
        single-trace replay would (the out-of-core suite proves
        replay == execution) *plus* per-operator attribution for
        operator spans and drift monitoring.  Responses are identical
        either way; only the observability gains detail.
        """
        wall_start = time.perf_counter_ns()
        measured = None
        with self._machine_lock:
            if self.tracer is not None and len(batch) == 1:
                tenant = self.tenants[batch[0].tenant]
                measured = measure_solo(tenant.session, batch[0].plan)
                elapsed = measured.counters.elapsed_ns
                replay = BatchReplay(total_ns=elapsed,
                                     memory_ns=(elapsed,),
                                     finish_ns=(elapsed,),
                                     counters=measured.counters)
                rows = [len(measured.column.values)]
            else:
                traces, rows = [], []
                for task in batch:
                    tenant = self.tenants[task.tenant]
                    db = tenant.db
                    recorder = TraceRecorder()
                    real = db.mem
                    with _restored_columns(db):
                        db.mem = recorder
                        try:
                            with db.execution_scope(
                                    tenant.session.config.execution):
                                result = task.plan.execute(db)
                        finally:
                            db.mem = real
                    rows.append(len(result.values))
                    offset = tenant.address_offset
                    traces.append(
                        [("range", e[1] + offset, e[2], e[3], e[4])
                         if e[0] == "range" else (e[0] + offset, e[1])
                         for e in recorder.trace] if offset
                        else recorder.trace)
                replay = replay_interleaved(self.hierarchy, traces,
                                            quantum=self.quantum)
        return replay, rows, measured, wall_start, time.perf_counter_ns()

    # -- dispatcher ----------------------------------------------------
    def _shed(self, task: ServerTask, at_ns: float) -> None:
        """Refuse ``task`` at simulated time ``at_ns`` (its own arrival
        when it never got in, the displacement time for a victim)."""
        tenant = self.tenants[task.tenant]
        tenant.shed += 1
        response = ServerResponse(
            qid=task.qid, tenant=task.tenant, kind=task.kind,
            text=task.text, outcome="shed",
            arrival_ns=task.arrival_ns, start_ns=at_ns,
            finish_ns=at_ns, signature=task.signature,
            fingerprint=task.fingerprint,
            compile_wall_ns=task.compile_wall_ns)
        self._responses.append(response)
        if self.tracer is not None:
            self._m_queries.inc(tenant=task.tenant, kind=task.kind,
                                outcome="shed")
            self.tracer.span(
                "query", track=f"tenant:{task.tenant}",
                category="query", qid=task.qid,
                sim_start_ns=task.arrival_ns, sim_end_ns=at_ns,
                kind=task.kind, outcome="shed",
                signature=task.signature)
        if task.handle is not None and not task.handle.done():
            task.handle.set_result(response)
        self._resolve_bookkeeping()

    def _resolve_bookkeeping(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            self._idle.set()

    def _admit_due(self, now_ns: float) -> None:
        """Move staged tasks that have arrived by ``now_ns`` into the
        run queue, in arrival order — quota checks and shedding happen
        here, on the simulated clock, so queue state is a function of
        the workload, never of compile-thread timing."""
        due = sorted((t for t in self._staged
                      if t.arrival_ns <= now_ns),
                     key=lambda t: (t.arrival_ns, t.qid))
        for task in due:
            self._staged.remove(task)
            quota = self.tenants[task.tenant].quota
            victims = self.admission.offer(task, quota)
            if self.tracer is not None:
                refused = any(victim is task for victim in victims)
                self._m_admission.inc(
                    tenant=task.tenant,
                    decision="shed" if refused else "queued")
                for victim in victims:
                    if victim is not task:
                        self._m_admission.inc(tenant=victim.tenant,
                                              decision="displaced")
            for victim in victims:
                self._shed(victim,
                           victim.arrival_ns if victim is task else now_ns)

    def _trace_batch(self, batch: list[ServerTask], now: float,
                     index: int, finishes: list[float],
                     makespan: float, replay: BatchReplay, measured,
                     wall0: int, wall1: int) -> None:
        """Record one executed batch's spans and metrics.  Called from
        the dispatcher only, after the simulated clock advanced —
        recording order (and therefore the simulated-clock export) is
        a function of the workload, never of thread timing."""
        tracer = self.tracer
        tracer.span(
            "batch", track="server", category="batch",
            sim_start_ns=now, sim_end_ns=now + makespan,
            wall_start_ns=wall0, wall_end_ns=wall1,
            batch_index=index, size=len(batch),
            policy=self.admission.mode, memory_ns=replay.total_ns)
        for i, task in enumerate(batch):
            track = f"tenant:{task.tenant}"
            finish_abs = now + finishes[i]
            root = tracer.span(
                "query", track=track, category="query", qid=task.qid,
                sim_start_ns=task.arrival_ns, sim_end_ns=finish_abs,
                kind=task.kind, outcome="ok", batch_index=index,
                batch_size=len(batch), cache_hit=task.cache_hit,
                signature=task.signature)
            tracer.span(
                "queue", track=track, category="queue", qid=task.qid,
                parent=root.sid, sim_start_ns=task.arrival_ns,
                sim_end_ns=now)
            # A compile is an instant on the simulated clock (the
            # machine never pays for it) but an interval on the wall
            # clock — the dual-clock case in one span.
            tracer.span(
                "compile", track=track, category="compile",
                qid=task.qid, parent=root.sid,
                sim_start_ns=task.arrival_ns,
                sim_end_ns=task.arrival_ns,
                wall_start_ns=task.compile_wall_start_ns,
                wall_end_ns=task.compile_wall_end_ns,
                cache_hit=task.cache_hit)
            if measured is not None:
                # solo batch: per-operator children + drift samples
                tenant = self.tenants[task.tenant]
                seen_events = len(tracer.drift.events)
                execute = tracer.record_measured(
                    measured, track=track, sim_start_ns=now,
                    qid=task.qid, parent=root.sid,
                    fingerprint=tenant.session.fingerprint)
                if finish_abs > execute.sim_end_ns:
                    tracer.span(
                        "cpu", track=track, category="cpu",
                        qid=task.qid, parent=root.sid,
                        sim_start_ns=execute.sim_end_ns,
                        sim_end_ns=finish_abs, cpu_ns=task.cpu_ns)
                self._maybe_recalibrate(
                    task, tenant, measured,
                    tracer.drift.events[seen_events:], finish_abs)
            else:
                tracer.span(
                    "execute", track=track, category="execute",
                    qid=task.qid, parent=root.sid, sim_start_ns=now,
                    sim_end_ns=finish_abs,
                    memory_ns=replay.memory_ns[i], cpu_ns=task.cpu_ns)
            tracer.instant("respond", track=track, at_ns=finish_abs,
                           qid=task.qid, parent=root.sid)
            self._m_queries.inc(tenant=task.tenant, kind=task.kind,
                                outcome="ok")
            self._m_admission.inc(tenant=task.tenant,
                                  decision="admitted")
            self._m_latency.observe(finish_abs - task.arrival_ns,
                                    tenant=task.tenant)
            self._m_queue_wait.observe(now - task.arrival_ns,
                                       tenant=task.tenant)
        self._m_batches.inc(policy=self.admission.mode)
        self._m_batch_size.observe(float(len(batch)))
        self._m_clock.set(self._clock)
        self._m_depth.set(float(len(self.admission.queue)))
        if replay.counters is not None:
            for level in replay.counters.levels:
                self._m_level_hits.inc(level.hits, level=level.name)
                self._m_level_misses.inc(level.seq_misses,
                                         level=level.name, kind="seq")
                self._m_level_misses.inc(level.rand_misses,
                                         level=level.name, kind="rand")

    def _maybe_recalibrate(self, task: ServerTask, tenant: Tenant,
                           measured, events, at_ns: float) -> None:
        """The dispatcher-side response hook: fold the solo-batch
        measurement into the tenant's recalibrator and run it when
        drift is pending.  Called from :meth:`_trace_batch` only — the
        single simulated-clock decision point — so the profile swap
        lands deterministically *between* batches, and every compile
        after it prices (and fingerprints) against the new profile."""
        recalibrator = self._recalibrators.get(task.tenant)
        if recalibrator is None:
            return
        recalibrator.ingest(measured, events=events)
        recalibration = recalibrator.recalibrate()
        if recalibration is None:
            return
        self.recalibrations.append(recalibration)
        if recalibration.published:
            tenant.recalibrations += 1
            self._m_recalibrations.inc(tenant=task.tenant)
            self.tracer.instant(
                "recalibrate", track=f"tenant:{task.tenant}",
                at_ns=at_ns, category="recalibrate",
                fingerprint=recalibration.fingerprint_after,
                error_before=recalibration.outcome.error_before,
                error_after=recalibration.outcome.error_after,
                retired_plans=recalibration.retired_plans)

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._staged or self.admission.queue:
                arrivals = [t.arrival_ns for t in self._staged]
                queued_earliest = self.admission.earliest_arrival()
                if queued_earliest is not None:
                    arrivals.append(queued_earliest)
                now = max(self._clock, min(arrivals))
                if self._compiling and min(self._compiling.values()) <= now:
                    # a query that arrived by `now` is still compiling:
                    # deciding without it would race wall-clock threads
                    break
                self._admit_due(now)
                batch = self.admission.next_batch(now)
                if not batch:
                    # everything due was shed; jump to the next arrival
                    continue
                prediction = self.interference.co_run(
                    [t.plan for t in batch])
                replay, rows, measured, wall0, wall1 = \
                    await loop.run_in_executor(
                        self._pool, self._execute_batch, batch, now)
                finishes = []
                index = self._batch_index
                self._batch_index += 1
                for i, task in enumerate(batch):
                    # done once its accesses have drained *and* its own
                    # CPU work fits after/between them
                    finish = max(replay.finish_ns[i],
                                 replay.memory_ns[i] + task.cpu_ns)
                    finishes.append(finish)
                makespan = max(max(finishes), replay.total_ns)
                for task, finish, nrows in zip(batch, finishes, rows):
                    tenant = self.tenants[task.tenant]
                    tenant.completed += 1
                    response = ServerResponse(
                        qid=task.qid, tenant=task.tenant,
                        kind=task.kind, text=task.text, outcome="ok",
                        arrival_ns=task.arrival_ns, start_ns=now,
                        finish_ns=now + finish, rows=nrows,
                        cache_hit=task.cache_hit, batch_index=index,
                        batch_size=len(batch),
                        signature=task.signature,
                        fingerprint=task.fingerprint,
                        compile_wall_ns=task.compile_wall_ns)
                    self._responses.append(response)
                    self.slo.observe(task.tenant, response.finish_ns,
                                     response.latency_ns)
                    if task.handle is not None \
                            and not task.handle.done():
                        task.handle.set_result(response)
                    self._resolve_bookkeeping()
                self._batches.append(BatchMetrics(
                    index=index, size=len(batch),
                    predicted_memory_ns=prediction.batch_memory_ns,
                    measured_memory_ns=replay.total_ns,
                    predicted_makespan_ns=prediction.makespan_ns,
                    measured_makespan_ns=makespan))
                self._clock = now + makespan
                if self.tracer is not None:
                    self._trace_batch(batch, now, index, finishes,
                                      makespan, replay, measured,
                                      wall0, wall1)

    # -- reporting -----------------------------------------------------
    @property
    def clock_ns(self) -> float:
        """The machine's current simulated time."""
        return self._clock

    def report(self) -> ServingReport:
        """A snapshot of everything served so far."""
        return ServingReport(
            policy=self.admission.mode,
            responses=sorted(self._responses, key=lambda r: r.qid),
            batches=list(self._batches),
            slo=self.slo.snapshot(),
            breaches=list(self.slo.breaches),
            tenants=[t.stats() for t in
                     sorted(self.tenants.values(),
                            key=lambda t: t.index)],
            fingerprint=self.hierarchy.fingerprint())

    def capacity_plan(self, space, *, tenant: str | None = None,
                      slo_p95_ns: float | None = None,
                      clients: int | None = None,
                      spot_check: str = "none",
                      apply_slack: bool = False):
        """Answer a capacity question from the server's own recorded
        mix: re-price everything served so far (one tenant's stream, or
        all tenants') on every candidate of a
        :class:`~repro.whatif.ProfileSpace`.

        The served queries and the owning tenant's catalog are captured
        by value (:class:`~repro.whatif.CapturedWorkload`), then priced
        under the server's *own* admission configuration (mode, slack,
        lookahead, replay quantum) so the what-if batches are the ones
        this server would actually form.  With ``apply_slack=True`` and
        an SLO target, the recommendation's derived admission slack is
        installed on the live :class:`AdmissionController` — the
        planning loop closed.

        Returns the :class:`~repro.whatif.WhatIfReport`.
        """
        from ..whatif import CapturedWorkload, WhatIfSweep

        if tenant is not None:
            owner = self.tenant(tenant)
            served = [r for r in self._responses
                      if r.ok and r.tenant == tenant]
        else:
            owners = sorted(self.tenants.values(), key=lambda t: t.index)
            if not owners:
                raise RuntimeError("no tenants registered")
            # All tenants share generator-built catalogs in practice;
            # capture the first tenant's tables as the representative.
            owner = owners[0]
            served = [r for r in self._responses if r.ok]
        if not served:
            raise RuntimeError("nothing served yet — a capacity plan "
                               "needs a recorded mix")
        served.sort(key=lambda r: r.qid)
        workload = CapturedWorkload.from_session(
            owner.session, [(r.kind, r.text) for r in served],
            clients=clients if clients is not None
            else max(1, len(self.tenants)))
        sweep = WhatIfSweep(space, workload, policy=self.admission.mode,
                            slack=self.admission.slack,
                            lookahead=self.admission.lookahead,
                            quantum=self.quantum)
        report = sweep.run(slo_p95_ns=slo_p95_ns, spot_check=spot_check)
        if apply_slack and report.recommendation is not None:
            self.admission.slack = report.recommendation.admission_slack
        return report

    def __repr__(self) -> str:
        return (f"QueryServer(mode={self.admission.mode!r}, "
                f"tenants={sorted(self.tenants)}, "
                f"served={len(self._responses)})")
