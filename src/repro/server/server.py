"""The asyncio multi-tenant query server.

:class:`QueryServer` turns the offline cost-model stack into a
long-lived service: text-frontend queries arrive (open-loop, stamped
by an arrival process or live via :meth:`~QueryServer.submit`), are
compiled on a bounded worker pool through per-tenant plan caches
(thread-safe since :meth:`~repro.session.PlanCache.get_or_compute`),
wait in the admission controller's bounded queue, and execute as
⊙-guided co-run batches on the one simulated machine.

Two clocks run at once.  *Wall clock*: compiles genuinely run in
parallel on the pool, batches execute in worker threads while the
event loop keeps accepting traffic.  *Simulated clock*: the machine's
time, advanced batch by batch — a batch starts at
``max(machine-free, seed arrival)``, lasts its replayed makespan, and
a query's reported latency is simulated ``finish − arrival``.  All
scheduling decisions are functions of the simulated clock only (a
batch never includes a query that had not arrived when the batch
started, and a decision at simulated time *t* waits for every compile
whose query arrived by *t*), so a serving run is deterministic in
``(workload, seeds, policy)`` no matter how the pool's threads race.

Execution reuses the PR 3 machinery verbatim: each member's access
trace is recorded against its tenant's engine, shifted into the
tenant's private slice of the address space (tenants do not share
tables), and the batch replays round-robin-interleaved through one
cold :class:`~repro.simulator.MemorySystem` — the measured counterpart
of the ⊙ prediction the admission controller trusted.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..hardware.hierarchy import MemoryHierarchy
from ..hardware.profiles import origin2000_scaled
from ..query.optimizer import PlannerConfig, plan_signature
from ..service.executor import (
    DEFAULT_QUANTUM,
    TraceRecorder,
    _restored_columns,
    replay_interleaved,
)
from ..service.interference import InterferenceModel
from ..service.metrics import BatchMetrics, percentile
from ..service.workload import WorkloadQuery
from .admission import AdmissionController, ServerTask
from .slo import DEFAULT_WINDOW_NS, SloTarget, SloTracker
from .tenant import Tenant, TenantQuota

__all__ = ["ServerResponse", "ServingReport", "QueryServer"]


@dataclass(frozen=True)
class ServerResponse:
    """One query's serving outcome on the simulated clock."""

    qid: int
    tenant: str
    kind: str
    text: str
    #: ``"ok"`` or ``"shed"`` (refused by admission control).
    outcome: str
    arrival_ns: float
    start_ns: float
    finish_ns: float
    #: Result cardinality (``None`` when shed).
    rows: int | None = None
    #: Plan-cache provenance of the compile (``None`` when shed).
    cache_hit: bool | None = None
    batch_index: int | None = None
    batch_size: int | None = None
    signature: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    @property
    def latency_ns(self) -> float:
        """Simulated completion latency (0 for shed queries, which are
        refused immediately)."""
        return self.finish_ns - self.arrival_ns

    @property
    def wait_ns(self) -> float:
        """Simulated queueing delay before the query's batch started."""
        return self.start_ns - self.arrival_ns

    def to_json(self) -> dict:
        return {
            "qid": self.qid, "tenant": self.tenant, "kind": self.kind,
            "text": self.text, "outcome": self.outcome,
            "arrival_ns": self.arrival_ns, "start_ns": self.start_ns,
            "finish_ns": self.finish_ns, "latency_ns": self.latency_ns,
            "rows": self.rows, "cache_hit": self.cache_hit,
            "batch_index": self.batch_index,
            "batch_size": self.batch_size, "signature": self.signature,
        }


class ServingReport:
    """A serving run's full accounting: every response, every batch's
    ⊙ prediction next to its replay measurement, the SLO windows, and
    per-tenant counters."""

    def __init__(self, policy: str, responses: list[ServerResponse],
                 batches: list[BatchMetrics], slo: dict,
                 breaches: list, tenants: list[dict]) -> None:
        self.policy = policy
        self.responses = responses
        self.batches = batches
        self.slo = slo
        self.breaches = breaches
        self.tenants = tenants

    # -- headline numbers ----------------------------------------------
    @property
    def completed(self) -> list[ServerResponse]:
        return [r for r in self.responses if r.ok]

    @property
    def shed(self) -> list[ServerResponse]:
        return [r for r in self.responses if not r.ok]

    @property
    def makespan_ns(self) -> float:
        """Simulated completion time of the last served query."""
        done = self.completed
        return max(r.finish_ns for r in done) if done else 0.0

    @property
    def sustained_qps(self) -> float:
        """Completions per simulated second over the whole run."""
        span = self.makespan_ns
        return len(self.completed) / (span / 1e9) if span > 0 else 0.0

    def latency_percentile(self, q: float) -> float | None:
        return percentile([r.latency_ns for r in self.completed], q,
                          empty=None)

    @property
    def p50_latency_ns(self) -> float | None:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_ns(self) -> float | None:
        return self.latency_percentile(95.0)

    @property
    def p99_latency_ns(self) -> float | None:
        return self.latency_percentile(99.0)

    @property
    def predicted_makespan_ns(self) -> float:
        """Σ of the ⊙-predicted batch makespans (busy time only)."""
        return sum(b.predicted_makespan_ns for b in self.batches)

    @property
    def measured_makespan_ns(self) -> float:
        """Σ of the replay-measured batch makespans."""
        return sum(b.measured_makespan_ns for b in self.batches)

    @property
    def mean_contention_error(self) -> float:
        """Mean relative ⊙-vs-replay error over co-run batches."""
        shared = [b.contention_error for b in self.batches if b.size > 1]
        return sum(shared) / len(shared) if shared else 0.0

    def to_json(self) -> dict:
        return {
            "kind": "serving_report",
            "policy": self.policy,
            "completed": len(self.completed),
            "shed": len(self.shed),
            "makespan_ns": self.makespan_ns,
            "sustained_qps": self.sustained_qps,
            "p50_latency_ns": self.p50_latency_ns,
            "p95_latency_ns": self.p95_latency_ns,
            "p99_latency_ns": self.p99_latency_ns,
            "predicted_makespan_ns": self.predicted_makespan_ns,
            "measured_makespan_ns": self.measured_makespan_ns,
            "mean_contention_error": self.mean_contention_error,
            "slo": self.slo,
            "breaches": [b.to_json() for b in self.breaches],
            "tenants": self.tenants,
            "responses": [r.to_json() for r in self.responses],
            "batches": [b.to_json() for b in self.batches],
        }

    def render(self) -> str:
        def _ms(value: float | None) -> str:
            return "     -" if value is None else f"{value / 1e6:6.2f}"

        lines = [
            f"policy {self.policy}: {len(self.completed)} served, "
            f"{len(self.shed)} shed, {len(self.batches)} batches",
            f"  makespan   {self.makespan_ns / 1e6:>10.2f} ms   "
            f"sustained {self.sustained_qps:>8.1f} q/s",
            f"  latency    p50 {_ms(self.p50_latency_ns)} ms   "
            f"p95 {_ms(self.p95_latency_ns)} ms   "
            f"p99 {_ms(self.p99_latency_ns)} ms",
            f"  ⊙ vs replay error {self.mean_contention_error * 100:5.1f}% "
            f"(co-run batches)   SLO breaches {len(self.breaches)}",
        ]
        for tenant in self.tenants:
            cache = tenant["plan_cache"]
            lines.append(
                f"  tenant {tenant['name']:<10} "
                f"served {tenant['completed']:>4}  "
                f"shed {tenant['shed']:>3}  "
                f"plan cache {cache['hits']}/{cache['hits'] + cache['misses']}"
                f" hits")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ServingReport({self.policy!r}, "
                f"completed={len(self.completed)}, "
                f"shed={len(self.shed)}, "
                f"qps={self.sustained_qps:.0f})")


class QueryServer:
    """An asyncio query server over per-tenant session stacks.

    Parameters
    ----------
    hierarchy:
        The shared machine every tenant's queries execute on; defaults
        to the scaled Origin2000.
    mode:
        Batch-formation policy: ``"interference-aware"`` (⊙-guided
        admission, the default), ``"max-parallel"``, or
        ``"fifo-serial"`` (the benchmark baselines).
    max_workers:
        Worker-pool width for compiles and batch execution.
    max_batch / max_queue / slack / lookahead:
        Admission-controller knobs (:class:`AdmissionController`).
    quantum:
        Interleaved-replay time slice (accesses per co-runner per
        turn).
    slo / tenant_slos / slo_window_ns:
        Objectives for the :class:`~repro.server.slo.SloTracker`.
    config:
        Planner config handed to every tenant session.
    """

    def __init__(self, hierarchy: MemoryHierarchy | None = None, *,
                 mode: str = "interference-aware", max_workers: int = 4,
                 max_batch: int = 4, max_queue: int = 64,
                 slack: float = 1.0, lookahead: int = 8,
                 quantum: int = DEFAULT_QUANTUM,
                 slo: SloTarget | None = None,
                 tenant_slos: dict[str, SloTarget] | None = None,
                 slo_window_ns: float = DEFAULT_WINDOW_NS,
                 config: PlannerConfig | None = None) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.hierarchy = (hierarchy if hierarchy is not None
                          else origin2000_scaled())
        self.interference = InterferenceModel(self.hierarchy)
        self.admission = AdmissionController(
            self.interference, mode=mode, max_queue=max_queue,
            max_batch=max_batch, slack=slack, lookahead=lookahead)
        self.slo = SloTracker(target=slo, tenant_targets=tenant_slos,
                              window_ns=slo_window_ns)
        self.max_workers = max_workers
        self.quantum = quantum
        self.config = config
        self.tenants: dict[str, Tenant] = {}
        # accumulated accounting
        self._responses: list[ServerResponse] = []
        self._batches: list[BatchMetrics] = []
        self._clock = 0.0
        self._next_qid = 0
        self._batch_index = 0
        # runtime state (created by start())
        self._pool: ThreadPoolExecutor | None = None
        self._dispatcher: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._compiling: dict[int, float] = {}  # qid -> arrival_ns
        self._staged: list[ServerTask] = []  # compiled, not yet admitted
        self._outstanding = 0
        self._machine_lock = threading.Lock()
        self._model_lock = threading.Lock()

    # -- tenants -------------------------------------------------------
    def add_tenant(self, name: str, quota: TenantQuota | None = None
                   ) -> Tenant:
        """Register a tenant (own catalog, own plan cache, own quota).
        Populate its catalog through ``tenant.session`` — e.g. hand it
        to a :class:`~repro.service.WorkloadGenerator`."""
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} already exists")
        tenant = Tenant(name, index=len(self.tenants),
                        hierarchy=self.hierarchy, quota=quota,
                        config=self.config)
        self.tenants[name] = tenant
        return tenant

    def tenant(self, name: str) -> Tenant:
        try:
            return self.tenants[name]
        except KeyError:
            known = ", ".join(sorted(self.tenants)) or "none registered"
            raise KeyError(f"no tenant {name!r} (known: {known})") \
                from None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "QueryServer":
        """Create the worker pool and the dispatcher; idempotent."""
        if self._dispatcher is not None:
            return self
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-server")
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self) -> None:
        """Stop dispatching and release the pool (pending queries keep
        their futures unresolved; call :meth:`drain` first for a clean
        shutdown)."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def drain(self) -> None:
        """Wait until every submitted query has been resolved (served
        or shed) and the run queue is empty."""
        assert self._idle is not None, "server not started"
        while True:
            await self._idle.wait()
            if self._outstanding == 0 and not self.admission.queue \
                    and not self._staged and not self._compiling:
                return

    # -- submission ----------------------------------------------------
    def submit_nowait(self, tenant: str, text: str, kind: str = "adhoc",
                      arrival_ns: float | None = None
                      ) -> "asyncio.Future[ServerResponse]":
        """Accept one query for ``tenant`` and return a future for its
        :class:`ServerResponse`.  ``arrival_ns`` places it on the
        simulated clock (defaults to the machine's current simulated
        time — "it arrived just now")."""
        if self._pool is None or self._wake is None:
            raise RuntimeError("server not started (use `async with "
                               "QueryServer(...)` or await start())")
        owner = self.tenant(tenant)
        owner.submitted += 1
        qid = self._next_qid
        self._next_qid += 1
        arrival = self._clock if arrival_ns is None else float(arrival_ns)
        loop = asyncio.get_running_loop()
        response: asyncio.Future = loop.create_future()
        self._outstanding += 1
        self._idle.clear()
        self._compiling[qid] = arrival
        compile_future = loop.run_in_executor(
            self._pool, self._compile, owner, qid, kind, text, arrival)

        def _compiled(done: asyncio.Future) -> None:
            del self._compiling[qid]
            try:
                task = done.result()
            except BaseException as exc:  # bad query text, planner error
                if not response.done():
                    response.set_exception(exc)
                self._resolve_bookkeeping()
            else:
                # Stage only: the admission (quota/shedding) decision is
                # the dispatcher's, made on the simulated clock — queue
                # state must not depend on how compile threads raced.
                task.handle = response
                self._staged.append(task)
            self._wake.set()

        compile_future.add_done_callback(_compiled)
        return response

    async def submit(self, tenant: str, text: str, kind: str = "adhoc",
                     arrival_ns: float | None = None) -> ServerResponse:
        """Submit one query and wait for its response."""
        return await self.submit_nowait(tenant, text, kind, arrival_ns)

    async def serve(self, queries: list[WorkloadQuery],
                    tenant_for=None, realtime_factor: float | None = None
                    ) -> list[ServerResponse]:
        """Serve a stamped workload stream and return the responses in
        qid order.  ``tenant_for`` maps a query to a tenant name
        (default: clients dealt round-robin over registered tenants);
        ``realtime_factor`` additionally paces submissions on the wall
        clock (wall seconds per simulated second) — the simulated
        accounting is identical either way, pacing just makes the
        traffic observable."""
        if not self.tenants:
            raise RuntimeError("no tenants registered")
        names = [t.name for t in
                 sorted(self.tenants.values(), key=lambda t: t.index)]
        if tenant_for is None:
            def tenant_for(query):  # noqa: E306
                return names[query.client % len(names)]
        futures = []
        previous_arrival = 0.0
        for query in queries:
            if realtime_factor is not None:
                gap_ns = query.arrival_ns - previous_arrival
                previous_arrival = query.arrival_ns
                if gap_ns > 0:
                    await asyncio.sleep(gap_ns / 1e9 * realtime_factor)
            futures.append(self.submit_nowait(
                tenant_for(query), query.text, kind=query.kind,
                arrival_ns=query.arrival_ns))
        responses = await asyncio.gather(*futures)
        return sorted(responses, key=lambda r: r.qid)

    # -- worker-side stages --------------------------------------------
    def _compile(self, tenant: Tenant, qid: int, kind: str, text: str,
                 arrival_ns: float) -> ServerTask:
        """Worker thread: compile through the tenant's (thread-safe)
        plan cache and price the standalone run."""
        session = tenant.worker_session()
        planned = session.compile(text)
        plan = planned.plan
        with self._model_lock:
            memory, cpu = self.interference.standalone(plan)
        return ServerTask(qid=qid, tenant=tenant.name, kind=kind,
                          text=text, arrival_ns=arrival_ns, plan=plan,
                          solo_memory_ns=memory, cpu_ns=cpu,
                          cache_hit=session.last_compile_cached,
                          signature=plan_signature(plan.root))

    def _execute_batch(self, batch: list[ServerTask], start_ns: float):
        """Worker thread: record each member's trace against its
        tenant's engine (shifted into the tenant's address slice) and
        replay the batch interleaved through one cold memory system on
        the server's machine."""
        with self._machine_lock:
            traces, rows = [], []
            for task in batch:
                tenant = self.tenants[task.tenant]
                db = tenant.db
                recorder = TraceRecorder()
                real = db.mem
                with _restored_columns(db):
                    db.mem = recorder
                    try:
                        with db.execution_scope(
                                tenant.session.config.execution):
                            result = task.plan.execute(db)
                    finally:
                        db.mem = real
                rows.append(len(result.values))
                offset = tenant.address_offset
                traces.append(
                    [("range", e[1] + offset, e[2], e[3], e[4])
                     if e[0] == "range" else (e[0] + offset, e[1])
                     for e in recorder.trace] if offset
                    else recorder.trace)
            replay = replay_interleaved(self.hierarchy, traces,
                                        quantum=self.quantum)
        return replay, rows

    # -- dispatcher ----------------------------------------------------
    def _shed(self, task: ServerTask, at_ns: float) -> None:
        """Refuse ``task`` at simulated time ``at_ns`` (its own arrival
        when it never got in, the displacement time for a victim)."""
        tenant = self.tenants[task.tenant]
        tenant.shed += 1
        response = ServerResponse(
            qid=task.qid, tenant=task.tenant, kind=task.kind,
            text=task.text, outcome="shed",
            arrival_ns=task.arrival_ns, start_ns=at_ns,
            finish_ns=at_ns, signature=task.signature)
        self._responses.append(response)
        if task.handle is not None and not task.handle.done():
            task.handle.set_result(response)
        self._resolve_bookkeeping()

    def _resolve_bookkeeping(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            self._idle.set()

    def _admit_due(self, now_ns: float) -> None:
        """Move staged tasks that have arrived by ``now_ns`` into the
        run queue, in arrival order — quota checks and shedding happen
        here, on the simulated clock, so queue state is a function of
        the workload, never of compile-thread timing."""
        due = sorted((t for t in self._staged
                      if t.arrival_ns <= now_ns),
                     key=lambda t: (t.arrival_ns, t.qid))
        for task in due:
            self._staged.remove(task)
            quota = self.tenants[task.tenant].quota
            for victim in self.admission.offer(task, quota):
                self._shed(victim,
                           victim.arrival_ns if victim is task else now_ns)

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._staged or self.admission.queue:
                arrivals = [t.arrival_ns for t in self._staged]
                queued_earliest = self.admission.earliest_arrival()
                if queued_earliest is not None:
                    arrivals.append(queued_earliest)
                now = max(self._clock, min(arrivals))
                if self._compiling and min(self._compiling.values()) <= now:
                    # a query that arrived by `now` is still compiling:
                    # deciding without it would race wall-clock threads
                    break
                self._admit_due(now)
                batch = self.admission.next_batch(now)
                if not batch:
                    # everything due was shed; jump to the next arrival
                    continue
                prediction = self.interference.co_run(
                    [t.plan for t in batch])
                replay, rows = await loop.run_in_executor(
                    self._pool, self._execute_batch, batch, now)
                finishes = []
                index = self._batch_index
                self._batch_index += 1
                for i, task in enumerate(batch):
                    # done once its accesses have drained *and* its own
                    # CPU work fits after/between them
                    finish = max(replay.finish_ns[i],
                                 replay.memory_ns[i] + task.cpu_ns)
                    finishes.append(finish)
                makespan = max(max(finishes), replay.total_ns)
                for task, finish, nrows in zip(batch, finishes, rows):
                    tenant = self.tenants[task.tenant]
                    tenant.completed += 1
                    response = ServerResponse(
                        qid=task.qid, tenant=task.tenant,
                        kind=task.kind, text=task.text, outcome="ok",
                        arrival_ns=task.arrival_ns, start_ns=now,
                        finish_ns=now + finish, rows=nrows,
                        cache_hit=task.cache_hit, batch_index=index,
                        batch_size=len(batch),
                        signature=task.signature)
                    self._responses.append(response)
                    self.slo.observe(task.tenant, response.finish_ns,
                                     response.latency_ns)
                    if task.handle is not None \
                            and not task.handle.done():
                        task.handle.set_result(response)
                    self._resolve_bookkeeping()
                self._batches.append(BatchMetrics(
                    index=index, size=len(batch),
                    predicted_memory_ns=prediction.batch_memory_ns,
                    measured_memory_ns=replay.total_ns,
                    predicted_makespan_ns=prediction.makespan_ns,
                    measured_makespan_ns=makespan))
                self._clock = now + makespan

    # -- reporting -----------------------------------------------------
    @property
    def clock_ns(self) -> float:
        """The machine's current simulated time."""
        return self._clock

    def report(self) -> ServingReport:
        """A snapshot of everything served so far."""
        return ServingReport(
            policy=self.admission.mode,
            responses=sorted(self._responses, key=lambda r: r.qid),
            batches=list(self._batches),
            slo=self.slo.snapshot(),
            breaches=list(self.slo.breaches),
            tenants=[t.stats() for t in
                     sorted(self.tenants.values(),
                            key=lambda t: t.index)])

    def __repr__(self) -> str:
        return (f"QueryServer(mode={self.admission.mode!r}, "
                f"tenants={sorted(self.tenants)}, "
                f"served={len(self._responses)})")
