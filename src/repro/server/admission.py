"""Admission control: bounded queueing, load shedding, ⊙-guided
batches.

The controller owns the server's run queue and answers two questions.

**May this query wait here?**  The queue is bounded (overload must
surface as explicit shedding, not unbounded simulated latency), and
per-tenant fairly: each tenant's occupancy is capped by its quota, and
when the queue is full a light tenant's arrival displaces the newest
queued query of the *heaviest* tenant instead of being shed — one
tenant flooding the server cannot starve the others out of the queue.

**What runs next?**  Batch formation follows the PR 3 admission rule,
driven by the ⊙ :class:`~repro.service.InterferenceModel`: grow the
batch with the candidate that increases the predicted makespan least,
and admit a candidate only while

    makespan(batch ∪ {c})  ≤  makespan(batch) + slack · solo(c)

i.e. co-running ``c`` is predicted to cost no more than queueing it
behind the batch.  Only queries that have *arrived* by the decision
time are candidates (open-loop semantics: the scheduler cannot see the
future), and batch seeds rotate round-robin over tenants so no tenant
waits forever behind a chattier one.  Two degenerate modes —
``"fifo-serial"`` (singletons) and ``"max-parallel"`` (pack to the cap
in arrival order, contention-blind) — are the baselines the serving
benchmark compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..query.physical import QueryPlan
from ..service.interference import InterferenceModel
from .tenant import TenantQuota

__all__ = ["ServerTask", "AdmissionController", "ADMISSION_MODES"]

#: Recognized batch-formation modes.
ADMISSION_MODES = ("interference-aware", "max-parallel", "fifo-serial")


@dataclass
class ServerTask:
    """One compiled query waiting in the server's run queue."""

    qid: int
    tenant: str
    kind: str
    text: str
    arrival_ns: float
    plan: QueryPlan
    #: Predicted standalone (cold, whole-cache) memory time.
    solo_memory_ns: float
    #: Calibrated pure-CPU time (Eq. 6.1).
    cpu_ns: float
    cache_hit: bool
    signature: str = ""
    #: Fingerprint of the tenant profile the plan was compiled (and
    #: priced) under — response provenance across recalibrations.
    fingerprint: str = ""
    #: Resolution slot the server attaches (an asyncio future-like);
    #: the controller never touches it.
    handle: object = field(default=None, repr=False, compare=False)
    #: Wall-clock (``perf_counter_ns``) stamps around the compile, set
    #: by the server's compile worker; the controller never reads them.
    compile_wall_start_ns: int = 0
    compile_wall_end_ns: int = 0

    @property
    def solo_total_ns(self) -> float:
        """Standalone completion time (Eq. 6.1: memory + CPU)."""
        return self.solo_memory_ns + self.cpu_ns

    @property
    def compile_wall_ns(self) -> int:
        """Wall-clock nanoseconds the compile took."""
        return self.compile_wall_end_ns - self.compile_wall_start_ns


class AdmissionController:
    """Bounded, tenant-fair run queue with ⊙-guided batch formation."""

    def __init__(self, interference: InterferenceModel,
                 mode: str = "interference-aware", max_queue: int = 64,
                 max_batch: int = 4, slack: float = 1.0,
                 lookahead: int = 8) -> None:
        if mode not in ADMISSION_MODES:
            raise ValueError(f"unknown admission mode {mode!r} "
                             f"(expected one of {ADMISSION_MODES})")
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if slack <= 0:
            raise ValueError("slack must be positive")
        if lookahead < 1:
            raise ValueError("lookahead must be positive")
        self.interference = interference
        self.mode = mode
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.slack = slack
        self.lookahead = lookahead
        #: Arrival-ordered run queue.
        self.queue: list[ServerTask] = []
        #: Round-robin seed order over tenant names (least recently
        #: seeded first).
        self._rr: list[str] = []

    # -- queue side ----------------------------------------------------
    def occupancy(self, tenant: str) -> int:
        return sum(1 for t in self.queue if t.tenant == tenant)

    def offer(self, task: ServerTask, quota: TenantQuota
              ) -> list[ServerTask]:
        """Try to queue ``task``; returns the tasks shed by the
        attempt — ``[task]`` itself when it was refused, ``[victim]``
        when it displaced a heavier tenant's entry, ``[]`` when it
        simply fit."""
        if task.tenant not in self._rr:
            self._rr.append(task.tenant)
        if self.occupancy(task.tenant) >= quota.max_queued:
            return [task]  # over its own quota: shed, nobody displaced
        if len(self.queue) < self.max_queue:
            self.queue.append(task)
            return []
        # Queue full: a lighter tenant displaces the newest entry of
        # the heaviest one (never the other way round) — fairness means
        # overload is charged to whoever causes it.
        heaviest = max({t.tenant for t in self.queue},
                       key=self.occupancy)
        if (heaviest == task.tenant
                or self.occupancy(task.tenant) + 1
                >= self.occupancy(heaviest)):
            return [task]
        victim = next(t for t in reversed(self.queue)
                      if t.tenant == heaviest)
        self.queue.remove(victim)
        self.queue.append(task)
        return [victim]

    def earliest_arrival(self) -> float | None:
        """The earliest arrival time still queued (for idle-clock
        jumps), or ``None`` on an empty queue."""
        if not self.queue:
            return None
        return min(t.arrival_ns for t in self.queue)

    def __len__(self) -> int:
        return len(self.queue)

    # -- batch side ----------------------------------------------------
    def _makespan(self, batch: list[ServerTask]) -> float:
        return self.interference.co_run(
            [t.plan for t in batch]).makespan_ns

    def _seed(self, arrived: list[ServerTask]) -> ServerTask:
        """The next batch's seed: the longest-waiting query of the
        least recently seeded tenant that has anything waiting."""
        for name in self._rr:
            for task in arrived:
                if task.tenant == name:
                    self._rr.remove(name)
                    self._rr.append(name)
                    return task
        return arrived[0]

    def next_batch(self, now_ns: float) -> list[ServerTask]:
        """Form (and dequeue) the next co-run batch among the queries
        that have arrived by ``now_ns``; ``[]`` when none have."""
        arrived = [t for t in self.queue if t.arrival_ns <= now_ns]
        if not arrived:
            return []
        if self.mode == "fifo-serial":
            batch = [arrived[0]]
        elif self.mode == "max-parallel":
            batch = arrived[:self.max_batch]
        else:
            batch = [self._seed(arrived)]
            candidates = [t for t in arrived if t is not batch[0]]
            current = self._makespan(batch)
            while len(batch) < self.max_batch and candidates:
                best_index = None
                best_makespan = None
                for i, candidate in enumerate(
                        candidates[:self.lookahead]):
                    predicted = self._makespan(batch + [candidate])
                    limit = current + self.slack * candidate.solo_total_ns
                    if predicted > limit:
                        continue  # rejected: queueing it is cheaper
                    if best_makespan is None or predicted < best_makespan:
                        best_index, best_makespan = i, predicted
                if best_index is None:
                    break
                batch.append(candidates.pop(best_index))
                current = best_makespan
        for task in batch:
            self.queue.remove(task)
        return batch

    def __repr__(self) -> str:
        return (f"AdmissionController(mode={self.mode!r}, "
                f"queued={len(self.queue)}/{self.max_queue}, "
                f"max_batch={self.max_batch}, slack={self.slack})")
