"""Sliding-window latency/throughput tracking and SLO-breach events.

The server observes one sample per completed query — ``(finish_ns,
latency_ns)`` on the simulated clock — into per-tenant and global
sliding windows.  Percentiles come from a
:class:`~repro.obs.BucketedHistogram` kept in sync with the window
(O(1) observe/trim instead of a sort per percentile, memory bounded by
the bucket count; estimates agree with the exact sort within one
bucket width, and exactly when a bucket holds one distinct value).
A window with no completions has no percentile (``None``); targets are
declared per scope and every violation is recorded as a typed
:class:`SloBreach` event, so "did we hold p99 under load?" is a
question about data, not about eyeballing logs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..obs import BucketedHistogram

__all__ = ["SloTarget", "SloBreach", "SlidingWindow", "SloTracker"]

#: Default sliding-window span: 50 simulated ms — hundreds of queries
#: at the simulated machine's few-thousand-q/s service rate.
DEFAULT_WINDOW_NS = 50e6


@dataclass(frozen=True)
class SloTarget:
    """Latency/throughput objectives; ``None`` means untracked."""

    p50_ns: float | None = None
    p95_ns: float | None = None
    p99_ns: float | None = None
    min_throughput_qps: float | None = None

    def __post_init__(self) -> None:
        for name in ("p50_ns", "p95_ns", "p99_ns", "min_throughput_qps"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class SloBreach:
    """One observed violation: ``scope`` is ``"global"`` or a tenant
    name; ``metric`` names the violated objective."""

    at_ns: float
    scope: str
    metric: str
    value: float
    limit: float

    def to_json(self) -> dict:
        return {"at_ns": self.at_ns, "scope": self.scope,
                "metric": self.metric, "value": self.value,
                "limit": self.limit}


class SlidingWindow:
    """Completion samples inside the trailing ``window_ns``.

    Samples arrive in finish-time order (the server's simulated clock
    is monotone), so trimming is a popleft loop.  The deque keeps the
    ``(finish, latency)`` pairs the trim and throughput calculations
    need; a :class:`~repro.obs.BucketedHistogram` mirrors the retained
    latencies so percentile queries are O(buckets), not a sort over
    the window.
    """

    def __init__(self, window_ns: float = DEFAULT_WINDOW_NS) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self.window_ns = window_ns
        self._samples: deque[tuple[float, float]] = deque()
        self._histogram = BucketedHistogram()
        self.total_observed = 0

    def observe(self, finish_ns: float, latency_ns: float) -> None:
        self._samples.append((finish_ns, latency_ns))
        self._histogram.observe(latency_ns)
        self.total_observed += 1
        self._trim(finish_ns)

    def _trim(self, now_ns: float) -> None:
        cutoff = now_ns - self.window_ns
        while self._samples and self._samples[0][0] < cutoff:
            _, latency = self._samples.popleft()
            self._histogram.forget(latency)

    def __len__(self) -> int:
        return len(self._samples)

    def latency_percentile(self, q: float) -> float | None:
        return self._histogram.percentile(q)

    def throughput_qps(self) -> float:
        """Completions per simulated second over the window actually
        covered (from the first retained sample, so a half-filled
        window is not under-reported)."""
        if not self._samples:
            return 0.0
        span = self._samples[-1][0] - self._samples[0][0]
        span = max(span, 1.0)  # a single sample: avoid div-by-zero
        return (len(self._samples) - 1) / (span / 1e9) \
            if len(self._samples) > 1 else 0.0

    def snapshot(self) -> dict:
        return {
            "count": len(self._samples),
            "total_observed": self.total_observed,
            "p50_ns": self.latency_percentile(50.0),
            "p95_ns": self.latency_percentile(95.0),
            "p99_ns": self.latency_percentile(99.0),
            "throughput_qps": self.throughput_qps(),
        }


class SloTracker:
    """Global + per-tenant sliding windows with breach detection.

    ``target`` applies to the global window; ``tenant_targets`` maps
    tenant names to their own objectives.  :meth:`observe` returns the
    breaches that observation caused (and appends them to
    :attr:`breaches`); throughput objectives are only checked once a
    window holds at least :attr:`MIN_THROUGHPUT_SAMPLES` completions,
    so a stream's first queries don't trip a rate floor vacuously.
    """

    MIN_THROUGHPUT_SAMPLES = 8

    def __init__(self, target: SloTarget | None = None,
                 tenant_targets: dict[str, SloTarget] | None = None,
                 window_ns: float = DEFAULT_WINDOW_NS) -> None:
        self.target = target
        self.tenant_targets = dict(tenant_targets or {})
        self.window_ns = window_ns
        self.global_window = SlidingWindow(window_ns)
        self.tenant_windows: dict[str, SlidingWindow] = {}
        self.breaches: list[SloBreach] = []

    # ------------------------------------------------------------------
    def _window(self, tenant: str) -> SlidingWindow:
        window = self.tenant_windows.get(tenant)
        if window is None:
            window = self.tenant_windows[tenant] = SlidingWindow(
                self.window_ns)
        return window

    def _check(self, scope: str, window: SlidingWindow,
               target: SloTarget | None, at_ns: float) -> list[SloBreach]:
        if target is None:
            return []
        found: list[SloBreach] = []
        for metric, limit in (("p50_ns", target.p50_ns),
                              ("p95_ns", target.p95_ns),
                              ("p99_ns", target.p99_ns)):
            if limit is None:
                continue
            value = window.latency_percentile(float(metric[1:-3]))
            if value is not None and value > limit:
                found.append(SloBreach(at_ns=at_ns, scope=scope,
                                       metric=metric, value=value,
                                       limit=limit))
        if (target.min_throughput_qps is not None
                and len(window) >= self.MIN_THROUGHPUT_SAMPLES):
            qps = window.throughput_qps()
            if qps < target.min_throughput_qps:
                found.append(SloBreach(at_ns=at_ns, scope=scope,
                                       metric="throughput_qps", value=qps,
                                       limit=target.min_throughput_qps))
        return found

    def observe(self, tenant: str, finish_ns: float,
                latency_ns: float) -> list[SloBreach]:
        """Record one completion; returns the breaches it triggered."""
        self.global_window.observe(finish_ns, latency_ns)
        window = self._window(tenant)
        window.observe(finish_ns, latency_ns)
        caused = self._check("global", self.global_window, self.target,
                             finish_ns)
        caused += self._check(tenant, window,
                              self.tenant_targets.get(tenant), finish_ns)
        self.breaches.extend(caused)
        return caused

    def breach_count(self, scope: str) -> int:
        """Cumulative breaches recorded for one scope (``"global"`` or
        a tenant name)."""
        return sum(1 for breach in self.breaches if breach.scope == scope)

    def snapshot(self) -> dict:
        """Current windows, global and per tenant — each carrying its
        cumulative breach count — plus the total breach count."""
        def _scoped(scope: str, window: SlidingWindow) -> dict:
            scoped = window.snapshot()
            scoped["breaches"] = self.breach_count(scope)
            return scoped

        return {
            "global": _scoped("global", self.global_window),
            "tenants": {name: _scoped(name, window)
                        for name, window in
                        sorted(self.tenant_windows.items())},
            "breaches": len(self.breaches),
        }
