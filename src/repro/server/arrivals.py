"""Seeded open-loop arrival processes for live traffic.

*Open-loop* means arrivals follow the clock, not the server: a slow
server does not slow the stream down, it grows the queue — the regime
in which tail latency and admission control actually matter (a
closed-loop client politely waits for its previous response, which
hides overload).  Every process here is deterministic in its seed, so
a serving experiment can be replayed query-for-query, gap-for-gap.

The gap vocabulary is shared with offline replay:
:func:`repro.service.workload.poisson_gaps` /
:func:`~repro.service.workload.stamp_arrivals` define what a stamped
stream *is*; this module adds process objects the server and the
benchmarks can hold, plus a bursty variant (Poisson epochs of
back-to-back arrivals) for stress shapes a plain Poisson stream never
produces.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from ..service.workload import WorkloadQuery, poisson_gaps, stamp_arrivals

__all__ = ["ArrivalProcess", "PoissonArrivals", "BurstArrivals"]


class ArrivalProcess:
    """Base class: a seeded generator of inter-arrival gaps
    (simulated ns) with mean rate :attr:`rate_qps`.

    :meth:`gaps` returns a fresh, endless iterator each call — drawn
    from a generator seeded per call, so stamping the same stream twice
    yields identical timestamps.
    """

    def __init__(self, rate_qps: float, seed: int = 0) -> None:
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        self.rate_qps = rate_qps
        self.seed = seed

    @property
    def mean_gap_ns(self) -> float:
        return 1e9 / self.rate_qps

    def gaps(self) -> Iterator[float]:
        raise NotImplementedError

    def timestamps(self, n: int) -> list[float]:
        """The first ``n`` cumulative arrival times."""
        if n < 0:
            raise ValueError("n must be non-negative")
        out, clock, gaps = [], 0.0, self.gaps()
        for _ in range(n):
            clock += next(gaps)
            out.append(clock)
        return out

    def stamp(self, queries: Sequence[WorkloadQuery]
              ) -> list[WorkloadQuery]:
        """The same stream with this process's arrival timestamps."""
        return stamp_arrivals(queries, self.gaps())

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(rate_qps={self.rate_qps}, "
                f"seed={self.seed})")


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps with mean
    ``1e9 / rate_qps`` ns — the classic open-loop traffic model."""

    def gaps(self) -> Iterator[float]:
        return poisson_gaps(random.Random(self.seed), self.rate_qps)


class BurstArrivals(ArrivalProcess):
    """Bursty arrivals at the same mean rate: every ``burst``-th gap is
    a long exponential quiet period, the rest are short intra-burst
    gaps (``burst_spread`` of the mean gap) — clients piling in
    together, then silence.  Mean rate stays ``rate_qps``; the variance
    moves into the bursts, which is what stresses admission control and
    the tail percentiles."""

    def __init__(self, rate_qps: float, seed: int = 0, burst: int = 4,
                 burst_spread: float = 0.1) -> None:
        super().__init__(rate_qps, seed)
        if burst < 1:
            raise ValueError("burst must be positive")
        if not 0.0 <= burst_spread < 1.0:
            raise ValueError("burst_spread must be in [0, 1)")
        self.burst = burst
        self.burst_spread = burst_spread

    def gaps(self) -> Iterator[float]:
        rng = random.Random(self.seed)
        intra_ns = self.burst_spread * self.mean_gap_ns
        # one long gap per burst keeps the mean: burst·mean = long +
        # (burst-1)·intra
        long_mean_ns = (self.burst * self.mean_gap_ns
                        - (self.burst - 1) * intra_ns)

        def _gaps() -> Iterator[float]:
            while True:
                yield rng.expovariate(1.0 / long_mean_ns)
                for _ in range(self.burst - 1):
                    yield intra_ns

        return _gaps()

    def __repr__(self) -> str:
        return (f"BurstArrivals(rate_qps={self.rate_qps}, "
                f"seed={self.seed}, burst={self.burst}, "
                f"burst_spread={self.burst_spread})")
