"""Per-tenant state: catalog, plan cache, quotas, worker sessions.

A tenant is a *hard isolation* unit: it owns a root
:class:`~repro.session.Session` with its own
:class:`~repro.db.Database` (catalog and simulated address space) and
its own :class:`~repro.session.PlanCache` — so one tenant's profile
switch retires only its own cached plans, and its cache churn can
never evict another tenant's entries.  All tenants share the one
machine (the server's :class:`~repro.hardware.MemoryHierarchy`), which
is exactly the multi-tenant bargain: isolated state, contended
hardware.

Worker threads get per-thread :meth:`~repro.session.Session.spawn`-ed
client sessions over the tenant's engine and cache, keeping compile
provenance (hit/miss) per worker while plans are shared tenant-wide.

Because every :class:`~repro.db.Database` allocates from the same base
address, different tenants' traces would alias in a co-run replay —
two tenants' tables are *not* the same memory.  Each tenant therefore
carries an :attr:`address_offset` (``index × 8 GiB``) the server adds
to its trace addresses before interleaved replay: line/page alignment
is preserved (the stride is a multiple of every line and page size),
but tags differ, so tenants genuinely compete instead of accidentally
sharing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..hardware.hierarchy import MemoryHierarchy
from ..query.optimizer import PlannerConfig
from ..session import PlanCache, Session

__all__ = ["TenantQuota", "Tenant", "TENANT_ADDRESS_STRIDE"]

#: Address-space stride between tenants in co-run replays (8 GiB — a
#: power of two far above any simulated allocation, so offset traces
#: keep their alignment and never overlap).
TENANT_ADDRESS_STRIDE = 1 << 33


@dataclass(frozen=True)
class TenantQuota:
    """Resource bounds one tenant may consume.

    ``max_queued`` caps the tenant's share of the admission queue
    (its excess load is shed, not everyone's); ``plan_cache_entries``
    sizes the tenant's private plan cache.
    """

    max_queued: int = 16
    plan_cache_entries: int = 64

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ValueError("max_queued must be positive")
        if self.plan_cache_entries < 1:
            raise ValueError("plan_cache_entries must be positive")


class Tenant:
    """One tenant's sessions, cache, quota, and serving counters."""

    def __init__(self, name: str, index: int,
                 hierarchy: MemoryHierarchy,
                 quota: TenantQuota | None = None,
                 config: PlannerConfig | None = None) -> None:
        if not name:
            raise ValueError("tenant name must be non-empty")
        if index < 0:
            raise ValueError("tenant index must be non-negative")
        self.name = name
        self.index = index
        self.quota = quota if quota is not None else TenantQuota()
        self.session = Session(
            hierarchy=hierarchy, config=config,
            cache=PlanCache(max_entries=self.quota.plan_cache_entries))
        self._workers: dict[int, Session] = {}
        self._workers_lock = threading.Lock()
        # serving counters (maintained by the server)
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        #: Profiles republished for this tenant by the server's online
        #: recalibration loop (each swap retires the plan cache).
        self.recalibrations = 0

    # ------------------------------------------------------------------
    @property
    def db(self):
        return self.session.db

    @property
    def plan_cache(self) -> PlanCache:
        return self.session.plan_cache

    @property
    def address_offset(self) -> int:
        """Offset added to this tenant's trace addresses in co-run
        replays (see the module docstring)."""
        return self.index * TENANT_ADDRESS_STRIDE

    def worker_session(self) -> Session:
        """The calling worker thread's spawned client session over this
        tenant's engine and plan cache (created on first use; compile
        provenance stays per thread)."""
        ident = threading.get_ident()
        with self._workers_lock:
            session = self._workers.get(ident)
            if session is None:
                session = self._workers[ident] = self.session.spawn()
            return session

    def set_hierarchy(self, hierarchy: MemoryHierarchy) -> None:
        """Switch *this tenant's* machine profile (e.g. after a
        re-calibration).  Only this tenant's plan-cache keys stop
        matching — its prepared statements recompile transparently,
        every other tenant's cache is untouched (they are different
        objects)."""
        self.session.set_hierarchy(hierarchy)

    def stats(self) -> dict:
        return {
            "name": self.name,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "recalibrations": self.recalibrations,
            "plan_cache": self.plan_cache.stats(),
            "profile": self.session.fingerprint,
        }

    def __repr__(self) -> str:
        return (f"Tenant({self.name!r}, index={self.index}, "
                f"tables={sorted(self.db.catalog)})")
