"""Async multi-tenant query serving over the cost-model stack.

The :class:`QueryServer` is the repo's online tier: seeded open-loop
traffic (:class:`PoissonArrivals` / :class:`BurstArrivals`) flows
through per-tenant sessions and plan caches (:class:`Tenant`), a
bounded ⊙-guided admission controller (:class:`AdmissionController`)
forms co-run batches, and sliding-window SLOs (:class:`SloTracker`)
watch the tail.  Everything runs on the simulated clock, so serving
experiments are deterministic and replayable.
"""

from .admission import ADMISSION_MODES, AdmissionController, ServerTask
from .arrivals import ArrivalProcess, BurstArrivals, PoissonArrivals
from .server import QueryServer, ServerResponse, ServingReport
from .slo import (
    DEFAULT_WINDOW_NS,
    SlidingWindow,
    SloBreach,
    SloTarget,
    SloTracker,
)
from .tenant import TENANT_ADDRESS_STRIDE, Tenant, TenantQuota

__all__ = [
    "QueryServer",
    "ServerResponse",
    "ServingReport",
    "Tenant",
    "TenantQuota",
    "TENANT_ADDRESS_STRIDE",
    "AdmissionController",
    "ServerTask",
    "ADMISSION_MODES",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstArrivals",
    "SloTarget",
    "SloTracker",
    "SloBreach",
    "SlidingWindow",
    "DEFAULT_WINDOW_NS",
]
