"""Buffer-pool simulation: the disk level of the unified model.

Paper Section 7 argues that a DBMS buffer pool is "just another cache
level": its lines are disk pages, a sequential miss is a page transfer,
a random miss additionally carries the seek.  :class:`BufferPoolSim`
is therefore a :class:`~repro.simulator.cache.CacheSim` — same LRU
residency, same EDO sequential/random miss classification — plus the
one piece of state a pool has that a CPU cache does not: **dirty
pages**.  A write marks the resident page dirty; evicting a dirty page
counts a write-back (the page must reach disk before its frame is
reused).  Write-backs are *counted*, not charged time, keeping the
simulator's elapsed-time account aligned with the cost model, which —
like the paper — does not distinguish read and write bandwidth.

The miss counters of this level are what the out-of-core differential
tests compare against the model's predicted pool-level misses: the
software analogue of an iostat trace next to the R10000 event counters.
"""

from __future__ import annotations

from ..hardware.cache_level import CacheLevel
from .cache import CacheSim

__all__ = ["BufferPoolSim"]


class BufferPoolSim(CacheSim):
    """Trace-driven simulation of a buffer-pool level.

    Parameters
    ----------
    level:
        A :class:`~repro.hardware.CacheLevel` with ``is_pool=True``
        (``line_size`` is the disk page size).
    """

    __slots__ = ("_dirty", "write_backs")

    def __init__(self, level: CacheLevel) -> None:
        super().__init__(level)
        self._dirty: set[int] = set()
        self.write_backs = 0

    # ------------------------------------------------------------------
    @property
    def dirty_pages(self) -> int:
        """Resident pages modified since they were last written out."""
        return len(self._dirty)

    def flush(self) -> int:
        """Write out every dirty page (checkpoint); returns how many
        write-backs that forced."""
        forced = len(self._dirty)
        self.write_backs += forced
        self._dirty.clear()
        return forced

    def reset(self) -> None:
        super().reset()
        self._dirty.clear()
        self.write_backs = 0

    # -- CacheSim hooks -------------------------------------------------
    def _note_write(self, line: int) -> None:
        self._dirty.add(line)

    def _note_evict(self, line: int) -> None:
        if line in self._dirty:
            self._dirty.discard(line)
            self.write_backs += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BufferPoolSim({self.name}: {self.hits} hits, "
                f"{self.seq_misses}+{self.rand_misses} misses, "
                f"{self.write_backs} write-backs)")
