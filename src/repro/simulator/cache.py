"""Set-associative LRU cache simulation.

This is the measurement substrate that replaces the MIPS R10000 hardware
event counters of the paper's experimental setup (see DESIGN.md): every
data access of the database engine is pushed through a cascade of these
caches, and the per-level miss counters play the role of the paper's
measured L1 / L2 / TLB miss counts.

A cache is an array of associativity sets; each set is an LRU list of line
tags, implemented as an insertion-ordered ``dict`` (re-inserting a tag
moves it to the MRU end; the LRU victim is the first key).

Misses are classified *sequential* or *random* with the EDO model of paper
Section 2.2: a miss whose line directly succeeds the line of a recent miss
on the same cache rides the extended-data-output / prefetch stream and
pays the (lower) sequential miss latency; any other miss pays the random
miss latency.  A small window of recent miss lines is kept so that several
interleaved sequential streams (e.g. the three cursors of a merge join)
are each recognised as sequential, matching the paper's observation that
such operators run at sequential latency.
"""

from __future__ import annotations

from ..core.misses import STREAM_WINDOW
from ..hardware.cache_level import CacheLevel

__all__ = ["CacheSim", "HIT", "SEQ_MISS", "RAND_MISS", "STREAM_WINDOW"]

#: Result codes of :meth:`CacheSim.probe`.
HIT = 0
SEQ_MISS = 1
RAND_MISS = 2

# STREAM_WINDOW — how many outstanding sequential miss streams the EDO
# classifier tracks — is shared with the cost model's nest
# reconstruction (:data:`repro.core.misses.STREAM_WINDOW`): the model
# predicts sequential latency for up to that many interleaved cursors,
# and the classifier recognises exactly that many.


class CacheSim:
    """Trace-driven simulation of one cache level.

    Parameters
    ----------
    level:
        The :class:`~repro.hardware.CacheLevel` describing geometry and
        latencies.  ``level.is_tlb`` levels work identically; their "line"
        is a memory page.
    """

    __slots__ = (
        "level", "name", "_line_size", "_num_sets", "_ways", "_sets",
        "hits", "seq_misses", "rand_misses", "_recent_miss_lines",
    )

    def __init__(self, level: CacheLevel) -> None:
        self.level = level
        self.name = level.name
        self._line_size = level.line_size
        self._ways = level.effective_associativity
        self._num_sets = level.num_sets
        self._sets: list[dict[int, None]] = [dict() for _ in range(self._num_sets)]
        self.hits = 0
        self.seq_misses = 0
        self.rand_misses = 0
        # FIFO window of recent miss lines (dict for O(1) membership).
        self._recent_miss_lines: dict[int, None] = {}

    # ------------------------------------------------------------------
    @property
    def misses(self) -> int:
        """Total misses of either kind."""
        return self.seq_misses + self.rand_misses

    @property
    def accesses(self) -> int:
        """Total line probes."""
        return self.hits + self.misses

    def reset(self) -> None:
        """Drop all cached lines and zero the counters."""
        for s in self._sets:
            s.clear()
        self.hits = 0
        self.seq_misses = 0
        self.rand_misses = 0
        self._recent_miss_lines.clear()

    def reset_counters(self) -> None:
        """Zero the counters but keep cache contents (warm cache)."""
        self.hits = 0
        self.seq_misses = 0
        self.rand_misses = 0

    # ------------------------------------------------------------------
    def probe(self, line: int, write: bool = False) -> int:
        """Access one line (identified by ``byte_address // line_size``).

        Returns :data:`HIT`, :data:`SEQ_MISS` or :data:`RAND_MISS`.  On a
        miss the line is allocated, evicting the set's LRU line if the set
        is full.  ``write`` does not change hit/miss accounting (the paper
        costs reads and writes identically, Section 2.2); it feeds the
        :meth:`_note_write` hook, which buffer-pool levels use to track
        dirty pages (:class:`~repro.simulator.BufferPoolSim`).
        """
        s = self._sets[line % self._num_sets]
        if line in s:
            # LRU update: move to the MRU end of the insertion order.
            del s[line]
            s[line] = None
            self.hits += 1
            if write:
                self._note_write(line)
            return HIT
        if len(s) >= self._ways:
            victim = next(iter(s))
            del s[victim]
            self._note_evict(victim)
        s[line] = None
        if write:
            self._note_write(line)
        recent = self._recent_miss_lines
        if line - 1 in recent:
            # Continuation of an ascending stream: replace the
            # predecessor so the stream keeps exactly one window slot.
            del recent[line - 1]
            recent[line] = None
            self.seq_misses += 1
            result = SEQ_MISS
        elif line + 1 in recent:
            # Descending stream (e.g. a backward-walking sort cursor):
            # equally prefetch-friendly.
            del recent[line + 1]
            recent[line] = None
            self.seq_misses += 1
            result = SEQ_MISS
        else:
            if len(recent) >= STREAM_WINDOW:
                del recent[next(iter(recent))]
            recent[line] = None
            self.rand_misses += 1
            result = RAND_MISS
        return result

    # -- subclass hooks (no-ops for plain CPU caches) -------------------
    def _note_write(self, line: int) -> None:
        """A write touched ``line`` (now resident)."""

    def _note_evict(self, line: int) -> None:
        """``line`` was evicted to make room."""

    def contains(self, line: int) -> bool:
        """Whether a line is currently resident (no LRU side effect)."""
        return line in self._sets[line % self._num_sets]

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(s) for s in self._sets)

    def lines_of(self, addr: int, nbytes: int) -> range:
        """The line addresses spanned by the byte range ``[addr, addr+nbytes)``."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        first = addr // self._line_size
        last = (addr + nbytes - 1) // self._line_size
        return range(first, last + 1)

    def miss_time_ns(self) -> float:
        """Elapsed time charged to this cache's misses (Eq. 3.1 summand)."""
        return (self.seq_misses * self.level.seq_miss_latency_ns
                + self.rand_misses * self.level.rand_miss_latency_ns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CacheSim({self.name}: {self.hits} hits, "
                f"{self.seq_misses}+{self.rand_misses} misses)")
