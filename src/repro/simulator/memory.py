"""Multi-level memory-system simulation.

:class:`MemorySystem` cascades :class:`~repro.simulator.cache.CacheSim`
instances for every data-cache level of a hierarchy and probes the TLB
levels in parallel, exactly mirroring the paper's unified hardware model:

* an access spans one or more L1 lines; every spanned L1 line is probed;
* a line that misses on level ``i`` is forwarded to level ``i+1`` (probing
  the containing level-``i+1`` line there), and so on — a miss on the last
  level is an access to main memory;
* every page spanned by the access is probed in each TLB;
* each miss on level ``i`` adds that level's sequential or random miss
  latency to the elapsed-time account (Eq. 3.1 evaluated exactly, event
  by event).

The simulator is the reproduction's stand-in for hardware performance
counters (see DESIGN.md).
"""

from __future__ import annotations

from typing import Iterable

from ..hardware.hierarchy import MemoryHierarchy
from .bufferpool import BufferPoolSim
from .cache import HIT, RAND_MISS, STREAM_WINDOW, CacheSim
from .counters import CounterSnapshot, LevelCounters

__all__ = ["MemorySystem"]


class MemorySystem:
    """Trace-driven simulation of a full memory hierarchy.

    Parameters
    ----------
    hierarchy:
        The machine to simulate.  Every level of
        ``hierarchy.all_levels`` gets its own :class:`CacheSim`.
    """

    __slots__ = ("hierarchy", "caches", "tlbs", "elapsed_ns", "accesses",
                 "_l1_line", "_level_chain", "_hit_gran")

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        self.caches = tuple(
            BufferPoolSim(lvl) if lvl.is_pool else CacheSim(lvl)
            for lvl in hierarchy.levels
        )
        self.tlbs = tuple(CacheSim(lvl) for lvl in hierarchy.tlbs)
        self.elapsed_ns = 0.0
        self.accesses = 0
        self._l1_line = hierarchy.levels[0].line_size
        # (cache, line_size, seq_latency, rand_latency) per data level,
        # pre-extracted for the hot loop.
        self._level_chain = tuple(
            (sim, lvl.line_size, lvl.seq_miss_latency_ns, lvl.rand_miss_latency_ns)
            for sim, lvl in zip(self.caches, hierarchy.levels)
        )
        # Bulk-hit granule for :meth:`access_range`: an access confined
        # to one ``_hit_gran``-aligned block touches exactly one L1 line
        # and one page of every TLB.  Zero disables the coalesced path
        # (exotic geometries where the minimum does not divide the rest).
        sizes = [self._l1_line] + [tlb._line_size for tlb in self.tlbs]
        gran = min(sizes)
        self._hit_gran = gran if all(s % gran == 0 for s in sizes) else 0

    # ------------------------------------------------------------------
    def access(self, addr: int, nbytes: int = 1, write: bool = False) -> None:
        """Simulate one memory access to ``[addr, addr + nbytes)``.

        Reads and writes are costed identically (the paper does not
        distinguish read and write bandwidth, Section 2.2); ``write``
        additionally marks the touched pages of a buffer-pool level
        dirty so write-backs are counted
        (:class:`~repro.simulator.BufferPoolSim`).
        """
        if addr < 0:
            raise ValueError("negative address")
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self.accesses += 1
        self._access_one(addr, nbytes, write)

    def _access_one(self, addr: int, nbytes: int, write: bool) -> None:
        """The :meth:`access` event engine, without validation or the
        ``accesses`` count — the batch entry points loop over this."""
        elapsed = 0.0

        # TLB probes: one per page spanned, per TLB level.
        for tlb in self.tlbs:
            page_size = tlb._line_size
            first = addr // page_size
            last = (addr + nbytes - 1) // page_size
            for page in range(first, last + 1):
                if tlb.probe(page) != HIT:
                    elapsed += tlb.level.rand_miss_latency_ns

        # Data caches: probe every spanned L1 line, cascade misses outwards.
        chain = self._level_chain
        l1 = self._l1_line
        first = addr // l1
        last = (addr + nbytes - 1) // l1
        pending = range(first, last + 1)  # line addrs at L1 granularity
        byte_addrs = None
        for depth, (sim, line_size, seq_lat, rand_lat) in enumerate(chain):
            if depth == 0:
                lines = pending
            else:
                # Translate missed lines of the previous level into this
                # level's (deduplicated, order-preserving) line addresses.
                prev_line_size = chain[depth - 1][1]
                ratio = line_size // prev_line_size
                lines = []
                seen_last = -1
                for ln in pending:
                    cur = ln // ratio
                    if cur != seen_last:
                        lines.append(cur)
                        seen_last = cur
            missed = []
            for ln in lines:
                outcome = sim.probe(ln, write)
                if outcome != HIT:
                    missed.append(ln)
                    if outcome == RAND_MISS:
                        elapsed += rand_lat
                    else:
                        elapsed += seq_lat
            if not missed:
                break
            pending = missed

        self.elapsed_ns += elapsed

    def read(self, addr: int, nbytes: int = 1) -> None:
        """Convenience alias for a read access."""
        self.access(addr, nbytes, write=False)

    def write(self, addr: int, nbytes: int = 1) -> None:
        """Convenience alias for a write access."""
        self.access(addr, nbytes, write=True)

    # ------------------------------------------------------------------
    def access_range(self, addr: int, nbytes: int, stride: int | None = None,
                     count: int = 1, write: bool = False) -> None:
        """Simulate ``count`` accesses of ``nbytes`` each, ``stride``
        bytes apart, in one call — the range-coalesced reporting API the
        vectorized kernels use for strided sweeps.

        Byte-identical to the per-item loop ::

            for i in range(count):
                mem.access(addr + i * stride, nbytes, write)

        in every counter and in ``elapsed_ns``, but much cheaper to
        report: consecutive items that stay inside the L1-line/TLB-page
        granule their predecessor just touched are *provably* hits on
        the MRU entry of each set (no LRU state change, no EDO window
        change, no latency), so the simulator batches them as counter
        arithmetic instead of replaying each probe.  Items that cross a
        granule boundary — where misses, evictions, and stream
        classification can happen — go through the full event engine
        one by one.  ``stride`` defaults to ``nbytes`` (a dense array
        sweep); a zero stride models ``count`` repeat touches of one
        item and a negative stride a backward walk.
        """
        if stride is None:
            stride = nbytes
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        lowest = addr if stride >= 0 else addr + (count - 1) * stride
        if lowest < 0:
            raise ValueError("negative address")
        access_one = self._access_one
        gran = self._hit_gran
        bulk = 0
        counted = 0
        if stride < 0 or not gran:
            for i in range(count):
                access_one(addr + i * stride, nbytes, write)
        elif stride == 0:
            access_one(addr, nbytes, write)
            if count > 1:
                if addr // gran == (addr + nbytes - 1) // gran:
                    # Repeat touches of a single-granule item: the line
                    # and page are MRU after the first access, so every
                    # repeat is a pure hit (writes re-mark an
                    # already-dirty pool page — idempotent).
                    bulk = count - 1
                else:
                    for _ in range(count - 1):
                        access_one(addr, nbytes, write)
        elif (nbytes <= stride and gran == self._l1_line
                and gran % stride == 0 and addr % stride == 0
                and len(self.tlbs) <= 1 and count >= 8):
            # Aligned dense sweep (every item inside one granule, one
            # TLB): the fully inlined line-walking engine.
            self._sweep(addr, nbytes, stride, count, write)
            return
        else:
            # Anchors (first item in each granule) go through the real
            # event engine; everything after them inside the granule is
            # a provable MRU hit, batched below.  For long ranges the
            # anchors themselves run through the fused single-line
            # engine of :meth:`batch` (it counts its own accesses).
            if count >= 16:
                anchor_access = self.batch()
                counted = None
            else:
                anchor_access = access_one
            i = 0
            while i < count:
                anchor = addr + i * stride
                anchor_access(anchor, nbytes, write)
                i += 1
                block_end = (anchor // gran + 1) * gran
                if anchor + nbytes <= block_end:
                    # Every later item fully inside the anchor's granule
                    # hits the same (now MRU) L1 line and TLB pages.
                    last = (block_end - nbytes - addr) // stride
                    if last >= count:
                        last = count - 1
                    if last >= i:
                        bulk += last - i + 1
                        i = last + 1
        if bulk:
            self.caches[0].hits += bulk
            for tlb in self.tlbs:
                tlb.hits += bulk
        # The fused anchor engine already counted the anchors.
        self.accesses += bulk if counted is None else count

    def _sweep(self, addr: int, nbytes: int, stride: int, count: int,
               write: bool) -> None:
        """The hot lane of :meth:`access_range`: an aligned dense sweep
        (``nbytes <= stride``, item starts multiples of ``stride``,
        ``stride`` divides the granule, at most one TLB).

        Granule boundaries then coincide with line and page boundaries,
        so only the first item of each granule can change any cache
        state; it probes the L1 line and TLB page *only when they
        differ from the previous granule's* (otherwise they are MRU —
        a pure hit).  Everything is inlined: this loop replaces one
        Python-level event cascade per item with one per cache line.
        """
        chain = self._level_chain
        l1_sim, l1_line, l1_seq, l1_rand = chain[0]
        outer = chain[1:]
        l1_sets = l1_sim._sets
        l1_nsets = l1_sim._num_sets
        l1_ways = l1_sim._ways
        l1_recent = l1_sim._recent_miss_lines
        l1_pool = isinstance(l1_sim, BufferPoolSim)
        window = STREAM_WINDOW
        tlbs = self.tlbs
        if tlbs:
            tlb = tlbs[0]
            page = tlb._line_size
            t_sets = tlb._sets
            t_nsets = tlb._num_sets
            t_ways = tlb._ways
            t_recent = tlb._recent_miss_lines
            t_rand = tlb.level.rand_miss_latency_ns
            lines_per_page = page // l1_line
            to_page = 0  # groups until the next real TLB probe (0 = now)
        else:
            tlb = None
        per_line = l1_line // stride
        line = addr // l1_line - 1  # pre-decremented; the loop advances it
        take = per_line - (addr % l1_line) // stride  # items on first line
        # Hit counters are accumulated optimistically (`take` per group)
        # and decremented on the rare real-probe misses, then flushed
        # once at the end — counters are only observed between calls.
        l1_hits = 0
        t_hits = 0
        i = 0
        while i < count:
            if take > count - i:
                take = count - i
            line += 1
            l1_hits += take
            elapsed = 0.0
            if tlb is not None:
                t_hits += take
                if to_page == 0:
                    p = line // lines_per_page
                    to_page = lines_per_page - line % lines_per_page
                    s = t_sets[p % t_nsets]
                    if p in s:
                        del s[p]
                        s[p] = None
                    else:
                        t_hits -= 1
                        if len(s) >= t_ways:
                            del s[next(iter(s))]
                        s[p] = None
                        if p - 1 in t_recent:
                            del t_recent[p - 1]
                            t_recent[p] = None
                            tlb.seq_misses += 1
                        elif p + 1 in t_recent:
                            del t_recent[p + 1]
                            t_recent[p] = None
                            tlb.seq_misses += 1
                        else:
                            if len(t_recent) >= window:
                                del t_recent[next(iter(t_recent))]
                            t_recent[p] = None
                            tlb.rand_misses += 1
                        elapsed += t_rand
                to_page -= 1
            s = l1_sets[line % l1_nsets]
            if line in s:
                del s[line]
                s[line] = None
                if write and l1_pool:
                    l1_sim._note_write(line)
            else:
                l1_hits -= 1
                if len(s) >= l1_ways:
                    victim = next(iter(s))
                    del s[victim]
                    if l1_pool:
                        l1_sim._note_evict(victim)
                s[line] = None
                if write and l1_pool:
                    l1_sim._note_write(line)
                if line - 1 in l1_recent:
                    del l1_recent[line - 1]
                    l1_recent[line] = None
                    l1_sim.seq_misses += 1
                    elapsed += l1_seq
                elif line + 1 in l1_recent:
                    del l1_recent[line + 1]
                    l1_recent[line] = None
                    l1_sim.seq_misses += 1
                    elapsed += l1_seq
                else:
                    if len(l1_recent) >= window:
                        del l1_recent[next(iter(l1_recent))]
                    l1_recent[line] = None
                    l1_sim.rand_misses += 1
                    elapsed += l1_rand
                prev_line = line
                prev_size = l1_line
                for sim, line_size, seq_lat, rand_lat in outer:
                    prev_line //= line_size // prev_size
                    prev_size = line_size
                    outcome = sim.probe(prev_line, write)
                    if outcome == HIT:
                        break
                    elapsed += rand_lat if outcome == RAND_MISS else seq_lat
            if elapsed:
                self.elapsed_ns += elapsed
            i += take
            take = per_line
        l1_sim.hits += l1_hits
        if tlb is not None:
            tlb.hits += t_hits
        self.accesses += count

    def batch(self):
        """Return a fused accessor ``f(addr, nbytes=8, write=False)``.

        Call for call the closure is exactly :meth:`access` — same
        counters, same ``elapsed_ns``, bit for bit — but the cascade
        set-up (attribute lookups, level tuples, latency constants) is
        hoisted out of the per-access path and the single-line,
        single-page common case is inlined.  The vectorized operator
        kernels grab one accessor per kernel invocation for their
        data-dependent (interleaved, non-strided) accesses; strided
        sweeps use :meth:`access_range` instead.

        The closure binds the *current* level simulators: take a fresh
        one after :meth:`~repro.db.Database.set_hierarchy` (plain
        :meth:`reset` keeps the bound structures valid).
        """
        mem = self
        access_one = self._access_one
        chain = self._level_chain
        l1_sim, l1_line, l1_seq, l1_rand = chain[0]
        outer = chain[1:]
        tlbs = self.tlbs
        if len(tlbs) > 1 or (tlbs and (tlbs[0]._line_size < l1_line
                                       or tlbs[0]._line_size % l1_line)):
            # Exotic geometry (multiple TLBs, or pages smaller than an
            # L1 line): a one-line access may span pages, so fall back
            # to the general engine for every call.
            def slow(addr: int, nbytes: int = 8, write: bool = False) -> None:
                mem.access(addr, nbytes, write)
            return slow

        l1_sets = l1_sim._sets
        l1_nsets = l1_sim._num_sets
        l1_ways = l1_sim._ways
        l1_recent = l1_sim._recent_miss_lines
        l1_pool = isinstance(l1_sim, BufferPoolSim)
        window = STREAM_WINDOW
        if tlbs:
            tlb = tlbs[0]
            page = tlb._line_size
            t_sets = tlb._sets
            t_nsets = tlb._num_sets
            t_ways = tlb._ways
            t_recent = tlb._recent_miss_lines
            t_rand = tlb.level.rand_miss_latency_ns
        else:
            tlb = None

        last_line = -1
        last_count = -1

        def fused(addr: int, nbytes: int = 8, write: bool = False) -> None:
            nonlocal last_line, last_count
            if addr < 0:
                raise ValueError("negative address")
            if nbytes <= 0:
                raise ValueError("nbytes must be positive")
            line = addr // l1_line
            n = mem.accesses
            if addr + nbytes > (line + 1) * l1_line:
                # Line-spanning access: full engine (cascade dedup).
                last_line = -1
                mem.accesses = n + 1
                access_one(addr, nbytes, write)
                return
            if line == last_line and n == last_count:
                # The immediately preceding access (verified via the
                # global access count — any interleaved access through
                # another path bumps it) stayed wholly inside this very
                # line, so line and page are the MRU entries of their
                # sets: a pure hit, no LRU/EDO state change.
                mem.accesses = n + 1
                last_count = n + 1
                l1_sim.hits += 1
                if tlb is not None:
                    tlb.hits += 1
                if write and l1_pool:
                    l1_sim._note_write(line)
                return
            last_line = line
            last_count = n + 1
            mem.accesses = n + 1
            elapsed = 0.0
            if tlb is not None:
                # Inlined CacheSim.probe for the one spanned page; the
                # TLB is always a plain CacheSim, so the write hooks
                # are no-ops and eviction needs no notification.
                p = addr // page
                s = t_sets[p % t_nsets]
                if p in s:
                    del s[p]
                    s[p] = None
                    tlb.hits += 1
                else:
                    if len(s) >= t_ways:
                        del s[next(iter(s))]
                    s[p] = None
                    if p - 1 in t_recent:
                        del t_recent[p - 1]
                        t_recent[p] = None
                        tlb.seq_misses += 1
                    elif p + 1 in t_recent:
                        del t_recent[p + 1]
                        t_recent[p] = None
                        tlb.seq_misses += 1
                    else:
                        if len(t_recent) >= window:
                            del t_recent[next(iter(t_recent))]
                        t_recent[p] = None
                        tlb.rand_misses += 1
                    # Every TLB miss pays the random (walk) latency;
                    # the seq/rand split only classifies the counters.
                    elapsed += t_rand
            # Inlined CacheSim.probe for the one spanned L1 line.
            s = l1_sets[line % l1_nsets]
            if line in s:
                del s[line]
                s[line] = None
                l1_sim.hits += 1
                if write and l1_pool:
                    l1_sim._note_write(line)
            else:
                if len(s) >= l1_ways:
                    victim = next(iter(s))
                    del s[victim]
                    if l1_pool:
                        l1_sim._note_evict(victim)
                s[line] = None
                if write and l1_pool:
                    l1_sim._note_write(line)
                if line - 1 in l1_recent:
                    del l1_recent[line - 1]
                    l1_recent[line] = None
                    l1_sim.seq_misses += 1
                    elapsed += l1_seq
                elif line + 1 in l1_recent:
                    del l1_recent[line + 1]
                    l1_recent[line] = None
                    l1_sim.seq_misses += 1
                    elapsed += l1_seq
                else:
                    if len(l1_recent) >= window:
                        del l1_recent[next(iter(l1_recent))]
                    l1_recent[line] = None
                    l1_sim.rand_misses += 1
                    elapsed += l1_rand
                # Cascade the missed line outwards, translating to each
                # level's granularity (single line: no dedup needed).
                prev_line = line
                prev_size = l1_line
                for sim, line_size, seq_lat, rand_lat in outer:
                    prev_line //= line_size // prev_size
                    prev_size = line_size
                    outcome = sim.probe(prev_line, write)
                    if outcome == HIT:
                        break
                    elapsed += rand_lat if outcome == RAND_MISS else seq_lat
            if elapsed:
                mem.elapsed_ns += elapsed

        return fused

    # ------------------------------------------------------------------
    @property
    def pool(self) -> BufferPoolSim | None:
        """The buffer-pool level's simulator (``None`` on pure-memory
        hierarchies) — its counters are the measured disk I/O."""
        last = self.caches[-1]
        return last if isinstance(last, BufferPoolSim) else None

    def replay(self, trace: Iterable[tuple]) -> CounterSnapshot:
        """Replay a recorded access trace and return the counter delta.

        ``trace`` yields ``(addr, nbytes)`` or ``(addr, nbytes, write)``
        tuples, or range-coalesced ``("range", addr, nbytes, stride,
        count, write)`` entries — the formats
        :class:`repro.service.TraceRecorder` produces.  Replaying a
        plan's trace against a :func:`~repro.hardware.disk_extended`
        hierarchy is how the out-of-core tests measure real pool misses
        for accesses that were recorded once, profile-independently.
        """
        before = self.snapshot()
        access = self.access
        access_range = self.access_range
        for entry in trace:
            if entry[0] == "range":
                access_range(*entry[1:])
            else:
                access(*entry)
        return self.snapshot() - before

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Cold caches and zeroed counters."""
        for sim in self.caches + self.tlbs:
            sim.reset()
        self.elapsed_ns = 0.0
        self.accesses = 0

    def snapshot(self) -> CounterSnapshot:
        """Freeze all counters (subtract two snapshots to measure a span)."""
        return CounterSnapshot(
            levels=tuple(
                LevelCounters(sim.name, sim.hits, sim.seq_misses, sim.rand_misses)
                for sim in self.caches + self.tlbs
            ),
            elapsed_ns=self.elapsed_ns,
            accesses=self.accesses,
        )

    def cache(self, name: str) -> CacheSim:
        """Look up a level simulator by name."""
        for sim in self.caches + self.tlbs:
            if sim.name == name:
                return sim
        raise KeyError(f"no simulated level named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemorySystem({self.hierarchy.name}, {self.accesses} accesses)"
