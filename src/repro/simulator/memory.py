"""Multi-level memory-system simulation.

:class:`MemorySystem` cascades :class:`~repro.simulator.cache.CacheSim`
instances for every data-cache level of a hierarchy and probes the TLB
levels in parallel, exactly mirroring the paper's unified hardware model:

* an access spans one or more L1 lines; every spanned L1 line is probed;
* a line that misses on level ``i`` is forwarded to level ``i+1`` (probing
  the containing level-``i+1`` line there), and so on — a miss on the last
  level is an access to main memory;
* every page spanned by the access is probed in each TLB;
* each miss on level ``i`` adds that level's sequential or random miss
  latency to the elapsed-time account (Eq. 3.1 evaluated exactly, event
  by event).

The simulator is the reproduction's stand-in for hardware performance
counters (see DESIGN.md).
"""

from __future__ import annotations

from typing import Iterable

from ..hardware.hierarchy import MemoryHierarchy
from .bufferpool import BufferPoolSim
from .cache import HIT, RAND_MISS, CacheSim
from .counters import CounterSnapshot, LevelCounters

__all__ = ["MemorySystem"]


class MemorySystem:
    """Trace-driven simulation of a full memory hierarchy.

    Parameters
    ----------
    hierarchy:
        The machine to simulate.  Every level of
        ``hierarchy.all_levels`` gets its own :class:`CacheSim`.
    """

    __slots__ = ("hierarchy", "caches", "tlbs", "elapsed_ns", "accesses",
                 "_l1_line", "_level_chain")

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        self.caches = tuple(
            BufferPoolSim(lvl) if lvl.is_pool else CacheSim(lvl)
            for lvl in hierarchy.levels
        )
        self.tlbs = tuple(CacheSim(lvl) for lvl in hierarchy.tlbs)
        self.elapsed_ns = 0.0
        self.accesses = 0
        self._l1_line = hierarchy.levels[0].line_size
        # (cache, line_size, seq_latency, rand_latency) per data level,
        # pre-extracted for the hot loop.
        self._level_chain = tuple(
            (sim, lvl.line_size, lvl.seq_miss_latency_ns, lvl.rand_miss_latency_ns)
            for sim, lvl in zip(self.caches, hierarchy.levels)
        )

    # ------------------------------------------------------------------
    def access(self, addr: int, nbytes: int = 1, write: bool = False) -> None:
        """Simulate one memory access to ``[addr, addr + nbytes)``.

        Reads and writes are costed identically (the paper does not
        distinguish read and write bandwidth, Section 2.2); ``write``
        additionally marks the touched pages of a buffer-pool level
        dirty so write-backs are counted
        (:class:`~repro.simulator.BufferPoolSim`).
        """
        if addr < 0:
            raise ValueError("negative address")
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self.accesses += 1
        elapsed = 0.0

        # TLB probes: one per page spanned, per TLB level.
        for tlb in self.tlbs:
            page_size = tlb._line_size
            first = addr // page_size
            last = (addr + nbytes - 1) // page_size
            for page in range(first, last + 1):
                if tlb.probe(page) != HIT:
                    elapsed += tlb.level.rand_miss_latency_ns

        # Data caches: probe every spanned L1 line, cascade misses outwards.
        chain = self._level_chain
        l1 = self._l1_line
        first = addr // l1
        last = (addr + nbytes - 1) // l1
        pending = range(first, last + 1)  # line addrs at L1 granularity
        byte_addrs = None
        for depth, (sim, line_size, seq_lat, rand_lat) in enumerate(chain):
            if depth == 0:
                lines = pending
            else:
                # Translate missed lines of the previous level into this
                # level's (deduplicated, order-preserving) line addresses.
                prev_line_size = chain[depth - 1][1]
                ratio = line_size // prev_line_size
                lines = []
                seen_last = -1
                for ln in pending:
                    cur = ln // ratio
                    if cur != seen_last:
                        lines.append(cur)
                        seen_last = cur
            missed = []
            for ln in lines:
                outcome = sim.probe(ln, write)
                if outcome != HIT:
                    missed.append(ln)
                    if outcome == RAND_MISS:
                        elapsed += rand_lat
                    else:
                        elapsed += seq_lat
            if not missed:
                break
            pending = missed

        self.elapsed_ns += elapsed

    def read(self, addr: int, nbytes: int = 1) -> None:
        """Convenience alias for a read access."""
        self.access(addr, nbytes, write=False)

    def write(self, addr: int, nbytes: int = 1) -> None:
        """Convenience alias for a write access."""
        self.access(addr, nbytes, write=True)

    # ------------------------------------------------------------------
    @property
    def pool(self) -> BufferPoolSim | None:
        """The buffer-pool level's simulator (``None`` on pure-memory
        hierarchies) — its counters are the measured disk I/O."""
        last = self.caches[-1]
        return last if isinstance(last, BufferPoolSim) else None

    def replay(self, trace: Iterable[tuple]) -> CounterSnapshot:
        """Replay a recorded access trace and return the counter delta.

        ``trace`` yields ``(addr, nbytes)`` or ``(addr, nbytes, write)``
        tuples — the format :class:`repro.service.TraceRecorder`
        produces.  Replaying a plan's trace against a
        :func:`~repro.hardware.disk_extended` hierarchy is how the
        out-of-core tests measure real pool misses for accesses that
        were recorded once, profile-independently.
        """
        before = self.snapshot()
        access = self.access
        for entry in trace:
            access(*entry)
        return self.snapshot() - before

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Cold caches and zeroed counters."""
        for sim in self.caches + self.tlbs:
            sim.reset()
        self.elapsed_ns = 0.0
        self.accesses = 0

    def snapshot(self) -> CounterSnapshot:
        """Freeze all counters (subtract two snapshots to measure a span)."""
        return CounterSnapshot(
            levels=tuple(
                LevelCounters(sim.name, sim.hits, sim.seq_misses, sim.rand_misses)
                for sim in self.caches + self.tlbs
            ),
            elapsed_ns=self.elapsed_ns,
            accesses=self.accesses,
        )

    def cache(self, name: str) -> CacheSim:
        """Look up a level simulator by name."""
        for sim in self.caches + self.tlbs:
            if sim.name == name:
                return sim
        raise KeyError(f"no simulated level named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemorySystem({self.hierarchy.name}, {self.accesses} accesses)"
