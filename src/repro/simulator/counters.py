"""Counter snapshots for simulator measurements.

A :class:`CounterSnapshot` freezes the per-level miss counters and the
accumulated memory-access time of a :class:`~repro.simulator.MemorySystem`
so experiments can measure deltas around an operator execution — the
software analogue of reading hardware event counters before and after a
run, as the paper does on the R10000.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LevelCounters", "CounterSnapshot"]


@dataclass(frozen=True)
class LevelCounters:
    """Hit/miss counters of one cache level."""

    name: str
    hits: int
    seq_misses: int
    rand_misses: int

    @property
    def misses(self) -> int:
        return self.seq_misses + self.rand_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def __sub__(self, other: "LevelCounters") -> "LevelCounters":
        if self.name != other.name:
            raise ValueError(f"level mismatch: {self.name} vs {other.name}")
        return LevelCounters(
            name=self.name,
            hits=self.hits - other.hits,
            seq_misses=self.seq_misses - other.seq_misses,
            rand_misses=self.rand_misses - other.rand_misses,
        )


@dataclass(frozen=True)
class CounterSnapshot:
    """All level counters plus elapsed simulated time at one instant."""

    levels: tuple[LevelCounters, ...]
    elapsed_ns: float
    accesses: int

    def __sub__(self, other: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(
            levels=tuple(a - b for a, b in zip(self.levels, other.levels)),
            elapsed_ns=self.elapsed_ns - other.elapsed_ns,
            accesses=self.accesses - other.accesses,
        )

    def level(self, name: str) -> LevelCounters:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise KeyError(f"no level named {name!r}")

    def misses(self, name: str) -> int:
        """Total misses of the named level."""
        return self.level(name).misses

    def as_dict(self) -> dict[str, dict[str, int]]:
        """Counters as plain nested dicts (reporting convenience)."""
        return {
            lvl.name: {
                "hits": lvl.hits,
                "seq_misses": lvl.seq_misses,
                "rand_misses": lvl.rand_misses,
            }
            for lvl in self.levels
        }
