"""Trace-driven cache-hierarchy simulator (measurement substrate).

Replaces the hardware performance counters of the paper's SGI Origin2000
testbed: database operators run their real algorithms while reporting
every data access to a :class:`MemorySystem`, whose per-level miss
counters and latency account provide the "measured" series of every
experiment.
"""

from .bufferpool import BufferPoolSim
from .cache import CacheSim
from .counters import CounterSnapshot, LevelCounters
from .memory import MemorySystem

__all__ = ["BufferPoolSim", "CacheSim", "CounterSnapshot", "LevelCounters",
           "MemorySystem"]
