"""Online self-calibration: the *response* half of drift monitoring.

:class:`~repro.obs.DriftMonitor` (the detection half) says *when* the
model and the machine disagree; the :class:`Recalibrator` here says
*what to do about it*: search a parametric neighborhood of the current
:class:`~repro.hardware.MemoryHierarchy` for the latency assignment
that best explains recent measurements, publish the winner through
:meth:`Session.set_hierarchy <repro.session.Session.set_hierarchy>`,
and leave a sidecar manifest recording exactly what changed and why —
the paper's own Calibrator discipline (Section 2.3: parameters come
from measurement, not faith) run continuously instead of once.

The search is cheap because of a structural identity.  Both sides of
the relative error are **linear in the per-level miss latencies**: the
model's whole-plan prediction is Eq. 3.1's sum over
``Explanation.levels``

    predicted = Σ_levels  seq·l_seq + rand·l_rand

and the simulator's elapsed time decomposes identically over its
measured per-level miss counters — with one asymmetry mirrored here:
TLB misses always pay the *random* latency (address translation has no
sequential fast path in the simulator).  Capacities, line sizes and
associativities are held fixed, so **no miss count moves when
latencies do**: a candidate profile is scored by pure arithmetic
reweighting of counts sampled once (:class:`CalibrationSample`), no
simulator or model re-run.  Re-measuring on the published profile
reproduces the scorer's error exactly, as long as the plan choice is
unchanged.

The optimizer is a deterministic coordinate descent over per-level
multipliers from an interpretable grid (:class:`LatencyGrid`): data
levels get independent sequential/random factors, TLB levels one tied
factor (the simulator charges them a single latency).  Candidates that
violate a level's own constraints (random latency must stay >= the
sequential one) are skipped.  Descent starts from the incumbent
(all-ones) and only ever moves on strict improvement, so a published
profile can never score worse than the profile it replaces.
"""

from __future__ import annotations

import json
import pathlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from ..hardware.hierarchy import MemoryHierarchy
from ..hardware.serialization import (
    hierarchy_to_dict,
    profile_fingerprint,
    save_hierarchy,
)
from ..obs.drift import DEFAULT_BAND, DriftEvent, DriftMonitor

if TYPE_CHECKING:
    from ..query.observe import MeasuredResult
    from ..session.session import Session

__all__ = [
    "DEFAULT_MULTIPLIERS",
    "MANIFEST_KIND",
    "LatencyGrid",
    "CalibrationSample",
    "SearchOutcome",
    "Recalibration",
    "Recalibrator",
    "predicted_time_ns",
    "replayed_time_ns",
    "sample_error",
    "mean_error",
    "search_latencies",
    "build_manifest",
    "manifest_dumps",
    "write_manifest",
]

#: The default multiplier grid: symmetric around 1.0 (the incumbent,
#: which MUST be in the grid — it anchors the no-worse-than-incumbent
#: guarantee), spanning 4x in both directions in interpretable steps.
DEFAULT_MULTIPLIERS = (0.25, 0.4, 0.5, 0.7, 1.0, 1.4, 2.0, 3.0, 4.0)

#: ``kind`` tag of the sidecar manifest payload.
MANIFEST_KIND = "recalibration_manifest"

#: Strict-improvement epsilon: descent moves off a multiplier only for
#: a genuinely lower score, so ties keep the earlier (closer-to-1.0 in
#: the default grid ordering) value and the result is deterministic.
_EPS = 1e-12


@dataclass(frozen=True)
class LatencyGrid:
    """The interpretable search grid of the coordinate descent."""

    multipliers: tuple[float, ...] = DEFAULT_MULTIPLIERS
    #: Full sweeps over every (level, axis) dimension; descent stops
    #: early on the first pass with no improvement.
    max_passes: int = 4

    def __post_init__(self) -> None:
        if not self.multipliers:
            raise ValueError("grid needs at least one multiplier")
        if any(m <= 0 for m in self.multipliers):
            raise ValueError("grid multipliers must be positive")
        if 1.0 not in self.multipliers:
            raise ValueError(
                "grid must contain 1.0 — the incumbent profile anchors "
                "the no-worse-than-incumbent guarantee")
        if self.max_passes < 1:
            raise ValueError("max_passes must be positive")

    def to_json(self) -> dict:
        return {"multipliers": list(self.multipliers),
                "max_passes": self.max_passes}


@dataclass(frozen=True)
class CalibrationSample:
    """One measured query frozen as latency-invariant miss counts.

    ``predicted`` holds the model's whole-plan per-level
    ``(name, seq, rand)`` miss counts (from
    :attr:`Explanation.levels <repro.query.Explanation.levels>`),
    ``measured`` the simulator's (from the run's counter delta).  With
    capacities fixed, both stay valid under any latency assignment —
    the sample is replayable by arithmetic alone.
    """

    label: str
    predicted: tuple[tuple[str, float, float], ...]
    measured: tuple[tuple[str, float, float], ...]

    @classmethod
    def from_measured(cls, measured: "MeasuredResult",
                      label: str | None = None) -> "CalibrationSample":
        return cls(
            label=label or measured.signature or "query",
            predicted=tuple((lp.name, float(lp.seq), float(lp.rand))
                            for lp in measured.explanation.levels),
            measured=tuple((lc.name, float(lc.seq_misses),
                            float(lc.rand_misses))
                           for lc in measured.counters.levels),
        )

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "predicted": [list(entry) for entry in self.predicted],
            "measured": [list(entry) for entry in self.measured],
        }


# ----------------------------------------------------------------------
# linear-reweighting scorer
# ----------------------------------------------------------------------

def _latencies(hierarchy: MemoryHierarchy
               ) -> dict[str, tuple[float, float, bool]]:
    return {lvl.name: (lvl.seq_miss_latency_ns, lvl.rand_miss_latency_ns,
                       lvl.is_tlb)
            for lvl in hierarchy.all_levels}


def predicted_time_ns(hierarchy: MemoryHierarchy,
                      sample: CalibrationSample) -> float:
    """The model's Eq. 3.1 prediction re-priced under ``hierarchy``'s
    latencies (levels the hierarchy lacks contribute nothing)."""
    latencies = _latencies(hierarchy)
    total = 0.0
    for name, seq, rand in sample.predicted:
        entry = latencies.get(name)
        if entry is not None:
            total += seq * entry[0] + rand * entry[1]
    return total


def replayed_time_ns(hierarchy: MemoryHierarchy,
                     sample: CalibrationSample) -> float:
    """The simulator's elapsed time re-priced under ``hierarchy``'s
    latencies — data misses pay their sequential/random latency per
    outcome, TLB misses always pay the random latency (the simulator's
    accounting, reproduced exactly)."""
    latencies = _latencies(hierarchy)
    total = 0.0
    for name, seq, rand in sample.measured:
        entry = latencies.get(name)
        if entry is None:
            continue
        seq_lat, rand_lat, is_tlb = entry
        if is_tlb:
            total += (seq + rand) * rand_lat
        else:
            total += seq * seq_lat + rand * rand_lat
    return total


def sample_error(hierarchy: MemoryHierarchy,
                 sample: CalibrationSample) -> float:
    """One sample's relative error under a candidate profile."""
    measured = replayed_time_ns(hierarchy, sample)
    if measured <= 0:
        return 0.0
    return abs(predicted_time_ns(hierarchy, sample) - measured) / measured


def mean_error(hierarchy: MemoryHierarchy,
               samples: Iterable[CalibrationSample]) -> float:
    """MAPE of predicted vs. (re-priced) measured over the samples."""
    samples = tuple(samples)
    if not samples:
        raise ValueError("no samples to score")
    return sum(sample_error(hierarchy, s) for s in samples) / len(samples)


# ----------------------------------------------------------------------
# coordinate-descent search
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SearchOutcome:
    """The result of one :func:`search_latencies` run."""

    hierarchy: MemoryHierarchy
    #: ``(level name, seq multiplier, rand multiplier)`` per level, in
    #: hierarchy order (data levels first, then TLBs).
    multipliers: tuple[tuple[str, float, float], ...]
    error_before: float
    error_after: float
    #: Candidate profiles scored (invalid ones skipped, not counted).
    evaluations: int
    #: Full descent passes run before convergence or the cap.
    passes: int

    @property
    def improved(self) -> bool:
        """Whether descent found a strictly better profile — the only
        case a :class:`Recalibrator` publishes."""
        return self.error_after < self.error_before - _EPS

    def multipliers_json(self) -> dict[str, list[float]]:
        return {name: [seq, rand] for name, seq, rand in self.multipliers}


def search_latencies(hierarchy: MemoryHierarchy,
                     samples: Iterable[CalibrationSample],
                     grid: LatencyGrid | None = None,
                     name_suffix: str = " (autotuned)") -> SearchOutcome:
    """Deterministic coordinate descent over per-level latency
    multipliers, scored by :func:`mean_error` over ``samples``.

    Dimensions are swept in hierarchy order — sequential then random
    axis per data level, one tied axis per TLB level (the simulator
    charges TLB misses a single latency, so split factors would be
    unobservable) — and the grid in its given order, moving only on
    strict improvement.  The incumbent (all multipliers 1.0) is the
    starting point, so the outcome never scores worse than it.
    """
    grid = grid if grid is not None else LatencyGrid()
    samples = tuple(samples)
    error_before = mean_error(hierarchy, samples)
    best = {lvl.name: (1.0, 1.0) for lvl in hierarchy.all_levels}
    best_error = error_before
    evaluations = 0

    dims: list[tuple[str, int]] = []
    for lvl in hierarchy.levels:
        dims.append((lvl.name, 0))  # sequential axis
        dims.append((lvl.name, 1))  # random axis
    for tlb in hierarchy.tlbs:
        dims.append((tlb.name, 2))  # tied axis

    passes = 0
    for _ in range(grid.max_passes):
        passes += 1
        moved = False
        for name, axis in dims:
            for mult in grid.multipliers:
                seq_mult, rand_mult = best[name]
                trial = ((mult, rand_mult) if axis == 0 else
                         (seq_mult, mult) if axis == 1 else
                         (mult, mult))
                if trial == best[name]:
                    continue
                candidate = dict(best)
                candidate[name] = trial
                try:
                    priced = hierarchy.scaled_latencies(
                        candidate, name_suffix=name_suffix)
                except ValueError:
                    continue  # e.g. random latency dropping below seq
                evaluations += 1
                error = mean_error(priced, samples)
                if error < best_error - _EPS:
                    best, best_error = candidate, error
                    moved = True
        if not moved:
            break

    if all(m == (1.0, 1.0) for m in best.values()):
        final = hierarchy  # untouched incumbent, original name kept
    else:
        final = hierarchy.scaled_latencies(best, name_suffix=name_suffix)
    ordered = tuple((lvl.name,) + best[lvl.name]
                    for lvl in hierarchy.all_levels)
    return SearchOutcome(hierarchy=final, multipliers=ordered,
                         error_before=error_before,
                         error_after=best_error,
                         evaluations=evaluations, passes=passes)


# ----------------------------------------------------------------------
# sidecar manifest (Tracekit discipline: never overwrite silently —
# every published profile carries a record of what changed and why)
# ----------------------------------------------------------------------

def build_manifest(before: MemoryHierarchy, after: MemoryHierarchy,
                   grid: LatencyGrid, outcome: SearchOutcome,
                   events: Iterable[DriftEvent] = (),
                   samples: Iterable[CalibrationSample] = (),
                   band: float = DEFAULT_BAND) -> dict:
    """The sidecar payload for one recalibration: parameters before and
    after, the search grid and chosen multipliers, error before/after
    (whole-run MAPE plus per-sample), and the drift events that
    triggered the run.  Validated by
    :func:`repro.obs.validate_manifest`."""
    samples = tuple(samples)
    return {
        "kind": MANIFEST_KIND,
        "schema_version": 1,
        "published": outcome.improved,
        "profile": {
            "before": hierarchy_to_dict(before),
            "after": hierarchy_to_dict(after),
        },
        "fingerprint": {
            "before": profile_fingerprint(before),
            "after": profile_fingerprint(after),
        },
        "search": {
            "grid": list(grid.multipliers),
            "max_passes": grid.max_passes,
            "passes": outcome.passes,
            "evaluations": outcome.evaluations,
            "multipliers": outcome.multipliers_json(),
        },
        "error": {
            "band": band,
            "before": outcome.error_before,
            "after": outcome.error_after,
            "samples": [
                {"label": s.label,
                 "before": sample_error(before, s),
                 "after": sample_error(after, s)}
                for s in samples
            ],
        },
        "events": [event.to_json() for event in events],
    }


def manifest_dumps(manifest: dict) -> str:
    """The canonical byte form of a manifest (sorted keys, stable float
    reprs) — ``loads`` then ``manifest_dumps`` again is byte-identical."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def write_manifest(manifest: dict, profile_path: str | pathlib.Path
                   ) -> pathlib.Path:
    """Write the sidecar next to a published profile file
    (``<profile>.manifest.json``); returns the sidecar path."""
    path = pathlib.Path(str(profile_path) + ".manifest.json")
    path.write_text(manifest_dumps(manifest))
    return path


# ----------------------------------------------------------------------
# the closed loop
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Recalibration:
    """One recalibration run's full record."""

    published: bool
    outcome: SearchOutcome
    manifest: dict
    #: The drift events this run consumed (its trigger).
    events: tuple[DriftEvent, ...]
    #: Cached plans explicitly retired on publication.
    retired_plans: int
    profile_path: pathlib.Path | None = None
    manifest_path: pathlib.Path | None = None

    @property
    def fingerprint_before(self) -> str:
        return self.manifest["fingerprint"]["before"]

    @property
    def fingerprint_after(self) -> str:
        return self.manifest["fingerprint"]["after"]


class Recalibrator:
    """The drift→response loop over one
    :class:`~repro.session.Session`.

    Feed every measured execution to :meth:`observe` (or register it
    via :meth:`Session.attach_measurement_observer
    <repro.session.Session.attach_measurement_observer>`): the result's
    latency-invariant per-level counts join a bounded replay sample
    (keyed by plan signature, newest wins) and its per-operator errors
    stream into this loop's own :class:`~repro.obs.DriftMonitor`.  Once
    an excursion event is pending and the sample is deep enough,
    :meth:`recalibrate` searches the latency neighborhood of the
    session's current profile and, on strict improvement, publishes the
    winner via :meth:`Session.set_hierarchy
    <repro.session.Session.set_hierarchy>` — which changes the profile
    fingerprint, so every cached plan stops matching; the loop
    additionally retires them eagerly (``retire_plans=True``) so the
    swap is observable through
    :meth:`PlanCache.attach_observer
    <repro.session.PlanCache.attach_observer>`.  With ``manifest_dir``
    set, each published profile is saved as JSON with its sidecar
    ``<profile>.json.manifest.json``.

    A server embedding the loop (the tracer already owns the drift
    monitor there) records samples and externally detected events via
    :meth:`ingest` instead, avoiding double detection.
    """

    def __init__(self, session: "Session", *,
                 grid: LatencyGrid | None = None,
                 band: float = DEFAULT_BAND,
                 monitor: DriftMonitor | None = None,
                 min_samples: int = 1, max_samples: int = 32,
                 manifest_dir: str | pathlib.Path | None = None,
                 retire_plans: bool = True) -> None:
        if min_samples < 1:
            raise ValueError("min_samples must be positive")
        if max_samples < min_samples:
            raise ValueError("max_samples must be >= min_samples")
        self.session = session
        self.grid = grid if grid is not None else LatencyGrid()
        self.band = band
        self.monitor = monitor if monitor is not None \
            else DriftMonitor(band=band)
        self.min_samples = min_samples
        self.max_samples = max_samples
        self.manifest_dir = (pathlib.Path(manifest_dir)
                             if manifest_dir is not None else None)
        self.retire_plans = retire_plans
        self._samples: "OrderedDict[str, CalibrationSample]" = OrderedDict()
        self._pending: list[DriftEvent] = []
        self.history: list[Recalibration] = []

    # ------------------------------------------------------------------
    @property
    def samples(self) -> tuple[CalibrationSample, ...]:
        """The current replay sample, oldest first."""
        return tuple(self._samples.values())

    @property
    def pending_events(self) -> tuple[DriftEvent, ...]:
        """Drift events awaiting a response."""
        return tuple(self._pending)

    def _record(self, measured: "MeasuredResult",
                label: str | None) -> CalibrationSample:
        sample = CalibrationSample.from_measured(measured, label=label)
        self._samples.pop(sample.label, None)
        self._samples[sample.label] = sample
        while len(self._samples) > self.max_samples:
            self._samples.popitem(last=False)
        return sample

    def observe(self, measured: "MeasuredResult",
                label: str | None = None) -> list[DriftEvent]:
        """Fold one measured execution into the sample and the loop's
        drift monitor; returns (and queues) the events it caused."""
        self._record(measured, label)
        at_ns = getattr(self.session.db.mem, "elapsed_ns", 0.0)
        events = self.monitor.observe_result(
            measured, fingerprint=self.session.fingerprint, at_ns=at_ns)
        self._pending.extend(events)
        return events

    def ingest(self, measured: "MeasuredResult",
               events: Iterable[DriftEvent] = (),
               label: str | None = None) -> None:
        """Record a sample with *externally* detected drift events —
        the embedding path for hosts whose tracer already runs the
        drift monitor (:class:`~repro.server.QueryServer`)."""
        self._record(measured, label)
        self._pending.extend(events)

    def due(self) -> bool:
        """Whether a response is warranted: at least one pending drift
        event and a deep-enough replay sample."""
        return bool(self._pending) and len(self._samples) >= self.min_samples

    # ------------------------------------------------------------------
    def recalibrate(self, force: bool = False) -> Recalibration | None:
        """Run the search and publish on improvement.

        Returns ``None`` when nothing is due (no pending drift events,
        or the sample is too shallow) unless ``force`` is set.  The
        returned :class:`Recalibration` (also appended to
        :attr:`history`) carries the search outcome, the consumed
        events, and the schema-valid sidecar manifest — written to disk
        when ``manifest_dir`` is configured and the profile published.
        """
        if not force and not self.due():
            return None
        if not self._samples:
            raise ValueError(
                "no samples recorded — observe at least one measured "
                "execution before recalibrating")
        before = self.session.hierarchy
        samples = tuple(self._samples.values())
        outcome = search_latencies(before, samples, self.grid)
        events, self._pending = tuple(self._pending), []
        after = outcome.hierarchy if outcome.improved else before
        manifest = build_manifest(before, after, self.grid, outcome,
                                  events=events, samples=samples,
                                  band=self.band)
        retired = 0
        profile_path = manifest_path = None
        if outcome.improved:
            self.session.set_hierarchy(after)
            if self.retire_plans:
                retired = self.session.plan_cache.clear()
            if self.manifest_dir is not None:
                self.manifest_dir.mkdir(parents=True, exist_ok=True)
                profile_path = self.manifest_dir / (
                    f"profile-{profile_fingerprint(after)}.json")
                save_hierarchy(after, profile_path)
                manifest_path = write_manifest(manifest, profile_path)
        recalibration = Recalibration(
            published=outcome.improved, outcome=outcome,
            manifest=manifest, events=events, retired_plans=retired,
            profile_path=profile_path, manifest_path=manifest_path)
        self.history.append(recalibration)
        return recalibration

    def __repr__(self) -> str:
        return (f"Recalibrator(samples={len(self._samples)}, "
                f"pending_events={len(self._pending)}, "
                f"published={sum(1 for r in self.history if r.published)})")
