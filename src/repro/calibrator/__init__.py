"""Hardware-parameter calibration: the paper's Calibrator tool run
against the simulated memory (one-shot micro-benchmarks in
:mod:`.calibrator`) plus the online drift→response loop
(:mod:`.autotune`) that re-fits latencies from live measurements."""

from .autotune import (
    DEFAULT_MULTIPLIERS,
    MANIFEST_KIND,
    CalibrationSample,
    LatencyGrid,
    Recalibration,
    Recalibrator,
    SearchOutcome,
    build_manifest,
    manifest_dumps,
    mean_error,
    predicted_time_ns,
    replayed_time_ns,
    sample_error,
    search_latencies,
    write_manifest,
)
from .calibrator import CalibratedLevel, CalibrationResult, calibrate

__all__ = [
    "CalibratedLevel",
    "CalibrationResult",
    "calibrate",
    "DEFAULT_MULTIPLIERS",
    "MANIFEST_KIND",
    "LatencyGrid",
    "CalibrationSample",
    "SearchOutcome",
    "Recalibration",
    "Recalibrator",
    "predicted_time_ns",
    "replayed_time_ns",
    "sample_error",
    "mean_error",
    "search_latencies",
    "build_manifest",
    "manifest_dumps",
    "write_manifest",
]
