"""Hardware-parameter calibration micro-benchmarks (the paper's
Calibrator tool, run against the simulated memory)."""

from .calibrator import CalibratedLevel, CalibrationResult, calibrate

__all__ = ["CalibratedLevel", "CalibrationResult", "calibrate"]
