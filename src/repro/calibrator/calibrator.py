"""The Calibrator: measuring hardware parameters with micro-benchmarks.

The paper instantiates its model with parameters "measured by our
calibration tool" (Section 2.3; the MonetDB Calibrator).  This module
reproduces that methodology against the simulated memory system: it
issues access patterns and observes *only elapsed time* (never the
simulator's internal counters), exactly as the real tool can only read
the wall clock.

Experiments, smallest level outwards:

1. **Capacity sweep** — a uni-directional repeated sweep over a buffer of
   size ``S`` is free on its second pass while ``S`` fits a level; the
   second-pass time per access steps up each time ``S`` crosses a
   capacity (data caches *and* the TLB's virtual capacity show up).
2. **Line-size sweep** — sweeping a buffer sized to miss (mostly) one
   level with stride ``s`` costs ``min(1, s/Z)`` misses per access; the
   time per access stops growing at ``s = Z``.
3. **Latencies** — sequential: a stride-``Z`` sweep; random: the same
   lines in shuffled order.  Contributions of already-calibrated smaller
   levels are subtracted, leaving the level's own miss latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..hardware.hierarchy import MemoryHierarchy
from ..simulator.memory import MemorySystem

__all__ = ["CalibratedLevel", "CalibrationResult", "calibrate"]


@dataclass(frozen=True)
class CalibratedLevel:
    """Parameters recovered for one cache level (cf. paper Table 3)."""

    capacity: int
    line_size: int
    seq_miss_latency_ns: float
    rand_miss_latency_ns: float


@dataclass(frozen=True)
class CalibrationResult:
    """All recovered levels, ordered by capacity."""

    levels: tuple[CalibratedLevel, ...]

    def __len__(self) -> int:
        return len(self.levels)


# ----------------------------------------------------------------------

def _fresh(hierarchy: MemoryHierarchy) -> MemorySystem:
    return MemorySystem(hierarchy)


def _sweep_time(mem: MemorySystem, size: int, stride: int,
                repeats: int = 1, offset: int = 1 << 20) -> float:
    """Time per access of ``repeats`` uni-directional sweeps."""
    before = mem.elapsed_ns
    count = 0
    for _ in range(repeats):
        for addr in range(offset, offset + size, stride):
            mem.access(addr, 1)
            count += 1
    return (mem.elapsed_ns - before) / count


def _second_pass_time(hierarchy: MemoryHierarchy, size: int,
                      stride: int) -> float:
    """Time per access of the *second* sweep over a cold buffer."""
    mem = _fresh(hierarchy)
    offset = 1 << 20
    for addr in range(offset, offset + size, stride):
        mem.access(addr, 1)
    return _sweep_time(mem, size, stride, repeats=1)


def _shuffled_time(hierarchy: MemoryHierarchy, size: int, stride: int,
                   seed: int = 42, passes: int = 8) -> float:
    """Time per access over the buffer's lines in random order.

    One unmeasured warm-up pass, then ``passes`` measured passes, each
    with a fresh shuffle — averaging keeps the LRU steady-state miss
    rate close to its expectation even when the buffer spans only a
    handful of lines (e.g. a dozen pages in a TLB probe)."""
    mem = _fresh(hierarchy)
    offset = 1 << 20
    slots = list(range(offset, offset + size, stride))
    rng = random.Random(seed)
    rng.shuffle(slots)
    for addr in slots:
        mem.access(addr, 1)
    before = mem.elapsed_ns
    count = 0
    for _ in range(passes):
        rng.shuffle(slots)
        for addr in slots:
            mem.access(addr, 1)
            count += 1
    return (mem.elapsed_ns - before) / count


# ----------------------------------------------------------------------

def _detect_capacities(hierarchy: MemoryHierarchy, min_size: int,
                       max_size: int, stride: int,
                       jump_threshold: float) -> list[int]:
    """Capacities = sizes where the warm second-pass time steps up."""
    sizes = []
    size = min_size
    while size <= max_size:
        sizes.append(size)
        size *= 2
    times = [_second_pass_time(hierarchy, s, stride) for s in sizes]
    capacities = []
    for prev_size, prev_t, cur_t in zip(sizes, times, times[1:]):
        if cur_t - prev_t > jump_threshold:
            capacities.append(prev_size)
    return capacities


def _probe_buffer_size(capacity: int, all_capacities: list[int]) -> int:
    """A buffer size that overflows ``capacity`` but stays as far below
    the next level's capacity as possible."""
    larger = [c for c in all_capacities if c > capacity]
    if not larger:
        return capacity * 4
    nxt = min(larger)
    size = capacity * 4
    if size > nxt:
        size = capacity + max((nxt - capacity) // 2, 1)
    return size


def _known_contribution(stride: int, lvl: CalibratedLevel) -> float:
    """Per-access time an already-calibrated smaller level adds to an
    ordered strided sweep: ``min(1, s/Z)`` misses, sequential while the
    stride visits successive lines, random once it skips lines."""
    latency = (lvl.seq_miss_latency_ns if stride <= lvl.line_size
               else lvl.rand_miss_latency_ns)
    return min(1.0, stride / lvl.line_size) * latency


def _permutation_miss_rate(capacity_lines: float, touched_lines: float) -> float:
    """Steady-state miss rate of repeated random permutation passes over
    ``touched_lines`` lines with an LRU cache of ``capacity_lines``: of
    the ``#`` resident lines, each survives to be re-used with
    probability ``#/M``, so ``#^2/M`` hits are saved per pass (the same
    reasoning as the paper's Eq. 4.7)."""
    if touched_lines <= capacity_lines:
        return 0.0
    return 1.0 - (capacity_lines / touched_lines) ** 2


def _random_contribution(size: int, lvl: CalibratedLevel) -> float:
    """Per-access time a smaller level adds to shuffled passes over a
    buffer of ``size`` bytes: random order destroys within-line locality,
    so each access misses level ``lvl`` with its permutation rate."""
    touched = max(1.0, size / lvl.line_size)
    rate = _permutation_miss_rate(lvl.capacity / lvl.line_size, touched)
    return rate * lvl.rand_miss_latency_ns


def _detect_line_size(hierarchy: MemoryHierarchy, size: int,
                      known: list[CalibratedLevel], max_line: int) -> int:
    """Line size by model fit over an ordered strided-sweep curve.

    The warm sweep's per-access time follows
    ``t(s) = (s/Z) * l_seq`` for ``s <= Z`` (every Z-th access misses the
    next line, an EDO-sequential miss) and ``t(s) = l_rand`` for
    ``s > Z`` (every access misses a skipped-ahead line).  A simple
    saturation test cannot distinguish the miss-count saturation at
    ``s = Z`` from the sequential-to-random latency switch just above
    it, so each candidate ``Z`` is scored by least squares against this
    two-piece model and the best fit wins.
    """
    candidates = []
    s = 8
    # Keep at least a handful of accesses per sweep: degenerate sweeps of
    # one or two accesses would hit leftover lines and zero the signal.
    while s <= min(max_line, size // 4):
        candidates.append(s)
        s *= 2
    raw = [_second_pass_time(hierarchy, size, stride) for stride in candidates]
    peak = max(raw) if raw else 0.0

    strides: list[int] = []
    times: list[float] = []
    for stride, t in zip(candidates, raw):
        risky = 0.0
        adjusted = t
        for lvl in known:
            if lvl.capacity < size:
                contribution = _known_contribution(stride, lvl)
                adjusted -= contribution
                # At large strides a smaller level's working set may
                # collapse into its capacity, so it stops missing and the
                # subtraction over-corrects.  (Associativity conflicts
                # usually keep set-associative levels missing anyway.)
                touched = size // max(stride, lvl.line_size)
                if touched <= lvl.capacity // lvl.line_size:
                    risky += contribution
        if risky > 0.3 * peak:
            # The potential over-correction would dominate the signal:
            # discard this stride.
            continue
        strides.append(stride)
        times.append(max(0.0, adjusted))

    best_z = strides[-1]
    best_error = float("inf")
    for idx, z in enumerate(strides):
        seq_lat = times[idx]
        above = [t for s2, t in zip(strides, times) if s2 > z]
        rand_lat = sum(above) / len(above) if above else seq_lat
        error = 0.0
        for s2, t in zip(strides, times):
            if s2 <= z:
                predicted = seq_lat * s2 / z
            else:
                predicted = rand_lat
            error += (t - predicted) ** 2
        if error < best_error - 1e-9:
            best_error = error
            best_z = z
    return best_z


def _detect_latencies(hierarchy: MemoryHierarchy, size: int, line: int,
                      capacity: int,
                      known: list[CalibratedLevel]) -> tuple[float, float]:
    """Sequential and random miss latency of the level under test.

    The warm uni-directional stride-``line`` sweep misses on every line
    at sequential latency.  The shuffled permutation passes miss with
    the steady-state rate ``1 - (#/M)^2`` (see
    :func:`_permutation_miss_rate`), which is known once the capacity
    sweep has run, so the measured time is corrected to a per-miss
    latency.
    """
    seq = _second_pass_time(hierarchy, size, line)
    rand = _shuffled_time(hierarchy, size, line)
    for lvl in known:
        if lvl.capacity < size:
            seq -= _known_contribution(line, lvl)
            rand -= _random_contribution(size, lvl)
    miss_rate = max(
        1e-6, _permutation_miss_rate(capacity / line, size / line)
    )
    return max(0.0, seq), max(0.0, rand / miss_rate)


def calibrate(hierarchy: MemoryHierarchy,
              min_size: int = 512,
              max_size: int | None = None,
              probe_stride: int = 8,
              jump_threshold_ns: float = 0.3,
              max_line: int = 64 * 1024) -> CalibrationResult:
    """Recover capacities, line sizes and latencies of every level.

    Parameters mirror the real Calibrator's command line: the size range
    to sweep, the base stride and the detection thresholds.  Only elapsed
    simulated time is observed.
    """
    if max_size is None:
        max_size = 8 * max(l.capacity for l in hierarchy.all_levels)
    capacities = _detect_capacities(
        hierarchy, min_size, max_size, probe_stride, jump_threshold_ns
    )
    levels: list[CalibratedLevel] = []
    for capacity in sorted(capacities):
        size = _probe_buffer_size(capacity, capacities)
        line = _detect_line_size(hierarchy, size, levels, max_line)
        seq, rand = _detect_latencies(hierarchy, size, line, capacity, levels)
        levels.append(CalibratedLevel(
            capacity=capacity,
            line_size=line,
            seq_miss_latency_ns=round(seq, 2),
            rand_miss_latency_ns=round(rand, 2),
        ))
    return CalibrationResult(levels=tuple(levels))
