"""Observability layer: dual-clock tracing, metrics, drift monitoring.

Three sensors behind one opt-in handle (``QueryServer(tracer=...)`` /
``Session(tracer=...)``):

* :class:`Tracer` — dual-clock spans (simulated + wall) over the query
  lifecycle with Chrome ``trace_event`` export and a JSONL event log.
* :class:`MetricsRegistry` — labeled counters/gauges/histograms with
  Prometheus-style text exposition; :class:`BucketedHistogram` gives
  O(1) observes and bounded memory.
* :class:`DriftMonitor` — EWMA of per-operator predicted-vs-measured
  relative error, emitting :class:`DriftEvent` when a series leaves
  the validation tolerance band.

All simulated-clock output is deterministic in the workload; schemas
for every artifact live in :mod:`repro.obs.schema`.
"""

from .drift import (
    DEFAULT_ALPHA,
    DEFAULT_BAND,
    DEFAULT_MIN_SAMPLES,
    DriftEvent,
    DriftMonitor,
    DriftSeries,
)
from .metrics import (
    DEFAULT_BUCKET_BOUNDS,
    BucketedHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .schema import (
    validate_chrome_trace,
    validate_event,
    validate_events_file,
    validate_manifest,
    validate_manifest_file,
    validate_metrics_json,
    validate_trace_file,
    validate_whatif_report,
    validate_whatif_report_file,
)
from .trace import CLOCKS, SIM_PID, WALL_PID, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "CLOCKS",
    "SIM_PID",
    "WALL_PID",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "BucketedHistogram",
    "DEFAULT_BUCKET_BOUNDS",
    "DriftMonitor",
    "DriftEvent",
    "DriftSeries",
    "DEFAULT_BAND",
    "DEFAULT_ALPHA",
    "DEFAULT_MIN_SAMPLES",
    "validate_chrome_trace",
    "validate_trace_file",
    "validate_metrics_json",
    "validate_event",
    "validate_events_file",
    "validate_manifest",
    "validate_manifest_file",
    "validate_whatif_report",
    "validate_whatif_report_file",
]
