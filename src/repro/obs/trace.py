"""Dual-clock spans and Chrome ``trace_event`` export.

The serving stack runs on two clocks — real threads compile and
execute on the *wall* clock while every scheduling decision and
latency lives on the *simulated* clock — so a span here carries both:
an optional simulated interval and an optional wall interval
(``perf_counter_ns``).  A :class:`Tracer` collects spans from the
query lifecycle (arrival → queue → compile → execute → respond, plus
per-operator children from :class:`~repro.query.MeasuredResult`
attribution) and owns the other two sensors — a
:class:`~repro.obs.MetricsRegistry` and a
:class:`~repro.obs.DriftMonitor` — so a single ``tracer=`` argument
opts a server or session into all three.

Exports:

* :meth:`Tracer.chrome_trace` — Chrome ``trace_event`` JSON (loads in
  Perfetto / ``about://tracing``): one process per clock, one track
  per tenant per clock.  The simulated-clock export is a pure function
  of the workload, so it is byte-identical across same-seed runs —
  the property the tracing bench pins.
* :meth:`Tracer.write_events` — an append-style JSONL event log (every
  span and drift event, one JSON object per line, both clocks).

Span recording order is the caller's: the server records everything
from its dispatcher in deterministic simulated-clock order, which is
what makes the export reproducible even though compiles and batches
genuinely race on the wall clock.
"""

from __future__ import annotations

import json
import pathlib
import threading
from dataclasses import dataclass, field

from .drift import DriftMonitor
from .metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "CLOCKS"]

#: Clock selectors for the Chrome export.
CLOCKS = ("sim", "wall", "both")

#: Synthetic process ids of the two clock timelines in the export.
SIM_PID = 1
WALL_PID = 2


@dataclass
class Span:
    """One traced interval (or instant) on up to two clocks.

    ``sim_start_ns``/``sim_end_ns`` are simulated nanoseconds;
    ``wall_start_ns``/``wall_end_ns`` are ``perf_counter_ns`` stamps.
    Either clock may be absent (``None``): a compile is an instant on
    the simulated clock but an interval on the wall clock, a queue
    wait the other way round.  ``parent`` is the enclosing span's
    :attr:`sid`; ``track`` groups spans into export rows (one per
    tenant, plus ``"server"`` for batches).
    """

    sid: int
    name: str
    track: str
    category: str = ""
    qid: int | None = None
    parent: int | None = None
    sim_start_ns: float | None = None
    sim_end_ns: float | None = None
    wall_start_ns: int | None = None
    wall_end_ns: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def sim_duration_ns(self) -> float | None:
        if self.sim_start_ns is None or self.sim_end_ns is None:
            return None
        return self.sim_end_ns - self.sim_start_ns

    @property
    def wall_duration_ns(self) -> int | None:
        if self.wall_start_ns is None or self.wall_end_ns is None:
            return None
        return self.wall_end_ns - self.wall_start_ns

    def to_json(self) -> dict:
        return {
            "kind": "span", "sid": self.sid, "name": self.name,
            "track": self.track, "category": self.category,
            "qid": self.qid, "parent": self.parent,
            "sim_start_ns": self.sim_start_ns,
            "sim_end_ns": self.sim_end_ns,
            "wall_start_ns": self.wall_start_ns,
            "wall_end_ns": self.wall_end_ns,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Span collector plus the registry and drift monitor it feeds.

    Everything is opt-in and inert until attached
    (``QueryServer(tracer=...)`` / ``Session(tracer=...)``); an
    unattached tracer costs nothing.  Span ids are allocated under a
    lock so multi-threaded callers stay safe, but *ordering* is the
    caller's contract — the server records from its single dispatcher,
    in simulated-clock order.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 drift: DriftMonitor | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.drift = drift if drift is not None else DriftMonitor()
        self.spans: list[Span] = []
        #: Unified event log (span and drift dicts, recording order) —
        #: what :meth:`write_events` serializes line by line.
        self.log: list[dict] = []
        self._lock = threading.Lock()
        self._next_sid = 0

    # -- recording -----------------------------------------------------
    def span(self, name: str, *, track: str, category: str = "",
             qid: int | None = None, parent: int | None = None,
             sim_start_ns: float | None = None,
             sim_end_ns: float | None = None,
             wall_start_ns: int | None = None,
             wall_end_ns: int | None = None, **attrs) -> Span:
        """Record one completed span (both clocks optional)."""
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
            span = Span(sid=sid, name=name, track=track,
                        category=category, qid=qid, parent=parent,
                        sim_start_ns=sim_start_ns, sim_end_ns=sim_end_ns,
                        wall_start_ns=wall_start_ns,
                        wall_end_ns=wall_end_ns, attrs=attrs)
            self.spans.append(span)
            self.log.append(span.to_json())
        return span

    def instant(self, name: str, *, track: str, at_ns: float,
                category: str = "", qid: int | None = None,
                parent: int | None = None, **attrs) -> Span:
        """A zero-duration simulated-clock marker."""
        return self.span(name, track=track, category=category, qid=qid,
                         parent=parent, sim_start_ns=at_ns,
                         sim_end_ns=at_ns, **attrs)

    def observe_drift(self, operator: str, fingerprint: str,
                      predicted_ns: float, measured_ns: float,
                      at_ns: float = 0.0):
        """Feed one per-operator sample to the drift monitor, logging
        any event it causes."""
        event = self.drift.observe(operator, fingerprint, predicted_ns,
                                   measured_ns, at_ns=at_ns)
        if event is not None:
            with self._lock:
                self.log.append(event.to_json())
        return event

    def record_measured(self, measured, *, track: str,
                        sim_start_ns: float, qid: int | None = None,
                        parent: int | None = None,
                        fingerprint: str | None = None) -> Span:
        """Span-ify a :class:`~repro.query.MeasuredResult`: one
        plan-level ``execute`` span starting at ``sim_start_ns`` with
        one child per operator, partitioning it *exactly* (operator
        boundaries are ``start + cumulative exclusive time``, and the
        exclusive deltas sum exactly to the whole-plan counters — the
        invariant the query layer already guarantees).  When
        ``fingerprint`` is given, every operator sample also feeds the
        drift monitor."""
        start = sim_start_ns
        cumulative = 0.0
        edges = [0.0]
        for op in measured.operators:
            cumulative = cumulative + op.counters.elapsed_ns
            edges.append(cumulative)
        end = start + cumulative if measured.operators \
            else start + measured.measured_ns
        execute = self.span(
            "execute", track=track, category="plan", qid=qid,
            parent=parent, sim_start_ns=start, sim_end_ns=end,
            signature=measured.signature,
            predicted_ns=measured.predicted_ns,
            measured_ns=measured.measured_ns,
            error=measured.error,
            operators=len(measured.operators))
        for i, op in enumerate(measured.operators):
            self.span(
                op.operator, track=track, category="operator", qid=qid,
                parent=execute.sid,
                sim_start_ns=start + edges[i],
                sim_end_ns=start + edges[i + 1],
                predicted_ns=op.predicted_memory_ns,
                measured_ns=op.measured_ns, spill=op.spill)
            if fingerprint is not None:
                self.observe_drift(op.operator, fingerprint,
                                   op.predicted_memory_ns,
                                   op.measured_ns, at_ns=end)
        return execute

    # -- export --------------------------------------------------------
    def _tracks(self, clock: str) -> dict[str, int]:
        """Track name -> tid, in first-seen span order (deterministic
        for deterministic recording order)."""
        tids: dict[str, int] = {}
        for span in self.spans:
            has = (span.sim_start_ns is not None if clock == "sim"
                   else span.wall_start_ns is not None)
            if has and span.track not in tids:
                tids[span.track] = len(tids) + 1
        return tids

    def _wall_origin(self) -> int:
        starts = [s.wall_start_ns for s in self.spans
                  if s.wall_start_ns is not None]
        return min(starts) if starts else 0

    def chrome_trace(self, clock: str = "sim") -> dict:
        """The span log as Chrome ``trace_event`` JSON (open in
        Perfetto or ``about://tracing``).  ``clock`` selects the
        simulated timeline, the wall timeline, or both (one synthetic
        process per clock, one thread per track).  Timestamps are
        microseconds per the format; the simulated export is
        deterministic in the workload."""
        if clock not in CLOCKS:
            raise ValueError(f"unknown clock {clock!r} "
                             f"(expected one of {CLOCKS})")
        events: list[dict] = []

        def emit_clock(which: str, pid: int, label: str) -> None:
            tids = self._tracks(which)
            if not tids:
                return
            origin = 0 if which == "sim" else self._wall_origin()
            events.append({"ph": "M", "pid": pid, "tid": 0,
                           "name": "process_name",
                           "args": {"name": label}})
            for track, tid in tids.items():
                events.append({"ph": "M", "pid": pid, "tid": tid,
                               "name": "thread_name",
                               "args": {"name": track}})
                events.append({"ph": "M", "pid": pid, "tid": tid,
                               "name": "thread_sort_index",
                               "args": {"sort_index": tid}})
            for span in self.spans:
                if which == "sim":
                    if span.sim_start_ns is None:
                        continue
                    start, duration = span.sim_start_ns, \
                        span.sim_duration_ns
                else:
                    if span.wall_start_ns is None:
                        continue
                    start = span.wall_start_ns - origin
                    duration = span.wall_duration_ns
                args = {"sid": span.sid, **span.attrs}
                if span.qid is not None:
                    args["qid"] = span.qid
                if span.parent is not None:
                    args["parent"] = span.parent
                event = {"pid": pid, "tid": tids[span.track],
                         "name": span.name, "cat": span.category or
                         "span", "ts": start / 1e3, "args": args}
                if duration:
                    event["ph"] = "X"
                    event["dur"] = duration / 1e3
                else:
                    event["ph"] = "i"
                    event["s"] = "t"
                events.append(event)

        if clock in ("sim", "both"):
            emit_clock("sim", SIM_PID, "simulated clock")
        if clock in ("wall", "both"):
            emit_clock("wall", WALL_PID, "wall clock")
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {"clock": clock, "spans": len(self.spans)},
        }

    def write_chrome(self, path, clock: str = "sim") -> pathlib.Path:
        """Serialize :meth:`chrome_trace` to ``path`` (compact,
        key-sorted: the simulated export is byte-identical across
        same-seed runs)."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.chrome_trace(clock),
                                   sort_keys=True,
                                   separators=(",", ":")) + "\n")
        return path

    def write_events(self, path) -> pathlib.Path:
        """Serialize the unified event log (spans + drift events) as
        JSON Lines, one object per line, in recording order."""
        path = pathlib.Path(path)
        with path.open("w") as handle:
            for entry in self.log:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return path

    def __repr__(self) -> str:
        return (f"Tracer(spans={len(self.spans)}, "
                f"metrics={len(self.metrics)}, "
                f"drift_events={len(self.drift.events)})")
