"""Hand-rolled schemas for the observability artifacts.

Same discipline as :mod:`repro.validation.bench_schema` (the toolchain
carries no ``jsonschema``): each validator returns a list of
human-readable problems, empty when the payload conforms.  Covered
artifacts:

* Chrome ``trace_event`` JSON (:func:`validate_chrome_trace`) — the
  subset the :class:`~repro.obs.Tracer` emits: ``M`` metadata, ``X``
  complete events, ``i`` instants, with consistent pids/tids.
* The metrics scrape (:func:`validate_metrics_json`) — typed families
  with labeled series.
* JSONL event-log entries (:func:`validate_event`) — span and drift
  records.
* Recalibration sidecar manifests (:func:`validate_manifest`) — the
  Tracekit-style record a published profile carries
  (:func:`repro.calibrator.build_manifest`).
* What-if capacity-planning reports (:func:`validate_whatif_report`)
  — the :meth:`~repro.whatif.WhatIfReport.to_json` shape: baseline,
  candidates with deltas and optional spot checks, frontier labels,
  and the recommendation when one was asked for.
"""

from __future__ import annotations

import json
import pathlib

__all__ = [
    "validate_chrome_trace",
    "validate_trace_file",
    "validate_metrics_json",
    "validate_event",
    "validate_events_file",
    "validate_manifest",
    "validate_manifest_file",
    "validate_whatif_report",
    "validate_whatif_report_file",
]


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------

def validate_chrome_trace(data) -> list[str]:
    """All schema violations of one Chrome trace payload."""
    if not isinstance(data, dict):
        return ["trace is not a JSON object"]
    problems: list[str] = []
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents must be a non-empty list"]
    declared: set[tuple[int, int]] = set()
    processes: set[int] = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("M", "X", "i"):
            problems.append(f"{where}.ph must be M, X, or i, got {ph!r}")
            continue
        if not _is_number(event.get("pid")):
            problems.append(f"{where}.pid must be a number")
            continue
        if ph == "M":
            name = event.get("name")
            if name not in ("process_name", "thread_name",
                            "thread_sort_index"):
                problems.append(f"{where}: unknown metadata {name!r}")
            if not isinstance(event.get("args"), dict):
                problems.append(f"{where}.args must be an object")
            processes.add(event["pid"])
            if name in ("thread_name", "thread_sort_index"):
                declared.add((event["pid"], event.get("tid")))
            continue
        # X / i events
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}.name must be a non-empty string")
        if not _is_number(event.get("ts")):
            problems.append(f"{where}.ts must be a number")
        if event["pid"] not in processes:
            problems.append(
                f"{where}: pid {event['pid']} has no process_name")
        if (event["pid"], event.get("tid")) not in declared:
            problems.append(
                f"{where}: tid {event.get('tid')!r} undeclared for "
                f"pid {event['pid']}")
        if ph == "X":
            duration = event.get("dur")
            if not _is_number(duration) or duration < 0:
                problems.append(
                    f"{where}.dur must be a non-negative number")
        else:  # instant
            if event.get("s") not in ("t", "p", "g"):
                problems.append(f"{where}.s must be t, p, or g")
    return problems


def validate_trace_file(path) -> list[str]:
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    return validate_chrome_trace(data)


# ----------------------------------------------------------------------
# metrics scrape
# ----------------------------------------------------------------------

def validate_metrics_json(data) -> list[str]:
    """All schema violations of one metrics scrape
    (:meth:`~repro.obs.MetricsRegistry.to_json`)."""
    if not isinstance(data, dict):
        return ["scrape is not a JSON object"]
    problems: list[str] = []
    if data.get("kind") != "metrics":
        problems.append(
            f"kind must be 'metrics', got {data.get('kind')!r}")
    families = data.get("families")
    if not isinstance(families, list):
        return problems + ["families must be a list"]
    for f_index, family in enumerate(families):
        where = f"families[{f_index}]"
        if not isinstance(family, dict):
            problems.append(f"{where} is not an object")
            continue
        if not isinstance(family.get("name"), str) or not family["name"]:
            problems.append(f"{where}.name must be a non-empty string")
        kind = family.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            problems.append(
                f"{where}.type must be counter/gauge/histogram, "
                f"got {kind!r}")
            continue
        series = family.get("series")
        if not isinstance(series, list):
            problems.append(f"{where}.series must be a list")
            continue
        for s_index, entry in enumerate(series):
            s_where = f"{where}.series[{s_index}]"
            if not isinstance(entry, dict):
                problems.append(f"{s_where} is not an object")
                continue
            labels = entry.get("labels")
            if not isinstance(labels, dict) or not all(
                    isinstance(k, str) and isinstance(v, str)
                    for k, v in labels.items()):
                problems.append(
                    f"{s_where}.labels must map strings to strings")
            if kind == "histogram":
                if not isinstance(entry.get("count"), int) \
                        or entry["count"] < 0:
                    problems.append(
                        f"{s_where}.count must be a non-negative int")
                if not _is_number(entry.get("sum")):
                    problems.append(f"{s_where}.sum must be a number")
                buckets = entry.get("buckets")
                if not isinstance(buckets, list) or not all(
                        isinstance(b, list) and len(b) == 2
                        and isinstance(b[0], str) and isinstance(b[1], int)
                        for b in buckets):
                    problems.append(
                        f"{s_where}.buckets must be [le, count] pairs")
            else:
                if not _is_number(entry.get("value")):
                    problems.append(f"{s_where}.value must be a number")
    return problems


# ----------------------------------------------------------------------
# event log
# ----------------------------------------------------------------------

def validate_event(data) -> list[str]:
    """All schema violations of one JSONL event-log entry (a span or a
    drift event)."""
    if not isinstance(data, dict):
        return ["event is not a JSON object"]
    kind = data.get("kind")
    problems: list[str] = []
    if kind == "span":
        if not isinstance(data.get("sid"), int) or data["sid"] < 0:
            problems.append("span.sid must be a non-negative int")
        for key in ("name", "track"):
            if not isinstance(data.get(key), str) or not data[key]:
                problems.append(f"span.{key} must be a non-empty string")
        for key in ("sim_start_ns", "sim_end_ns", "wall_start_ns",
                    "wall_end_ns"):
            value = data.get(key)
            if value is not None and not _is_number(value):
                problems.append(f"span.{key} must be a number or null")
        if data.get("sim_start_ns") is None \
                and data.get("wall_start_ns") is None:
            problems.append("span must carry at least one clock")
        start, end = data.get("sim_start_ns"), data.get("sim_end_ns")
        if _is_number(start) and _is_number(end) and end < start:
            problems.append("span simulated interval ends before start")
        if not isinstance(data.get("attrs"), dict):
            problems.append("span.attrs must be an object")
    elif kind == "drift":
        for key in ("operator", "fingerprint"):
            if not isinstance(data.get(key), str):
                problems.append(f"drift.{key} must be a string")
        for key in ("at_ns", "ewma", "sample_error", "band"):
            if not _is_number(data.get(key)):
                problems.append(f"drift.{key} must be a number")
        if not isinstance(data.get("count"), int) or data.get(
                "count", 0) < 1:
            problems.append("drift.count must be a positive int")
    else:
        problems.append(
            f"event kind must be 'span' or 'drift', got {kind!r}")
    return problems


# ----------------------------------------------------------------------
# recalibration sidecar manifest
# ----------------------------------------------------------------------

def _validate_profile_dict(data, where: str) -> list[str]:
    if not isinstance(data, dict):
        return [f"{where} is not an object"]
    problems = []
    levels = data.get("levels")
    if not isinstance(levels, list) or not levels:
        problems.append(f"{where}.levels must be a non-empty list")
    if not isinstance(data.get("name"), str) or not data["name"]:
        problems.append(f"{where}.name must be a non-empty string")
    return problems


def validate_manifest(data) -> list[str]:
    """All schema violations of one recalibration sidecar manifest
    (:func:`repro.calibrator.build_manifest`)."""
    if not isinstance(data, dict):
        return ["manifest is not a JSON object"]
    problems: list[str] = []
    if data.get("kind") != "recalibration_manifest":
        problems.append("kind must be 'recalibration_manifest', "
                        f"got {data.get('kind')!r}")
    if data.get("schema_version") != 1:
        problems.append("schema_version must be 1, "
                        f"got {data.get('schema_version')!r}")
    published = data.get("published")
    if not isinstance(published, bool):
        problems.append("published must be a boolean")
        published = False
    profile = data.get("profile")
    if not isinstance(profile, dict):
        problems.append("profile must be an object")
    else:
        for side in ("before", "after"):
            problems.extend(_validate_profile_dict(profile.get(side),
                                                   f"profile.{side}"))
    fingerprint = data.get("fingerprint")
    if not isinstance(fingerprint, dict):
        problems.append("fingerprint must be an object")
    else:
        for side in ("before", "after"):
            value = fingerprint.get(side)
            if not isinstance(value, str) or not value:
                problems.append(
                    f"fingerprint.{side} must be a non-empty string")
        if published and fingerprint.get("before") == fingerprint.get(
                "after"):
            problems.append(
                "published manifest must change the fingerprint")
    search = data.get("search")
    if not isinstance(search, dict):
        problems.append("search must be an object")
    else:
        grid = search.get("grid")
        if not isinstance(grid, list) or not grid or not all(
                _is_number(m) and m > 0 for m in grid):
            problems.append(
                "search.grid must be a non-empty list of positive "
                "numbers")
        for key in ("max_passes", "passes", "evaluations"):
            value = search.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                problems.append(
                    f"search.{key} must be a non-negative int")
        multipliers = search.get("multipliers")
        if not isinstance(multipliers, dict) or not all(
                isinstance(name, str)
                and isinstance(pair, list) and len(pair) == 2
                and all(_is_number(m) and m > 0 for m in pair)
                for name, pair in multipliers.items()):
            problems.append(
                "search.multipliers must map level names to "
                "[seq, rand] positive pairs")
    error = data.get("error")
    if not isinstance(error, dict):
        problems.append("error must be an object")
    else:
        if not _is_number(error.get("band")) or error["band"] <= 0:
            problems.append("error.band must be a positive number")
        for key in ("before", "after"):
            value = error.get(key)
            if not _is_number(value) or value < 0:
                problems.append(
                    f"error.{key} must be a non-negative number")
        if published and _is_number(error.get("before")) \
                and _is_number(error.get("after")) \
                and error["after"] > error["before"]:
            problems.append(
                "published manifest must not increase the error")
        samples = error.get("samples")
        if not isinstance(samples, list):
            problems.append("error.samples must be a list")
        else:
            for index, entry in enumerate(samples):
                where = f"error.samples[{index}]"
                if not isinstance(entry, dict):
                    problems.append(f"{where} is not an object")
                    continue
                if not isinstance(entry.get("label"), str) \
                        or not entry["label"]:
                    problems.append(
                        f"{where}.label must be a non-empty string")
                for key in ("before", "after"):
                    if not _is_number(entry.get(key)) or entry[key] < 0:
                        problems.append(
                            f"{where}.{key} must be a non-negative "
                            "number")
    events = data.get("events")
    if not isinstance(events, list):
        problems.append("events must be a list")
    else:
        for index, event in enumerate(events):
            where = f"events[{index}]"
            if not isinstance(event, dict) \
                    or event.get("kind") != "drift":
                problems.append(f"{where} must be a drift event")
                continue
            problems.extend(f"{where}: {problem}"
                            for problem in validate_event(event))
    return problems


def validate_manifest_file(path) -> list[str]:
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    return validate_manifest(data)


# ----------------------------------------------------------------------
# what-if capacity-planning report
# ----------------------------------------------------------------------

def _validate_outcome(data, where: str, *,
                      spot_checked: bool = True) -> list[str]:
    """One priced candidate row (:class:`repro.whatif.CandidateOutcome`)."""
    if not isinstance(data, dict):
        return [f"{where} is not an object"]
    problems: list[str] = []
    if not isinstance(data.get("label"), str) or not data["label"]:
        problems.append(f"{where}.label must be a non-empty string")
    if not isinstance(data.get("params"), dict):
        problems.append(f"{where}.params must be an object")
    if not isinstance(data.get("fingerprint"), str) \
            or not data["fingerprint"]:
        problems.append(f"{where}.fingerprint must be a non-empty string")
    if not _is_number(data.get("cost_proxy")) or data["cost_proxy"] <= 0:
        problems.append(f"{where}.cost_proxy must be a positive number")
    if not isinstance(data.get("cores"), int) \
            or isinstance(data.get("cores"), bool) or data["cores"] < 1:
        problems.append(f"{where}.cores must be a positive int")
    budget = data.get("memory_budget")
    if budget is not None and (not isinstance(budget, int)
                               or isinstance(budget, bool) or budget < 1):
        problems.append(
            f"{where}.memory_budget must be a positive int or null")
    predicted = data.get("predicted")
    if not isinstance(predicted, dict):
        problems.append(f"{where}.predicted must be an object")
    else:
        for key in ("makespan_ns", "p50_ns", "p95_ns", "throughput_qps"):
            value = predicted.get(key)
            if not _is_number(value) or value < 0:
                problems.append(
                    f"{where}.predicted.{key} must be a non-negative "
                    "number")
        if _is_number(predicted.get("p50_ns")) \
                and _is_number(predicted.get("p95_ns")) \
                and predicted["p95_ns"] < predicted["p50_ns"]:
            problems.append(f"{where}.predicted p95 below p50")
    for key in ("batches", "co_run_batches"):
        value = data.get(key)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            problems.append(f"{where}.{key} must be a non-negative int")
    if not _is_number(data.get("max_admission_inflation")) \
            or data["max_admission_inflation"] < 0:
        problems.append(
            f"{where}.max_admission_inflation must be a non-negative "
            "number")
    spot = data.get("spot_check")
    if spot is not None:
        if not spot_checked:
            problems.append(f"{where}.spot_check unexpected here")
        elif not isinstance(spot, dict):
            problems.append(f"{where}.spot_check must be an object or null")
        else:
            for key in ("measured_makespan_ns", "measured_p50_ns",
                        "measured_p95_ns", "measured_throughput_qps",
                        "makespan_error", "p95_error",
                        "mean_contention_error"):
                value = spot.get(key)
                if not _is_number(value) or value < 0:
                    problems.append(
                        f"{where}.spot_check.{key} must be a "
                        "non-negative number")
    return problems


def validate_whatif_report(data) -> list[str]:
    """All schema violations of one what-if report
    (:meth:`repro.whatif.WhatIfReport.to_json`)."""
    if not isinstance(data, dict):
        return ["report is not a JSON object"]
    problems: list[str] = []
    if data.get("kind") != "whatif_report":
        problems.append(
            f"kind must be 'whatif_report', got {data.get('kind')!r}")
    if data.get("schema_version") != 1:
        problems.append("schema_version must be 1, "
                        f"got {data.get('schema_version')!r}")
    for key in ("space", "policy"):
        if not isinstance(data.get(key), str) or not data[key]:
            problems.append(f"{key} must be a non-empty string")
    workload = data.get("workload")
    if not isinstance(workload, dict):
        problems.append("workload must be an object")
    else:
        if workload.get("source") not in ("generated", "captured"):
            problems.append("workload.source must be 'generated' or "
                            f"'captured', got {workload.get('source')!r}")
        for key in ("queries", "clients"):
            value = workload.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                problems.append(f"workload.{key} must be a positive int")
    problems.extend(_validate_outcome(data.get("baseline"), "baseline"))
    labels: set[str] = set()
    baseline = data.get("baseline")
    if isinstance(baseline, dict) and isinstance(baseline.get("label"),
                                                 str):
        labels.add(baseline["label"])
    candidates = data.get("candidates")
    if not isinstance(candidates, list) or not candidates:
        problems.append("candidates must be a non-empty list")
        candidates = []
    for index, row in enumerate(candidates):
        where = f"candidates[{index}]"
        problems.extend(_validate_outcome(row, where))
        if not isinstance(row, dict):
            continue
        if isinstance(row.get("label"), str):
            if row["label"] in labels:
                problems.append(f"{where}: duplicate label "
                                f"{row['label']!r}")
            labels.add(row["label"])
        delta = row.get("delta")
        if not isinstance(delta, dict) or not all(
                _is_number(delta.get(key))
                for key in ("makespan", "p95", "throughput", "cost")):
            problems.append(
                f"{where}.delta must carry numeric "
                "makespan/p95/throughput/cost")
        if not isinstance(row.get("on_frontier"), bool):
            problems.append(f"{where}.on_frontier must be a boolean")
    skipped = data.get("skipped")
    if not isinstance(skipped, list):
        problems.append("skipped must be a list")
    else:
        for index, entry in enumerate(skipped):
            where = f"skipped[{index}]"
            if not isinstance(entry, dict) \
                    or not isinstance(entry.get("params"), dict) \
                    or not isinstance(entry.get("reason"), str) \
                    or not entry["reason"]:
                problems.append(
                    f"{where} must carry params (object) and a "
                    "non-empty reason")
    frontier = data.get("frontier")
    if not isinstance(frontier, list) or not frontier:
        problems.append("frontier must be a non-empty list")
    else:
        for index, label in enumerate(frontier):
            if not isinstance(label, str) or label not in labels:
                problems.append(
                    f"frontier[{index}] must name a priced candidate, "
                    f"got {label!r}")
    recommendation = data.get("recommendation")
    if recommendation is not None:
        if not isinstance(recommendation, dict):
            problems.append("recommendation must be an object or null")
        else:
            question = recommendation.get("question")
            if not isinstance(question, dict) \
                    or not _is_number(question.get("p95_ns")) \
                    or question["p95_ns"] <= 0:
                problems.append(
                    "recommendation.question must carry a positive "
                    "p95_ns")
            label = recommendation.get("label")
            if not isinstance(label, str) or label not in labels:
                problems.append(
                    "recommendation.label must name a priced candidate, "
                    f"got {label!r}")
            for key in ("cost_proxy", "predicted_p95_ns",
                        "predicted_makespan_ns", "admission_slack"):
                value = recommendation.get(key)
                if not _is_number(value) or value <= 0:
                    problems.append(
                        f"recommendation.{key} must be a positive number")
            for key in ("candidates_considered", "candidates_meeting"):
                value = recommendation.get(key)
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 1:
                    problems.append(
                        f"recommendation.{key} must be a positive int")
    return problems


def validate_whatif_report_file(path) -> list[str]:
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    return validate_whatif_report(data)


def validate_events_file(path) -> list[str]:
    """Validate every line of a JSONL event log."""
    try:
        lines = pathlib.Path(path).read_text().splitlines()
    except OSError as exc:
        return [f"unreadable: {exc}"]
    problems: list[str] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            problems.append(f"line {number}: empty")
            continue
        try:
            data = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {number}: not JSON ({exc})")
            continue
        problems.extend(f"line {number}: {problem}"
                        for problem in validate_event(data))
    return problems
