"""EWMA drift monitoring of per-operator predicted-vs-measured error.

Every measured execution streams one sample per operator — the model's
state-threaded attribution next to the simulator's exclusive counter
delta (:class:`~repro.query.OperatorMeasurement`).  The
:class:`DriftMonitor` folds those samples into an exponentially
weighted moving average of the *signed* relative error per
``(operator, profile fingerprint)`` series, and emits a structured
:class:`DriftEvent` when a series' EWMA leaves the tolerance band the
validation suites hold the model to (0.35 by default).

Signed error ``(measured − predicted) / measured`` keeps the direction:
a positive EWMA is the model *underpredicting* (the known small-n
permutation-join overshoot, ``tests/test_known_gaps.py``), a negative
one overpredicting.  Events fire on the band *transition* (re-armed
once the series returns inside), so a persistently drifted operator
yields one event per excursion, not one per query — the sensor stream
ROADMAP item 3's online calibrator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DriftEvent", "DriftSeries", "DriftMonitor"]

#: The model-vs-simulator tolerance the validation suites use for
#: in-memory templates — the band a healthy operator's error stays in.
DEFAULT_BAND = 0.35

#: EWMA smoothing factor: ~3 samples to cross the band on a persistent
#: gap, while a single outlier decays away.
DEFAULT_ALPHA = 0.3

#: Samples a series must accumulate before it may emit (one noisy
#: first sample is not drift).
DEFAULT_MIN_SAMPLES = 3


@dataclass(frozen=True)
class DriftEvent:
    """One detected excursion of a series outside the band."""

    at_ns: float
    operator: str
    fingerprint: str
    #: The series EWMA of the signed relative error at detection.
    ewma: float
    #: The sample that tipped the series out.
    sample_error: float
    #: Samples folded into the series so far.
    count: int
    band: float

    def to_json(self) -> dict:
        return {
            "kind": "drift", "at_ns": self.at_ns,
            "operator": self.operator, "fingerprint": self.fingerprint,
            "ewma": self.ewma, "sample_error": self.sample_error,
            "count": self.count, "band": self.band,
        }


class DriftSeries:
    """Mutable EWMA state of one (operator, fingerprint) stream."""

    __slots__ = ("operator", "fingerprint", "ewma", "count", "in_drift",
                 "last_error")

    def __init__(self, operator: str, fingerprint: str) -> None:
        self.operator = operator
        self.fingerprint = fingerprint
        self.ewma = 0.0
        self.count = 0
        self.in_drift = False
        self.last_error = 0.0

    def to_json(self) -> dict:
        return {
            "operator": self.operator, "fingerprint": self.fingerprint,
            "ewma": self.ewma, "count": self.count,
            "in_drift": self.in_drift, "last_error": self.last_error,
        }


class DriftMonitor:
    """Per-(operator, fingerprint) EWMA drift detection.

    :meth:`observe` folds one per-operator sample in and returns the
    :class:`DriftEvent` it caused, if any (also appended to
    :attr:`events`).  Operators with no measured memory time are
    skipped — a zero-access operator has no error to track.
    """

    def __init__(self, band: float = DEFAULT_BAND,
                 alpha: float = DEFAULT_ALPHA,
                 min_samples: int = DEFAULT_MIN_SAMPLES) -> None:
        if not 0.0 < band:
            raise ValueError("band must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be positive")
        self.band = band
        self.alpha = alpha
        self.min_samples = min_samples
        self.series: dict[tuple[str, str], DriftSeries] = {}
        self.events: list[DriftEvent] = []

    # ------------------------------------------------------------------
    def observe(self, operator: str, fingerprint: str,
                predicted_ns: float, measured_ns: float,
                at_ns: float = 0.0) -> DriftEvent | None:
        """Fold one predicted-vs-measured sample into its series."""
        if measured_ns <= 0:
            return None
        error = (measured_ns - predicted_ns) / measured_ns
        key = (operator, fingerprint)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = DriftSeries(operator, fingerprint)
        series.count += 1
        series.last_error = error
        if series.count == 1:
            series.ewma = error  # seed at the first sample, not at 0
        else:
            series.ewma += self.alpha * (error - series.ewma)
        if abs(series.ewma) <= self.band:
            series.in_drift = False  # back inside: re-arm
            return None
        if series.in_drift or series.count < self.min_samples:
            return None
        series.in_drift = True
        event = DriftEvent(
            at_ns=at_ns, operator=operator, fingerprint=fingerprint,
            ewma=series.ewma, sample_error=error, count=series.count,
            band=self.band)
        self.events.append(event)
        return event

    def observe_result(self, measured, fingerprint: str,
                       at_ns: float = 0.0) -> list[DriftEvent]:
        """Fold every operator of a
        :class:`~repro.query.MeasuredResult` in; returns the events
        caused."""
        caused = []
        for op in measured.operators:
            event = self.observe(op.operator, fingerprint,
                                 op.predicted_memory_ns, op.measured_ns,
                                 at_ns=at_ns)
            if event is not None:
                caused.append(event)
        return caused

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Every series' current EWMA state plus all emitted events."""
        return {
            "kind": "drift_monitor",
            "band": self.band,
            "alpha": self.alpha,
            "min_samples": self.min_samples,
            "series": [series.to_json() for _, series in
                       sorted(self.series.items())],
            "events": [event.to_json() for event in self.events],
        }

    def __repr__(self) -> str:
        drifted = sum(1 for s in self.series.values() if s.in_drift)
        return (f"DriftMonitor(band={self.band}, "
                f"series={len(self.series)}, drifted={drifted}, "
                f"events={len(self.events)})")
