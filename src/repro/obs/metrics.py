"""Live metrics: labeled counters/gauges/histograms with Prometheus
exposition.

The serving stack runs on two clocks, and until now everything it knew
about itself was end-of-run (``ServingReport``).  This module is the
*live* half: a :class:`MetricsRegistry` of named metric families —
:class:`Counter`, :class:`Gauge`, :class:`Histogram` — each fanned out
into labeled series (tenant, template kind, policy, cache level), with
Prometheus-style text exposition (:meth:`MetricsRegistry.expose`) and a
JSON form (:meth:`MetricsRegistry.to_json`) for programmatic scrapes.

Histograms are *bucketed*: :class:`BucketedHistogram` keeps per-bucket
counts and sums over exponential (power-of-two) nanosecond bounds, so
``observe`` is O(log B) and memory is bounded by the bucket count no
matter how many samples stream through.  Percentile estimates
interpolate over bucket *means* (count and sum per bucket), which makes
a single-sample bucket exact and bounds the general error by one bucket
width — the property the SLO sliding windows rely on when they swap
their sort-per-percentile for this structure.  The structure is also
*removable* (:meth:`BucketedHistogram.forget`), which is what lets a
sliding window trim expired samples without rebuilding.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort

__all__ = [
    "DEFAULT_BUCKET_BOUNDS",
    "BucketedHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds: powers of two from 1 ns to
#: 2^63 ns, plus an implicit +Inf overflow bucket.  Exponential bounds
#: give a constant *relative* resolution (a bucket's width is at most
#: its lower edge), which is the right shape for latencies spanning
#: many decades.
DEFAULT_BUCKET_BOUNDS = tuple(float(2 ** k) for k in range(64))


class BucketedHistogram:
    """Counts and sums over fixed bucket bounds; O(log B) observe.

    ``bounds`` are the buckets' inclusive upper edges (ascending); an
    overflow bucket above the last bound is implicit.  Each bucket
    keeps a count *and* a sum, so :meth:`percentile` can interpolate
    over bucket means — exact when a bucket holds one distinct value,
    within one bucket width otherwise.  :meth:`forget` removes a
    previously observed value (sliding-window trimming); the histogram
    never stores individual samples, so memory stays O(B).
    """

    __slots__ = ("bounds", "counts", "sums", "count", "total")

    def __init__(self, bounds: tuple[float, ...] | None = None) -> None:
        bounds = (DEFAULT_BUCKET_BOUNDS if bounds is None
                  else tuple(sorted(float(b) for b in bounds)))
        if not bounds:
            raise ValueError("bounds must be non-empty")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.sums = [0.0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    # ------------------------------------------------------------------
    def _index(self, value: float) -> int:
        return bisect_left(self.bounds, value)

    def observe(self, value: float) -> None:
        i = self._index(value)
        self.counts[i] += 1
        self.sums[i] += value
        self.count += 1
        self.total += value

    def forget(self, value: float) -> None:
        """Remove one previously observed ``value`` (the sliding-window
        trim operation).  Forgetting a value that was never observed
        corrupts the distribution — callers own that pairing."""
        i = self._index(value)
        if self.counts[i] < 1:
            raise ValueError(
                f"forget({value!r}): bucket {i} is already empty")
        self.counts[i] -= 1
        self.sums[i] -= value
        if self.counts[i] == 0:
            self.sums[i] = 0.0  # don't let float dust accumulate
        self.count -= 1
        self.total -= value

    def __len__(self) -> int:
        return self.count

    # ------------------------------------------------------------------
    def bucket_span(self, value: float) -> tuple[float, float]:
        """The (lower, upper) edges of the bucket holding ``value`` —
        the resolution bound percentile estimates carry there."""
        i = self._index(value)
        lo = self.bounds[i - 1] if i > 0 else 0.0
        hi = self.bounds[i] if i < len(self.bounds) else float("inf")
        return lo, hi

    def _value_at(self, position: int) -> float:
        """The bucket mean standing in for the sample at sorted
        ``position`` (0-based)."""
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n:
                cumulative += n
                if position < cumulative:
                    return self.sums[i] / n
        raise IndexError(f"position {position} >= count {self.count}")

    def percentile(self, q: float) -> float | None:
        """The ``q``-th percentile (0–100) estimated from bucket means,
        with the same linear-interpolation rank convention as
        :func:`repro.service.metrics.percentile`; ``None`` when empty.
        Exact for a bucket holding one distinct value, within one
        bucket width in general, and monotone in ``q``."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return None
        if self.count == 1:
            return self._value_at(0)
        rank = (self.count - 1) * q / 100.0
        lo = int(rank)
        hi = min(lo + 1, self.count - 1)
        frac = rank - lo
        low = self._value_at(lo)
        if frac == 0.0 or hi == lo:
            return low
        return low * (1.0 - frac) + self._value_at(hi) * frac

    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def nonzero_buckets(self) -> list[tuple[float, int, float]]:
        """``(upper_edge, count, sum)`` for each occupied bucket."""
        out = []
        for i, n in enumerate(self.counts):
            if n:
                edge = (self.bounds[i] if i < len(self.bounds)
                        else float("inf"))
                out.append((edge, n, self.sums[i]))
        return out

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` rows over the
        occupied prefix (always ends with the +Inf row)."""
        rows = []
        running = 0
        last = 0
        for i, n in enumerate(self.counts[:-1]):
            running += n
            if running != last or n:
                rows.append((self.bounds[i], running))
                last = running
        rows.append((float("inf"), self.count))
        return rows

    def __repr__(self) -> str:
        return (f"BucketedHistogram(count={self.count}, "
                f"total={self.total:.1f}, buckets={len(self.bounds) + 1})")


# ----------------------------------------------------------------------
# metric families
# ----------------------------------------------------------------------

def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class _MetricFamily:
    """One named metric fanned out into labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = ()) -> None:
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        #: labelvalues tuple -> series state; insertion order is first
        #: touch, exposition sorts.
        self._series: dict[tuple[str, ...], object] = {}
        # Updates may come from worker threads (e.g. plan-cache
        # observers fire from compile workers); reads are dispatcher-
        # time and tolerate racing a concurrent update.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.labelnames)}, got {sorted(labels)}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def _get(self, labels: dict[str, object]):
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._new_series()
        return series

    def _new_series(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels_of(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, key))

    def series(self) -> list[tuple[tuple[str, ...], object]]:
        """All series, sorted by label values (deterministic scrape
        order)."""
        return sorted(self._series.items())

    def _render_labels(self, key: tuple[str, ...]) -> str:
        if not key:
            return ""
        inner = ",".join(
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key))
        return "{" + inner + "}"


class Counter(_MetricFamily):
    """A monotonically increasing count per labeled series."""

    kind = "counter"

    def _new_series(self) -> list[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._get(labels)[0] += amount

    def value(self, **labels) -> float:
        return self._get(labels)[0]

    def expose(self) -> list[str]:
        return [f"{self.name}{self._render_labels(key)} "
                f"{_format_number(cell[0])}"
                for key, cell in self.series()]

    def to_json(self) -> list[dict]:
        return [{"labels": self.labels_of(key), "value": cell[0]}
                for key, cell in self.series()]


class Gauge(_MetricFamily):
    """A point-in-time value per labeled series (set, not accumulated)."""

    kind = "gauge"

    def _new_series(self) -> list[float]:
        return [0.0]

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._get(labels)[0] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        with self._lock:
            self._get(labels)[0] += amount

    def value(self, **labels) -> float:
        return self._get(labels)[0]

    expose = Counter.expose
    to_json = Counter.to_json


class Histogram(_MetricFamily):
    """A :class:`BucketedHistogram` per labeled series."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = (),
                 bounds: tuple[float, ...] | None = None) -> None:
        super().__init__(name, help, labelnames)
        self.bounds = bounds

    def _new_series(self) -> BucketedHistogram:
        return BucketedHistogram(self.bounds)

    def observe(self, value: float, **labels) -> None:
        with self._lock:
            self._get(labels).observe(value)

    def histogram(self, **labels) -> BucketedHistogram:
        return self._get(labels)

    def percentile(self, q: float, **labels) -> float | None:
        return self._get(labels).percentile(q)

    def expose(self) -> list[str]:
        lines = []
        for key, hist in self.series():
            base = self._render_labels(key)
            for le, cumulative in hist.cumulative():
                label = (base[:-1] + "," if base
                         else "{") + f'le="{_format_number(le)}"' + "}"
                lines.append(f"{self.name}_bucket{label} {cumulative}")
            lines.append(f"{self.name}_sum{base} "
                         f"{_format_number(hist.total)}")
            lines.append(f"{self.name}_count{base} {hist.count}")
        return lines

    def to_json(self) -> list[dict]:
        return [{
            "labels": self.labels_of(key),
            "count": hist.count,
            "sum": hist.total,
            "buckets": [[_format_number(le), n]
                        for le, n, _ in hist.nonzero_buckets()],
        } for key, hist in self.series()]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

class MetricsRegistry:
    """Named metric families, exposed as Prometheus text or JSON.

    Registration is get-or-create: asking twice for the same name
    returns the same family (so wiring code needs no globals), and
    asking with a conflicting type or label set is an error — one name,
    one meaning."""

    def __init__(self) -> None:
        self._families: dict[str, _MetricFamily] = {}
        self._order: list[str] = []

    # ------------------------------------------------------------------
    def _register(self, cls, name: str, help: str,
                  labelnames: tuple[str, ...], **kw):
        family = self._families.get(name)
        if family is not None:
            if type(family) is not cls or \
                    family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind} with labels {family.labelnames}")
            return family
        family = cls(name, help, tuple(labelnames), **kw)
        self._families[name] = family
        insort(self._order, name)
        return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  bounds: tuple[float, ...] | None = None) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              bounds=bounds)

    def get(self, name: str) -> _MetricFamily:
        try:
            return self._families[name]
        except KeyError:
            known = ", ".join(self._order) or "none registered"
            raise KeyError(f"no metric {name!r} (known: {known})") \
                from None

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    # ------------------------------------------------------------------
    def expose(self) -> str:
        """Prometheus-style text exposition, families sorted by name,
        series sorted by label values — a deterministic scrape."""
        lines: list[str] = []
        for name in self._order:
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            lines.extend(family.expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        """The same scrape as a JSON-serializable dict (validated by
        :func:`repro.obs.schema.validate_metrics_json`)."""
        return {
            "kind": "metrics",
            "families": [{
                "name": name,
                "type": self._families[name].kind,
                "help": self._families[name].help,
                "series": self._families[name].to_json(),
            } for name in self._order],
        }

    def __repr__(self) -> str:
        return f"MetricsRegistry({self._order})"
