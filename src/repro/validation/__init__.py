"""Model-vs-measurement experiment harness (paper Section 6)."""

from .bench_schema import (
    payload_from_experiment,
    payload_from_results,
    payload_from_serving,
    validate_bench_file,
    validate_bench_payload,
    validate_results_dir,
)
from .cpu_cost import CpuCostModel, calibrate_cpu_cost
from .microbench import figure5, figure6, measure_traversal
from .plotting import ascii_plot
from .operators import (
    figure7a_quicksort,
    figure7b_mergejoin,
    figure7c_hashjoin,
    figure7d_partition,
    figure7e_partitioned_hashjoin,
)
from .reporting import ExperimentResult, ExperimentRow, geometric_mean_ratio

__all__ = [
    "ExperimentResult",
    "ExperimentRow",
    "geometric_mean_ratio",
    "measure_traversal",
    "figure5",
    "figure6",
    "figure7a_quicksort",
    "figure7b_mergejoin",
    "figure7c_hashjoin",
    "figure7d_partition",
    "figure7e_partitioned_hashjoin",
    "CpuCostModel",
    "calibrate_cpu_cost",
    "ascii_plot",
    "validate_bench_payload",
    "validate_bench_file",
    "validate_results_dir",
    "payload_from_results",
    "payload_from_experiment",
    "payload_from_serving",
]
