"""Figure 7: operator-level validation experiments.

Each experiment runs a real database operator against the simulated
memory ("measured", the paper's hardware-counter series) and evaluates
the automatically derived cost function of the operator's pattern
description ("predicted", the paper's model lines).  All experiments use
the scaled Origin2000 profile; sizes bracket the same capacity crossings
the paper's x-axes mark (``||U|| = C2``, ``||H|| = C3/C2``, ``m = #``,
``||H_j|| = C1/C2/C3``).
"""

from __future__ import annotations

from ..core.algorithms import (
    hash_join_pattern,
    merge_join_pattern,
    partition_pattern,
    partitioned_hash_join_pattern,
    quick_sort_pattern,
)
from ..core.cost import CostModel
from ..core.regions import DataRegion
from ..db.column import Column
from ..db.context import Database
from ..db.datagen import random_permutation, sorted_ints, uniform_ints
from ..db.join import OUTPUT_WIDTH, hash_join, merge_join
from ..db.partition import join_partitions, partition
from ..db.sort import quick_sort
from ..hardware.hierarchy import MemoryHierarchy
from ..hardware.profiles import origin2000_scaled
from .reporting import ExperimentResult, ExperimentRow

__all__ = [
    "figure7a_quicksort",
    "figure7b_mergejoin",
    "figure7c_hashjoin",
    "figure7d_partition",
    "figure7e_partitioned_hashjoin",
]

KB = 1024


def _size_label(size: int) -> str:
    if size >= 1024 * KB:
        return f"{size / (1024 * KB):.0f}MB"
    if size >= KB:
        return f"{size // KB}kB"
    return f"{size}B"


# ----------------------------------------------------------------------

def figure7a_quicksort(hierarchy: MemoryHierarchy | None = None,
                       sizes_kb: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256),
                       width: int = 8, seed: int = 11) -> ExperimentResult:
    """Quick-sort: misses and time vs table size (Figure 7a).

    The paper sweeps 128 KB - 128 MB across C2 = 4 MB; scaled, the sweep
    crosses the scaled C2 = 64 KB at the same ratio.
    """
    hierarchy = hierarchy or origin2000_scaled()
    model = CostModel(hierarchy)
    stop = min(l.capacity for l in hierarchy.all_levels)
    result = ExperimentResult(
        experiment_id="F7a", title="Quick-Sort", x_name="||U||",
    )
    for size_kb in sizes_kb:
        n = size_kb * KB // width
        db = Database(hierarchy)
        col = db.create_column("U", uniform_ints(n, seed=seed), width=width)
        db.reset()
        with db.measure() as res:
            quick_sort(db, col)
        pattern = quick_sort_pattern(col.region(), stop_bytes=stop)
        estimate = model.estimate(pattern)
        result.rows.append(ExperimentRow.from_comparison(
            _size_label(size_kb * KB), res[0], estimate))
    return result


def figure7b_mergejoin(hierarchy: MemoryHierarchy | None = None,
                       sizes_kb: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256),
                       width: int = 8) -> ExperimentResult:
    """Merge-join of sorted 1:1 operands vs operand size (Figure 7b)."""
    hierarchy = hierarchy or origin2000_scaled()
    model = CostModel(hierarchy)
    result = ExperimentResult(
        experiment_id="F7b", title="Merge-Join", x_name="||U||=||V||",
    )
    for size_kb in sizes_kb:
        n = size_kb * KB // width
        db = Database(hierarchy)
        left = db.create_column("U", sorted_ints(n), width=width)
        right = db.create_column("V", sorted_ints(n), width=width)
        db.reset()
        with db.measure() as res:
            out = merge_join(db, left, right)
        W = DataRegion("W", n=max(1, len(out.values)), w=OUTPUT_WIDTH)
        pattern = merge_join_pattern(left.region(), right.region(), W)
        estimate = model.estimate(pattern)
        result.rows.append(ExperimentRow.from_comparison(
            _size_label(size_kb * KB), res[0], estimate))
    return result


def figure7c_hashjoin(hierarchy: MemoryHierarchy | None = None,
                      sizes_kb: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256),
                      width: int = 8, seed: int = 23) -> ExperimentResult:
    """Hash-join vs operand size (Figure 7c).

    The interesting crossings are where the hash table ``H`` outgrows
    the TLB's virtual capacity (scaled C3 = 32 KB) and L2 (scaled
    C2 = 64 KB).  The model is evaluated with the hash-table region the
    implementation actually allocated (capacity, not cardinality).
    """
    hierarchy = hierarchy or origin2000_scaled()
    model = CostModel(hierarchy)
    result = ExperimentResult(
        experiment_id="F7c", title="Hash-Join", x_name="||U||=||V||",
    )
    for size_kb in sizes_kb:
        n = size_kb * KB // width
        db = Database(hierarchy)
        outer = db.create_column("U", random_permutation(n, seed=seed), width=width)
        inner = db.create_column("V", random_permutation(n, seed=seed + 1), width=width)
        db.reset()
        with db.measure() as res:
            out, table = hash_join(db, outer, inner)
        W = DataRegion("W", n=max(1, len(out.values)), w=OUTPUT_WIDTH)
        pattern = hash_join_pattern(outer.region(), inner.region(), W,
                                    H=table.region())
        estimate = model.estimate(pattern)
        result.rows.append(ExperimentRow.from_comparison(
            _size_label(size_kb * KB), res[0], estimate))
    return result


def figure7d_partition(hierarchy: MemoryHierarchy | None = None,
                       total_kb: int = 256,
                       m_values: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128,
                                                    256, 512, 1024, 2048),
                       width: int = 8, seed: int = 31) -> ExperimentResult:
    """Partitioning a fixed-size table into ``m`` clusters (Figure 7d).

    Misses jump once the ``m`` concurrently active output lines/pages
    exceed a level's line count (scaled: 8 TLB entries, 64 L1 lines,
    512 L2 lines — the paper's ``m = #`` markers).
    """
    hierarchy = hierarchy or origin2000_scaled()
    model = CostModel(hierarchy)
    n = total_kb * KB // width
    result = ExperimentResult(
        experiment_id="F7d",
        title=f"Partitioning (||U|| = {total_kb}kB)",
        x_name="partitions m",
    )
    for m in m_values:
        db = Database(hierarchy)
        col = db.create_column("U", uniform_ints(n, seed=seed), width=width)
        db.reset()
        with db.measure() as res:
            parts = partition(db, col, m)
        pattern = partition_pattern(col.region(), parts.region, m)
        estimate = model.estimate(pattern)
        result.rows.append(ExperimentRow.from_comparison(
            str(m), res[0], estimate))
    return result


def figure7e_partitioned_hashjoin(
        hierarchy: MemoryHierarchy | None = None,
        total_kb: int = 128,
        m_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
        width: int = 8, seed: int = 41) -> ExperimentResult:
    """Partitioned hash-join vs partition size (Figure 7e).

    Operand size is fixed; the partition count sweeps the per-pair hash
    table ``||H_j||`` across (scaled) C2, C3 and C1.  Only the join
    phase is measured (partitioning itself is Figure 7d).
    """
    hierarchy = hierarchy or origin2000_scaled()
    model = CostModel(hierarchy)
    n = total_kb * KB // width
    result = ExperimentResult(
        experiment_id="F7e",
        title=f"Partitioned Hash-Join (||U||=||V|| = {total_kb}kB)",
        x_name="||Hj||",
    )
    for m in m_values:
        db = Database(hierarchy)
        outer = db.create_column("U", random_permutation(n, seed=seed), width=width)
        inner = db.create_column("V", random_permutation(n, seed=seed), width=width)
        db.reset()
        outer_parts = partition(db, outer, m)
        inner_parts = partition(db, inner, m)
        db.mem.reset()  # measure the join phase from cold caches
        with db.measure() as res:
            outputs, tables = join_partitions(db, outer_parts, inner_parts)
        U_regions = tuple(c.region() for c in outer_parts)
        V_regions = tuple(c.region() for c in inner_parts)
        W_regions = tuple(
            DataRegion(f"W[{j}]", n=max(1, len(o.values)), w=OUTPUT_WIDTH)
            for j, o in enumerate(outputs)
        )
        H_regions = tuple(t.region() for t in tables)
        pattern = partitioned_hash_join_pattern(
            U_regions, V_regions, W_regions, H_regions=H_regions
        )
        estimate = model.estimate(pattern)
        table_bytes = tables[0].size if tables else 0
        result.rows.append(ExperimentRow.from_comparison(
            f"{_size_label(table_bytes)} (m={m})", res[0], estimate))
    return result
