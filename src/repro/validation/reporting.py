"""Result containers and text rendering for the validation experiments.

Each experiment produces, per x-axis point, the simulator-measured and
model-predicted misses of every cache level plus elapsed time — the same
series the paper's figures plot (points = measured, lines = predicted).
The renderer emits aligned text tables; EXPERIMENTS.md is generated from
the same structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.cost import CostEstimate
    from ..simulator.counters import CounterSnapshot

__all__ = ["ExperimentRow", "ExperimentResult", "geometric_mean_ratio"]


@dataclass(frozen=True)
class ExperimentRow:
    """One x-axis point of an experiment."""

    x_label: str
    measured: dict[str, float]      # level name -> misses (plus "time_us")
    predicted: dict[str, float]

    @classmethod
    def from_comparison(cls, x_label: str, measured: "CounterSnapshot",
                        predicted: "CostEstimate") -> "ExperimentRow":
        """One x point from a simulator counter delta and a model
        estimate — the per-level miss dicts (plus ``time_us``) every
        figure experiment tabulates, derived in one place."""
        meas = {lvl.name: float(lvl.misses) for lvl in measured.levels}
        meas["time_us"] = measured.elapsed_ns / 1e3
        pred = {lc.name: lc.misses.total for lc in predicted.levels}
        pred["time_us"] = predicted.memory_ns / 1e3
        return cls(x_label=x_label, measured=meas, predicted=pred)

    def ratio(self, key: str) -> float:
        """predicted / measured (inf-safe)."""
        meas = self.measured.get(key, 0.0)
        pred = self.predicted.get(key, 0.0)
        if meas <= 0.0:
            return float("inf") if pred > 0 else 1.0
        return pred / meas

    def to_json(self) -> dict:
        return {"x": self.x_label, "measured": dict(self.measured),
                "predicted": dict(self.predicted)}


@dataclass
class ExperimentResult:
    """A complete experiment: id, title and the series of rows."""

    experiment_id: str
    title: str
    x_name: str
    rows: list[ExperimentRow] = field(default_factory=list)

    @property
    def level_keys(self) -> list[str]:
        keys: list[str] = []
        for row in self.rows:
            for key in row.measured:
                if key not in keys:
                    keys.append(key)
        return keys

    def render(self) -> str:
        """Aligned text table: one line per x point, measured/predicted
        pairs per level."""
        keys = self.level_keys
        header = [self.x_name.ljust(14)]
        for key in keys:
            header.append(f"{key} meas".rjust(12))
            header.append(f"{key} pred".rjust(12))
        lines = [f"== {self.experiment_id}: {self.title} ==",
                 "  ".join(header)]
        for row in self.rows:
            cells = [row.x_label.ljust(14)]
            for key in keys:
                cells.append(_fmt(row.measured.get(key)).rjust(12))
                cells.append(_fmt(row.predicted.get(key)).rjust(12))
            lines.append("  ".join(cells))
        return "\n".join(lines)

    def band_errors(self, keys: "list[str] | None" = None,
                    skip_small: float = 16.0) -> dict[str, float]:
        """Worst predicted/measured band error per key (``inf``-safe
        ``|log2|`` form, as :meth:`max_ratio_error`), for every level
        key by default — the summary the bench JSON embeds."""
        out: dict[str, float] = {}
        for key in (keys if keys is not None else self.level_keys):
            out[key] = self.max_ratio_error(key, skip_small=skip_small)
        return out

    def to_json(self) -> dict:
        """The experiment as a JSON-serializable dict (the same
        serialization path query results use; see
        ``BENCH_*.json`` under ``benchmarks/results/``)."""
        return {
            "kind": "experiment",
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_name": self.x_name,
            "rows": [row.to_json() for row in self.rows],
            # strict JSON has no Infinity: degenerate bands become null
            "band_errors": {
                key: (None if error == float("inf") else error)
                for key, error in self.band_errors().items()
            },
        }

    def max_ratio_error(self, key: str, skip_small: float = 16.0) -> float:
        """Worst |log2(pred/meas)| over rows where the measurement is
        large enough to be meaningful (tiny absolute counts are noise)."""
        import math
        worst = 0.0
        for row in self.rows:
            if row.measured.get(key, 0.0) < skip_small:
                continue
            ratio = row.ratio(key)
            if ratio in (0.0, float("inf")):
                return float("inf")
            worst = max(worst, abs(math.log2(ratio)))
        return worst


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    if value >= 100:
        return f"{value:.0f}"
    return f"{value:.1f}"


def geometric_mean_ratio(rows: list[ExperimentRow], key: str,
                         skip_small: float = 16.0) -> float:
    """Geometric mean of predicted/measured over meaningful rows."""
    import math
    logs = []
    for row in rows:
        if row.measured.get(key, 0.0) < skip_small:
            continue
        ratio = row.ratio(key)
        if 0 < ratio < float("inf"):
            logs.append(math.log(ratio))
    if not logs:
        return 1.0
    return math.exp(sum(logs) / len(logs))
