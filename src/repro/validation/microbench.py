"""Figure 5 and Figure 6: micro-validation of the traversal formulas.

Figure 5 measures the impact of the used-bytes parameter ``u`` and of
item alignment on the misses of single sequential and random traversals;
Figure 6 the impact of item width ``R.w`` and region size ``||R||``.
The "measured" side issues raw traversal traces into the simulator; the
"predicted" side evaluates Eqs. 4.2-4.5.  All sizes are expressed on the
scaled Origin2000 profile (see DESIGN.md on scaling).
"""

from __future__ import annotations

import random

from ..core.misses import LevelGeometry, rtrav_count, strav_count
from ..core.regions import DataRegion
from ..hardware.hierarchy import MemoryHierarchy
from ..hardware.profiles import origin2000_scaled
from ..simulator.memory import MemorySystem
from .reporting import ExperimentResult, ExperimentRow

__all__ = [
    "measure_traversal",
    "figure5",
    "figure6",
]


def measure_traversal(hierarchy: MemoryHierarchy, n: int, w: int, u: int,
                      align: int = 0, randomized: bool = False,
                      seed: int = 7) -> dict[str, float]:
    """Run one (sequential or random) traversal trace; return per-level
    misses and elapsed time.

    ``align`` shifts the region start within a cache line (the paper's
    Figure 4/5 alignment experiments); ``-1`` aligns the first item to
    the last byte of a line.
    """
    mem = MemorySystem(hierarchy)
    line = hierarchy.levels[0].line_size
    if align == -1:
        offset = line - 1
    elif align < 0:
        raise ValueError("align must be >= 0 (or -1 for end-of-line)")
    else:
        offset = align
    base = (1 << 20) + offset
    indices = range(n)
    if randomized:
        order = list(indices)
        random.Random(seed).shuffle(order)
        indices = order
    for i in indices:
        mem.access(base + i * w, u)
    snap = mem.snapshot()
    out = {lvl.name: float(lvl.misses) for lvl in snap.levels}
    out["time_us"] = snap.elapsed_ns / 1e3
    return out


def _predict_traversal(hierarchy: MemoryHierarchy, n: int, w: int, u: int,
                       randomized: bool) -> dict[str, float]:
    region = DataRegion("R", n=n, w=w)
    out: dict[str, float] = {}
    time_ns = 0.0
    for level in hierarchy.all_levels:
        geo = LevelGeometry(level.line_size, float(level.capacity),
                            float(level.num_lines))
        if randomized:
            count = rtrav_count(region, u, geo)
            time_ns += count * level.rand_miss_latency_ns
        else:
            count = strav_count(region, u, geo)
            # The s_trav+ variant (EDO sequential latency) applies only
            # while misses hit successive lines, i.e. while the
            # untouched gap is below the line size; a line-skipping
            # stride behaves as s_trav- (Section 4.1).
            if region.w - u < level.line_size:
                time_ns += count * level.seq_miss_latency_ns
            else:
                time_ns += count * level.rand_miss_latency_ns
        out[level.name] = count
    out["time_us"] = time_ns / 1e3
    return out


def figure5(hierarchy: MemoryHierarchy | None = None,
            n: int = 1024, w: int = 256,
            u_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
            randomized: bool = False) -> ExperimentResult:
    """Misses vs bytes-used ``u`` under three alignments (Figure 5).

    For each ``u``: measured misses at alignment 0 (best case), at
    alignment -1 (worst case; last byte of an L1 line), and averaged
    over *every* alignment within the largest data-cache line — the
    paper averages over all possible alignments, and the Eq. 4.3
    alignment term is exactly that average.
    """
    hierarchy = hierarchy or origin2000_scaled()
    line = hierarchy.levels[0].line_size
    result = ExperimentResult(
        experiment_id="F5" + ("r" if randomized else "s"),
        title=("Impact of u and alignment on "
               + ("r_trav" if randomized else "s_trav")
               + f" misses (R.n={n}, R.w={w})"),
        x_name="u [bytes]",
    )
    largest_line = max(lvl.line_size for lvl in hierarchy.levels)
    sample_aligns = tuple(range(largest_line))
    for u in u_values:
        if u > w:
            continue
        aligned = measure_traversal(hierarchy, n, w, u, align=0,
                                    randomized=randomized)
        worst = measure_traversal(hierarchy, n, w, u, align=-1,
                                  randomized=randomized)
        averages: dict[str, float] = {}
        for a in sample_aligns:
            sample = measure_traversal(hierarchy, n, w, u, align=a,
                                       randomized=randomized)
            for key, value in sample.items():
                averages[key] = averages.get(key, 0.0) + value / len(sample_aligns)
        predicted = _predict_traversal(hierarchy, n, w, u, randomized)
        measured = {
            "L1 avg": averages["L1"],
            "L1 align0": aligned["L1"],
            "L1 align-1": worst["L1"],
            "L2 avg": averages["L2"],
            "time_us": averages["time_us"],
        }
        pred = {
            "L1 avg": predicted["L1"],
            "L1 align0": predicted["L1"],
            "L1 align-1": predicted["L1"],
            "L2 avg": predicted["L2"],
            "time_us": predicted["time_us"],
        }
        result.rows.append(ExperimentRow(
            x_label=str(u), measured=measured, predicted=pred,
        ))
    return result


def figure6(hierarchy: MemoryHierarchy | None = None,
            level: str = "L1",
            sizes: tuple[int, ...] | None = None,
            widths: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256),
            randomized: bool = False) -> ExperimentResult:
    """Misses vs item width for several region sizes (Figure 6).

    Paper panels: (a) ``s_trav`` L1, (b) ``s_trav`` L2, (c) ``r_trav``
    L1, (d) ``r_trav`` L2 — select with ``level`` and ``randomized``.
    Region sizes default to a bracket around the chosen level's capacity
    (the paper uses 16-64 KB around C1 and 2-16 MB around C2).
    """
    hierarchy = hierarchy or origin2000_scaled()
    cap = hierarchy.level(level).capacity
    if sizes is None:
        sizes = (cap // 2, (3 * cap) // 4, cap, (3 * cap) // 2, 2 * cap)
    result = ExperimentResult(
        experiment_id="F6" + ("r" if randomized else "s") + level,
        title=(f"Impact of R.w and ||R|| on {level} misses of "
               + ("r_trav" if randomized else "s_trav")),
        x_name="R.w [bytes]",
    )
    for w in widths:
        measured: dict[str, float] = {}
        predicted: dict[str, float] = {}
        for size in sizes:
            n = max(1, size // w)
            meas = measure_traversal(hierarchy, n, w, u=w,
                                     randomized=randomized)
            pred = _predict_traversal(hierarchy, n, w, u=w,
                                      randomized=randomized)
            key = _size_label(size)
            measured[key] = meas[level]
            predicted[key] = pred[level]
        result.rows.append(ExperimentRow(
            x_label=str(w), measured=measured, predicted=predicted,
        ))
    return result


def _size_label(size: int) -> str:
    if size >= 1024 * 1024:
        return f"{size / (1024 * 1024):.0f}MB"
    if size >= 1024:
        return f"{size / 1024:.0f}kB"
    return f"{size}B"
