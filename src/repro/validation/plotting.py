"""ASCII log-scale plots of experiment series.

The paper's figures are log-log plots of measured points against
predicted lines.  For terminal-friendly reproduction output, this
module renders an :class:`~repro.validation.ExperimentResult` as an
ASCII chart: ``o`` marks measured values, ``-`` predicted values, ``*``
where they coincide at character resolution.
"""

from __future__ import annotations

import math

from .reporting import ExperimentResult

__all__ = ["ascii_plot"]


def ascii_plot(result: ExperimentResult, key: str,
               height: int = 16, log: bool = True) -> str:
    """Plot one series (e.g. ``"L2"`` or ``"time_us"``) of an experiment.

    X axis: the experiment's rows in order; Y axis: misses/time,
    log-scaled by default (like the paper's figures).
    """
    rows = [r for r in result.rows
            if key in r.measured or key in r.predicted]
    if not rows:
        raise ValueError(f"series {key!r} not present in {result.experiment_id}")

    def transform(value: float) -> float:
        if not log:
            return value
        return math.log10(max(value, 0.1))

    measured = [transform(r.measured.get(key, 0.0)) for r in rows]
    predicted = [transform(r.predicted.get(key, 0.0)) for r in rows]
    low = min(measured + predicted)
    high = max(measured + predicted)
    span = (high - low) or 1.0

    def row_of(value: float) -> int:
        return round((value - low) / span * (height - 1))

    # Canvas: one column per x point (3 chars wide for readability).
    width = len(rows)
    canvas = [[" "] * width for _ in range(height)]
    for x, (m, p) in enumerate(zip(measured, predicted)):
        pm, pp = row_of(m), row_of(p)
        canvas[pp][x] = "-"
        canvas[pm][x] = "*" if pm == pp else "o"

    lines = [f"{result.experiment_id} / {key}   "
             f"(o = measured, - = predicted, * = both; "
             f"{'log10' if log else 'linear'} scale)"]
    for y in range(height - 1, -1, -1):
        label = low + span * y / (height - 1)
        value = 10 ** label if log else label
        lines.append(f"{_fmt(value):>9} |" + "  ".join(canvas[y]))
    lines.append(" " * 9 + " +" + "-" * (3 * width))
    lines.append(" " * 11 + "  ".join(_short(r.x_label) for r in rows))
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e3:
        return f"{value / 1e3:.0f}k"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.1f}"


def _short(label: str) -> str:
    return label.split(" ")[0][:5].ljust(5)[:1]
