"""Pure-CPU cost calibration (paper Eq. 6.1).

The paper's total time is ``T = T_mem + T_cpu``, where ``T_cpu`` is
"calibrated for each algorithm in an in-cache setting, i.e., without
memory cost" (Section 6.1).  In this reproduction the simulated clock
only advances on misses, so an in-cache run literally measures zero —
the ``T_cpu`` of the *simulated* world.  To still exercise the Eq. 6.1
workflow we model CPU work the way the paper's optimizer constants do:
cycles per simulated access, calibrated from an in-cache run's access
count.

``calibrate_cpu_cost`` runs an operator on an input sized to fit the
smallest cache, counts its accesses per input item, and returns a
per-item cycle estimate that :meth:`CpuCostModel.cpu_ns` extrapolates to
other input sizes — exactly how the paper turns one in-cache
measurement into the CPU term of every prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..db.context import Database
from ..hardware.hierarchy import MemoryHierarchy

__all__ = ["CpuCostModel", "calibrate_cpu_cost"]

#: Assumed pure-CPU work per simulated memory access, in cycles.  The
#: absolute value only scales the CPU term; the *shape* (accesses per
#: item) is what calibration establishes per algorithm.
CYCLES_PER_ACCESS = 4.0


@dataclass(frozen=True)
class CpuCostModel:
    """Calibrated CPU cost of one algorithm: ``T_cpu(n)`` in ns."""

    algorithm: str
    accesses_per_item: float
    cycles_per_access: float
    cpu_speed_mhz: float

    def cpu_cycles(self, n_items: int) -> float:
        return n_items * self.accesses_per_item * self.cycles_per_access

    def cpu_ns(self, n_items: int) -> float:
        """The Eq. 6.1 ``T_cpu`` term for an input of ``n_items``."""
        return self.cpu_cycles(n_items) * 1e3 / self.cpu_speed_mhz


def calibrate_cpu_cost(hierarchy: MemoryHierarchy,
                       algorithm: str,
                       run: Callable[[Database, int], None],
                       calibration_items: int | None = None,
                       cycles_per_access: float = CYCLES_PER_ACCESS) -> CpuCostModel:
    """Calibrate an algorithm's CPU cost from an in-cache run.

    ``run(db, n)`` must execute the algorithm on an input of ``n``
    items inside the given database context.  ``calibration_items``
    defaults to an input filling half the smallest cache (guaranteeing
    the in-cache setting).
    """
    smallest = min(level.capacity for level in hierarchy.all_levels)
    n = calibration_items or max(8, smallest // 2 // 8)
    db = Database(hierarchy)
    before = db.mem.accesses
    run(db, n)
    accesses = db.mem.accesses - before
    if accesses <= 0:
        raise ValueError(f"{algorithm}: calibration run performed no accesses")
    return CpuCostModel(
        algorithm=algorithm,
        accesses_per_item=accesses / n,
        cycles_per_access=cycles_per_access,
        cpu_speed_mhz=hierarchy.cpu_speed_mhz,
    )
