"""Schema for the machine-readable benchmark results (``BENCH_*.json``).

Every benchmark that reports model-vs-measured numbers can persist them
as ``benchmarks/results/BENCH_<name>.json`` via the shared payload
builders below — one flat, diffable shape for the whole perf
trajectory:

* ``bench`` — the benchmark name,
* ``sizes`` — the x-axis points the bench swept,
* ``series`` — per point: predicted vs measured memory time (ns) and
  their relative ``error``, optionally with the full typed result
  (:meth:`QueryResult.to_json <repro.query.QueryResult.to_json>`) or
  experiment (:meth:`ExperimentResult.to_json
  <repro.validation.ExperimentResult.to_json>`) attached as ``detail``,
* ``band`` — the tolerance the bench asserts and the worst observed
  error,
* ``known_gaps`` (optional) — rows the bench *declares* out of band on
  purpose, each with the pinned error and the reason (typically a
  pointer to ``tests/test_known_gaps.py`` or a ROADMAP item).
  Declared rows are excluded from ``band.max_error``, so a bench can
  band its healthy rows tightly instead of inflating the tolerance to
  cover a documented model gap.

Validation is hand-rolled (the toolchain carries no ``jsonschema``):
:func:`validate_bench_payload` returns a list of human-readable
problems, empty when the payload conforms.  CI runs
``benchmarks/schema_check.py``, which applies it to every emitted file.
"""

from __future__ import annotations

import json
import pathlib

__all__ = [
    "validate_bench_payload",
    "validate_bench_file",
    "validate_results_dir",
    "payload_from_results",
    "payload_from_experiment",
    "payload_from_serving",
]


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_bench_payload(data) -> list[str]:
    """All schema violations of one bench payload (empty == valid)."""
    if not isinstance(data, dict):
        return ["payload is not a JSON object"]
    problems: list[str] = []
    if data.get("kind") != "bench":
        problems.append(f"kind must be 'bench', got {data.get('kind')!r}")
    if not isinstance(data.get("bench"), str) or not data.get("bench"):
        problems.append("bench must be a non-empty string")
    sizes = data.get("sizes")
    if not isinstance(sizes, list) or not sizes:
        problems.append("sizes must be a non-empty list")
    elif not all(_is_number(s) or isinstance(s, str) for s in sizes):
        problems.append("sizes entries must be numbers or labels")
    series = data.get("series")
    if not isinstance(series, list) or not series:
        problems.append("series must be a non-empty list")
        series = []
    for index, entry in enumerate(series):
        if not isinstance(entry, dict):
            problems.append(f"series[{index}] is not an object")
            continue
        if "size" not in entry:
            problems.append(f"series[{index}] lacks 'size'")
        for key in ("predicted_ns", "measured_ns", "error"):
            value = entry.get(key)
            if not _is_number(value) or value < 0:
                problems.append(
                    f"series[{index}].{key} must be a non-negative "
                    f"number, got {value!r}")
    if isinstance(series, list) and isinstance(sizes, list) \
            and series and sizes and len(series) != len(sizes):
        problems.append(
            f"series has {len(series)} entries for {len(sizes)} sizes")
    band = data.get("band")
    if not isinstance(band, dict):
        problems.append("band must be an object")
    else:
        if not _is_number(band.get("tolerance")) or band["tolerance"] <= 0:
            problems.append("band.tolerance must be a positive number")
        max_error = band.get("max_error")
        if max_error is not None and not _is_number(max_error):
            problems.append("band.max_error must be a number or null")
    gaps = data.get("known_gaps")
    if gaps is not None:
        if not isinstance(gaps, list):
            problems.append("known_gaps must be a list")
        else:
            for index, gap in enumerate(gaps):
                where = f"known_gaps[{index}]"
                if not isinstance(gap, dict):
                    problems.append(f"{where} is not an object")
                    continue
                if "size" not in gap:
                    problems.append(f"{where} lacks 'size'")
                if not _is_number(gap.get("error")) or gap["error"] < 0:
                    problems.append(
                        f"{where}.error must be a non-negative number")
                if not isinstance(gap.get("reason"), str) \
                        or not gap["reason"]:
                    problems.append(
                        f"{where}.reason must be a non-empty string")
    return problems


def validate_bench_file(path) -> list[str]:
    """Schema violations of one ``BENCH_*.json`` file."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    return validate_bench_payload(data)


def validate_results_dir(directory) -> dict[str, list[str]]:
    """Validate every ``BENCH_*.json`` under ``directory``; returns
    ``{file name: problems}`` for each emitted file (all values empty
    when everything conforms)."""
    directory = pathlib.Path(directory)
    return {
        path.name: validate_bench_file(path)
        for path in sorted(directory.glob("BENCH_*.json"))
    }


# ----------------------------------------------------------------------
# payload builders
# ----------------------------------------------------------------------

def payload_from_results(name: str, entries, tolerance: float,
                         include_results: bool = True,
                         known_gaps=None) -> dict:
    """A bench payload from typed measured results.

    ``entries`` is a list of ``(size, MeasuredResult)`` pairs
    (:class:`repro.query.MeasuredResult`); each series point embeds the
    full result JSON (the same serialization path queries use) unless
    ``include_results`` is false.

    ``known_gaps`` maps sizes to reasons: rows whose size is declared
    there are recorded under the payload's ``known_gaps`` (with their
    observed error) and *excluded* from ``band.max_error`` — the
    declared, pinned way to keep a documented model gap out of the
    bench's accuracy band."""
    known_gaps = dict(known_gaps or {})
    series, gaps = [], []
    for size, measured in entries:
        point = {
            "size": size,
            "predicted_ns": measured.predicted_ns,
            "measured_ns": measured.measured_ns,
            "error": measured.error,
        }
        if include_results:
            point["result"] = measured.to_json()
        series.append(point)
        if size in known_gaps:
            gaps.append({"size": size, "error": measured.error,
                         "reason": known_gaps[size]})
    errors = [point["error"] for point in series
              if point["size"] not in known_gaps]
    payload = {
        "kind": "bench",
        "bench": name,
        "sizes": [size for size, _ in entries],
        "series": series,
        "band": {"tolerance": tolerance,
                 "max_error": max(errors) if errors else None},
    }
    if gaps:
        payload["known_gaps"] = gaps
    return payload


def payload_from_serving(name: str, entries, tolerance: float,
                         include_responses: bool = False) -> dict:
    """A bench payload from serving runs.

    ``entries`` is a list of ``(size, ServingReport)`` pairs
    (:class:`repro.server.ServingReport`) — ``size`` is whatever the
    bench swept (client count, arrival rate, policy label).  The series
    carries the ⊙-predicted vs replay-measured busy time (summed batch
    makespans) with the report's mean co-run contention error, plus the
    serving headline (sustained q/s, latency percentiles, shed count)
    per point.  Responses are bulky and off by default; batches always
    ride along (they are the predicted-vs-measured evidence)."""
    series = []
    for size, report in entries:
        detail = report.to_json()
        if not include_responses:
            detail.pop("responses")
        series.append({
            "size": size,
            "predicted_ns": report.predicted_makespan_ns,
            "measured_ns": report.measured_makespan_ns,
            "error": report.mean_contention_error,
            "sustained_qps": report.sustained_qps,
            "p50_latency_ns": report.p50_latency_ns,
            "p95_latency_ns": report.p95_latency_ns,
            "p99_latency_ns": report.p99_latency_ns,
            "completed": len(report.completed),
            "shed": len(report.shed),
            "detail": detail,
        })
    errors = [point["error"] for point in series]
    return {
        "kind": "bench",
        "bench": name,
        "sizes": [size for size, _ in entries],
        "series": series,
        "band": {"tolerance": tolerance,
                 "max_error": max(errors) if errors else None},
    }


def payload_from_experiment(name: str, result, tolerance: float) -> dict:
    """A bench payload from an
    :class:`~repro.validation.ExperimentResult` (one series point per
    row, timed via the rows' ``time_us`` keys; the full experiment —
    per-level misses included — rides along as ``detail``)."""
    series = []
    for row in result.rows:
        predicted = row.predicted.get("time_us", 0.0) * 1e3
        measured = row.measured.get("time_us", 0.0) * 1e3
        error = (abs(predicted - measured) / measured
                 if measured > 0 else 0.0)
        series.append({
            "size": row.x_label,
            "predicted_ns": predicted,
            "measured_ns": measured,
            "error": error,
        })
    errors = [point["error"] for point in series]
    return {
        "kind": "bench",
        "bench": name,
        "sizes": [row.x_label for row in result.rows],
        "series": series,
        "band": {"tolerance": tolerance,
                 "max_error": max(errors) if errors else None},
        "detail": result.to_json(),
    }
