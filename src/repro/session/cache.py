"""Profile-keyed plan cache and prepared statements.

Compiling a query — enumerating join orders and implementations and
pricing every candidate against the hierarchy profile — costs orders of
magnitude more than looking a plan up, and the paper's premise is that
one calibrated profile makes the chosen plan *deterministic*: the same
logical tree on the same profile always compiles to the same physical
plan.  That determinism is exactly what makes plans cacheable, keyed by
(profile fingerprint, planner configuration, canonicalized logical
tree).  Recalibrating the machine changes the fingerprint, which retires
every cached plan without any explicit invalidation walk.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Hashable

from ..db.column import Column
from ..query.logical import LogicalOp
from ..query.observe import (
    Explanation,
    MeasuredResult,
    QueryResult,
    capture_measured,
    execute_result,
)
from ..query.optimizer import PlannedQuery

if TYPE_CHECKING:
    from .session import Session

__all__ = ["PlanCache", "PreparedStatement"]


class PlanCache:
    """An LRU cache of compiled :class:`~repro.query.PlannedQuery`
    objects.

    Entries hold the compiled plans, which in turn keep every referenced
    column and predicate callable alive — so the ``id()``-based tokens
    inside canonical keys (:func:`repro.query.logical.callable_key`)
    stay unambiguous for exactly as long as their entry lives.

    The cache is thread-safe: spawned client sessions
    (:meth:`~repro.session.Session.spawn`) share one instance across
    worker threads, so every entry/counter mutation happens under one
    lock, and :meth:`get_or_compute` additionally gates compilation
    per key — when several threads miss the same key at once, exactly
    one runs the compile while the rest wait for its result, so
    concurrent clients never duplicate (or lose) a compilation.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, PlannedQuery] = OrderedDict()
        self._lock = threading.Lock()
        #: Per-key in-flight compile gates (key -> Event set when the
        #: owning thread has published its result).
        self._inflight: dict[Hashable, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        #: Event callbacks ``fn(event, count)`` with event one of
        #: ``"hit"`` / ``"miss"`` / ``"retire"`` — how a metrics
        #: registry watches the cache without the cache knowing about
        #: metrics.  Always notified *outside* the cache lock.
        self._observers: list[Callable[[str, int], None]] = []

    # ------------------------------------------------------------------
    def attach_observer(self, observer: Callable[[str, int], None]
                        ) -> None:
        """Subscribe to cache events (``"hit"``/``"miss"``/``"retire"``,
        each with a count).  Callbacks run outside the cache lock, on
        whichever thread triggered the event — they must be
        thread-safe and must not call back into the cache."""
        self._observers.append(observer)

    def _notify(self, event: str, count: int = 1) -> None:
        for observer in self._observers:
            observer(event, count)

    def get(self, key: Hashable) -> PlannedQuery | None:
        """The cached plan for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                value = None
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        self._notify("hit" if value is not None else "miss")
        return value

    def put(self, key: Hashable, value: PlannedQuery) -> None:
        """Store a compiled plan, evicting the least recently used
        entry beyond ``max_entries``."""
        with self._lock:
            retired = self._put_locked(key, value)
        if retired:
            self._notify("retire", retired)

    def _put_locked(self, key: Hashable, value: PlannedQuery) -> int:
        """Insert under the held lock; returns how many LRU entries
        were retired to make room (callers notify outside the lock)."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        retired = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            retired += 1
        return retired

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], PlannedQuery]
                       ) -> tuple[PlannedQuery, bool]:
        """The cached plan for ``key``, compiling it via ``compute``
        on a miss; returns ``(plan, was_hit)``.

        Concurrency contract: for each key at most one thread runs
        ``compute`` at a time — contenders block on the owner's gate
        and then re-read the published entry (counted as a hit: they
        were served a plan they did not compile).  If the owner's
        ``compute`` raises, its waiters retry, so a failed compile
        never wedges the key.
        """
        while True:
            with self._lock:
                try:
                    value = self._entries[key]
                    self._entries.move_to_end(key)
                    self.hits += 1
                except KeyError:
                    pass
                else:
                    break  # hit: notify after releasing the lock
                gate = self._inflight.get(key)
                if gate is None:
                    gate = threading.Event()
                    self._inflight[key] = gate
                    owner = True
                else:
                    owner = False
            if not owner:
                gate.wait()
                continue  # re-read: owner published (or failed)
            try:
                value = compute()
            except BaseException:
                with self._lock:
                    del self._inflight[key]
                gate.set()
                raise
            with self._lock:
                self.misses += 1
                retired = self._put_locked(key, value)
                del self._inflight[key]
            gate.set()
            self._notify("miss")
            if retired:
                self._notify("retire", retired)
            return value, False
        self._notify("hit")
        return value, True

    def clear(self) -> int:
        """Drop every entry, returning how many were retired.
        Observers see one ``"retire"`` event with the count — the
        explicit retirement a profile swap performs, as opposed to the
        silent key mismatch that merely strands old-profile entries."""
        with self._lock:
            retired = len(self._entries)
            self._entries.clear()
        if retired:
            self._notify("retire", retired)
        return retired

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries),
                    "hits": self.hits, "misses": self.misses}


class PreparedStatement:
    """A compiled query handle bound to a :class:`Session`.

    Holds the logical tree and its compiled plan; :meth:`execute`,
    :meth:`execute_measured` and :meth:`explain` re-validate the
    session's profile fingerprint first and transparently recompile
    (through the session's plan cache) if the profile changed since
    compilation — a prepared statement never runs a plan priced for a
    profile the session no longer uses.
    """

    def __init__(self, session: "Session", logical: LogicalOp,
                 planned: PlannedQuery, fingerprint: str) -> None:
        self.session = session
        self.logical = logical
        self._planned = planned
        self._fingerprint = fingerprint
        self._recompiled = False

    # ------------------------------------------------------------------
    @property
    def planned(self) -> PlannedQuery:
        """The compiled candidate set (revalidated against the current
        profile)."""
        return self._revalidate()

    @property
    def plan(self):
        """The chosen physical :class:`~repro.query.QueryPlan`."""
        return self._revalidate().plan

    @property
    def fingerprint(self) -> str:
        """Profile fingerprint the current compilation is valid for."""
        return self._fingerprint

    def _revalidate(self) -> PlannedQuery:
        current = self.session.fingerprint
        if current != self._fingerprint:
            self._planned = self.session.compile(self.logical)
            self._fingerprint = current
            self._recompiled = True
        return self._planned

    def _reused(self) -> bool:
        """Whether the last revalidation reused the existing
        compilation (the prepared analogue of a plan-cache hit)."""
        reused = not getattr(self, "_recompiled", False)
        self._recompiled = False
        return reused

    # ------------------------------------------------------------------
    def explain_query(self) -> Explanation:
        """The chosen plan's typed
        :class:`~repro.query.Explanation` (signature included)."""
        planned = self._revalidate()
        return planned.explanation(self.session.model,
                                   pipeline=self.session.config.pipeline,
                                   cache_hit=self._reused())

    def explain(self) -> str:
        """Per-operator cost/pattern breakdown of the chosen plan.

        .. deprecated:: 1.2
           Returns an opaque string; use :meth:`explain_query` for the
           typed tree (``explain_query().to_text()`` renders it —
           note the typed path also reports reuse provenance).
        """
        warnings.warn(
            "PreparedStatement.explain() returning a bare string is "
            "deprecated; use explain_query() for the typed Explanation",
            DeprecationWarning, stacklevel=2)
        planned = self._revalidate()
        return planned.plan.explain(
            self.session.model, pipeline=self.session.config.pipeline)

    def summary(self, limit: int = 8) -> str:
        """The enumerated candidates, cheapest first."""
        return self._revalidate().summary(limit)

    def execute(self, restore: bool = False) -> Column:
        """Run the chosen plan against the session's database
        (``restore=True`` puts registered columns back afterwards — see
        :class:`~repro.session.Session` on in-place execution)."""
        plan = self._revalidate().plan
        session = self.session
        with session._restoring(restore), \
                session.db.execution_scope(session.config.execution):
            return session.db.execute(plan)

    def run(self, restore: bool = False) -> QueryResult:
        """Run the chosen plan, returning a typed
        :class:`~repro.query.QueryResult` (column, explanation,
        reuse provenance, wall/simulated time)."""
        planned = self._revalidate()
        session = self.session
        explanation = planned.explanation(session.model,
                                          pipeline=session.config.pipeline,
                                          cache_hit=self._reused())
        with session.db.execution_scope(session.config.execution):
            return execute_result(session.db, planned.plan, explanation,
                                  restoring=session._restoring(restore))

    def execute_measured(self, cold: bool = True, restore: bool = False
                         ) -> MeasuredResult:
        """Run and measure the chosen plan, returning a typed
        :class:`~repro.query.MeasuredResult` with per-operator
        predicted-vs-measured attribution.

        .. deprecated:: 1.2
           This method used to return a bare
           ``(Column, CounterSnapshot)`` tuple; unpacking still works
           for one release (with a :class:`DeprecationWarning`) —
           migrate to ``result.column`` / ``result.counters``.
        """
        planned = self._revalidate()
        explanation = planned.explanation(
            self.session.model, pipeline=self.session.config.pipeline,
            cache_hit=self._reused())
        with self.session._restoring(restore), \
                self.session.db.execution_scope(
                    self.session.config.execution):
            return capture_measured(self.session.db, planned.plan,
                                    explanation, cold=cold)

    def __repr__(self) -> str:
        return (f"PreparedStatement({self._planned.best.signature}, "
                f"profile={self._fingerprint})")
