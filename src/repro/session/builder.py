"""Fluent query builder lowering to the logical algebra.

A :class:`QueryBuilder` wraps a :class:`~repro.query.logical.LogicalOp`
tree and grows it method by method::

    s.table("orders").filter(even, selectivity=0.5) \\
     .join(s.table("customers"), match=1.0) \\
     .group_by(groups=64).agg("count")

Builders are immutable: every composition method returns a *new*
builder, so partial queries can be shared and extended independently.
The builder adds no semantics of its own — :meth:`QueryBuilder.logical`
is a plain algebra tree, byte-identical (same classes, same hints, same
canonical key) to one assembled by hand, so both paths compile to the
same physical plan.  Terminal methods (:meth:`~QueryBuilder.prepare`,
:meth:`~QueryBuilder.execute`, :meth:`~QueryBuilder.explain`) delegate
to the owning :class:`~repro.session.Session`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..query.logical import Aggregate, Filter, Join, LogicalOp, Sort

if TYPE_CHECKING:
    from ..db.column import Column
    from .session import Session

__all__ = ["QueryBuilder", "GroupedBuilder"]


class QueryBuilder:
    """An immutable fluent wrapper around a logical tree, bound to a
    session."""

    def __init__(self, session: "Session", logical: LogicalOp) -> None:
        self.session = session
        self._logical = logical

    def _wrap(self, logical: LogicalOp) -> "QueryBuilder":
        return QueryBuilder(self.session, logical)

    # -- composition ---------------------------------------------------
    def filter(self, predicate: Callable | str,
               selectivity: float = 0.5) -> "QueryBuilder":
        """Select items satisfying ``predicate`` (a callable or the name
        of a session-registered predicate); ``selectivity`` is the
        oracle's output fraction."""
        return self._wrap(Filter(self._logical,
                                 self.session.function(predicate),
                                 selectivity=selectivity))

    def join(self, other: "QueryBuilder | LogicalOp | str",
             match: float = 1.0) -> "QueryBuilder":
        """Equi-join with ``other`` (a builder, a logical tree, a
        registered table name, or query text); ``match`` is the oracle's
        match fraction."""
        return self._wrap(Join(self._logical,
                               self.session.as_logical(other),
                               match_fraction=match))

    def sort(self) -> "QueryBuilder":
        """Request a sorted result (ORDER BY)."""
        return self._wrap(Sort(self._logical))

    def group_by(self, groups: int = 64,
                 key: Callable | str | None = None) -> "GroupedBuilder":
        """Group by value (or by ``key``, a callable or registered
        function name, for positional grouping); ``groups`` is the
        oracle's group count.  Returns the grouped stage — pick the
        aggregate with :meth:`GroupedBuilder.agg` or
        :meth:`GroupedBuilder.count`."""
        return GroupedBuilder(self.session, self._logical, groups,
                              self.session.function(key))

    def aggregate(self, groups: int = 64,
                  key: Callable | str | None = None) -> "QueryBuilder":
        """Shortcut for ``group_by(groups, key).count()``."""
        return self.group_by(groups, key).count()

    # -- terminals -----------------------------------------------------
    def logical(self) -> LogicalOp:
        """The underlying logical algebra tree."""
        return self._logical

    def canonical_key(self) -> str:
        """Canonical tree rendering (the plan-cache key component)."""
        return self._logical.canonical_key()

    def describe(self) -> str:
        """The logical tree with oracle cardinalities, one node per
        line."""
        return self._logical.describe()

    def prepare(self):
        """Compile (through the session's plan cache) into a
        :class:`~repro.session.PreparedStatement`."""
        return self.session.prepare(self)

    def explain_query(self):
        """The chosen plan's typed
        :class:`~repro.query.Explanation`."""
        return self.session.explain_query(self)

    def explain(self) -> str:
        """Per-operator cost/pattern breakdown of the chosen plan.

        .. deprecated:: 1.2
           Use :meth:`explain_query` (typed; ``.to_text()`` renders)."""
        return self.session.explain(self)

    def execute(self, restore: bool = False) -> "Column":
        """Compile (cached) and run the chosen plan."""
        return self.session.execute(self, restore=restore)

    def run(self, restore: bool = False):
        """Compile (cached) and run, returning a typed
        :class:`~repro.query.QueryResult`."""
        return self.session.run(self, restore=restore)

    def execute_measured(self, cold: bool = True, restore: bool = False):
        """Compile (cached), run, and measure; returns a typed
        :class:`~repro.query.MeasuredResult` (legacy
        ``(result, counters)`` unpacking still supported)."""
        return self.session.execute_measured(self, cold=cold,
                                             restore=restore)

    def __repr__(self) -> str:
        return f"QueryBuilder({self._logical.label()})"


class GroupedBuilder:
    """The ``group_by(...)`` stage: choose the aggregate to compute.

    The engine's aggregation operator is group-count, so ``"count"`` is
    the one supported aggregate; the stage exists so the fluent surface
    reads like the query it builds (``.group_by(...).agg("count")``) and
    can grow with the engine.
    """

    def __init__(self, session: "Session", logical: LogicalOp,
                 groups: int, key_of: Callable | None) -> None:
        self.session = session
        self._logical = logical
        self._groups = groups
        self._key_of = key_of

    def agg(self, kind: str = "count") -> QueryBuilder:
        """Finalize the grouping with aggregate ``kind``."""
        if kind != "count":
            raise ValueError(
                f"unsupported aggregate {kind!r}: the engine computes "
                "group counts")
        return QueryBuilder(
            self.session,
            Aggregate(self._logical, groups=self._groups,
                      key_of=self._key_of))

    def count(self) -> QueryBuilder:
        """Finalize as a group-count."""
        return self.agg("count")
