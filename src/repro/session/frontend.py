"""Text frontend: a small query language over the logical algebra.

The pattern language is executable as text (:mod:`repro.core.parser`);
this module extends the same approach — a tokenizer and a recursive-
descent parser resolving names against registries — to *queries*, so a
query can live as a string in a configuration file or benchmark and
still compile through the optimizer::

    parse_query("aggregate(join(filter(orders, even, sel=0.5), "
                "customers), groups=64)",
                tables={"orders": ..., "customers": ...},
                functions={"even": lambda v: v % 2 == 0})

Grammar (whitespace-insensitive)::

    query  := expr
    expr   := call | NAME            -- a bare NAME is a registered table
    call   := op "(" args ")"
    op     := filter | join | sort | aggregate (aliases: agg, group,
              group_by)

Operator signatures mirror the logical algebra's oracle hints:

* ``filter(child, pred [, sel=S])`` — ``pred`` names a registered
  predicate; ``sel`` is the oracle selectivity (default 0.5).
* ``join(left, right [, match=M])`` — oracle match fraction (default 1).
* ``sort(child)`` — request a sorted result (ORDER BY).
* ``aggregate(child [, groups=G] [, key=K])`` — group-count with oracle
  group count ``G`` (default 64); ``key`` names a registered key
  extractor (positional grouping, see
  :class:`repro.query.logical.Aggregate`).
"""

from __future__ import annotations

import re
from typing import Callable, Mapping

from ..query.logical import Aggregate, Filter, Join, LogicalOp, Sort

__all__ = ["parse_query", "QuerySyntaxError"]


class QuerySyntaxError(ValueError):
    """Raised for malformed query text or unknown names."""


_TOKEN = re.compile(r"""
    (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<equals>=)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<space>\s+)
""", re.VERBOSE)

_AGGREGATE_NAMES = ("aggregate", "agg", "group", "group_by")


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match:
            raise QuerySyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind != "space":
            tokens.append((kind, match.group()))
    tokens.append(("end", ""))
    return tokens


class _QueryParser:
    def __init__(self, tokens: list[tuple[str, str]],
                 tables: Mapping[str, LogicalOp],
                 functions: Mapping[str, Callable]) -> None:
        self.tokens = tokens
        self.tables = tables
        self.functions = functions
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def take(self, kind: str) -> str:
        actual_kind, value = self.tokens[self.pos]
        if actual_kind != kind:
            raise QuerySyntaxError(
                f"expected {kind}, found {value!r} (token {self.pos})")
        self.pos += 1
        return value

    # ------------------------------------------------------------------
    def parse(self) -> LogicalOp:
        node = self.expr()
        if self.peek()[0] != "end":
            raise QuerySyntaxError(
                f"trailing input from token {self.pos}: {self.peek()[1]!r}")
        return node

    def expr(self) -> LogicalOp:
        kind, value = self.peek()
        if kind != "word":
            raise QuerySyntaxError(
                f"expected a table or operator, found {value!r}")
        name = self.take("word")
        if self.peek()[0] == "lpar":
            return self.call(name)
        return self.table(name)

    def call(self, name: str) -> LogicalOp:
        op = name.lower()
        self.take("lpar")
        if op == "filter":
            node = self._filter()
        elif op == "join":
            node = self._join()
        elif op == "sort":
            node = Sort(self.expr())
        elif op in _AGGREGATE_NAMES:
            node = self._aggregate()
        else:
            raise QuerySyntaxError(
                f"unknown operator {name!r} (expected filter, join, sort "
                f"or aggregate)")
        self.take("rpar")
        return node

    # ------------------------------------------------------------------
    def _filter(self) -> LogicalOp:
        child = self.expr()
        self.take("comma")
        predicate = self.function(self.take("word"))
        kwargs = self.keywords({"sel", "selectivity"})
        sel = kwargs.get("sel", kwargs.get("selectivity", "0.5"))
        return Filter(child, predicate, selectivity=self.number(sel, "sel"))

    def _join(self) -> LogicalOp:
        left = self.expr()
        self.take("comma")
        right = self.expr()
        kwargs = self.keywords({"match", "match_fraction"})
        match = kwargs.get("match", kwargs.get("match_fraction", "1.0"))
        return Join(left, right,
                    match_fraction=self.number(match, "match"))

    def _aggregate(self) -> LogicalOp:
        child = self.expr()
        kwargs = self.keywords({"groups", "key"})
        groups = int(self.number(kwargs.get("groups", "64"), "groups"))
        key_of = self.function(kwargs["key"]) if "key" in kwargs else None
        return Aggregate(child, groups=groups, key_of=key_of)

    # ------------------------------------------------------------------
    def keywords(self, allowed: set[str]) -> dict[str, str]:
        """Trailing ``name=value`` arguments (values stay raw text)."""
        kwargs: dict[str, str] = {}
        while self.peek()[0] == "comma":
            self.take("comma")
            name = self.take("word")
            if name not in allowed:
                raise QuerySyntaxError(
                    f"unknown keyword {name!r} (expected one of "
                    f"{', '.join(sorted(allowed))})")
            self.take("equals")
            kind, value = self.peek()
            if kind not in ("number", "word"):
                raise QuerySyntaxError(
                    f"expected a value for {name}=, found {value!r}")
            kwargs[name] = self.take(kind)
        return kwargs

    def number(self, token: str, what: str) -> float:
        try:
            return float(token)
        except ValueError:
            raise QuerySyntaxError(
                f"expected a number for {what}, found {token!r}") from None

    def _lookup(self, registry: Mapping, name: str, what: str):
        try:
            return registry[name]
        except KeyError:
            known = ", ".join(sorted(registry)) or "none registered"
            raise QuerySyntaxError(
                f"unknown {what} {name!r} (known: {known})") from None

    def table(self, name: str) -> LogicalOp:
        return self._lookup(self.tables, name, "table")

    def function(self, name: str) -> Callable:
        return self._lookup(self.functions, name, "predicate/key function")


def parse_query(text: str, tables: Mapping[str, LogicalOp],
                functions: Mapping[str, Callable] | None = None) -> LogicalOp:
    """Parse query text into a logical tree against named tables and
    predicate/key functions."""
    if not text.strip():
        raise QuerySyntaxError("empty query")
    return _QueryParser(_tokenize(text), tables, functions or {}).parse()
