"""Session façade: fluent builder, text frontend, prepared statements,
and a profile-keyed plan cache over the cost-driven optimizer.

* :mod:`repro.session.session` — the :class:`Session` front door
  (catalog, compilation, caching, execution),
* :mod:`repro.session.builder` — the fluent :class:`QueryBuilder`
  lowering to the logical algebra,
* :mod:`repro.session.frontend` — the textual query language
  (:func:`parse_query`),
* :mod:`repro.session.cache` — :class:`PlanCache` and
  :class:`PreparedStatement`.
"""

from .builder import GroupedBuilder, QueryBuilder
from .cache import PlanCache, PreparedStatement
from .frontend import QuerySyntaxError, parse_query
from .session import Session

__all__ = [
    "Session",
    "QueryBuilder",
    "GroupedBuilder",
    "PreparedStatement",
    "PlanCache",
    "parse_query",
    "QuerySyntaxError",
]
