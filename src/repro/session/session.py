"""The session façade: one front door over engine, model, and optimizer.

The paper's point is that a single calibrated hardware profile lets the
optimizer pick the best implementation per operator automatically — a
:class:`Session` packages that loop end to end.  It owns a
:class:`~repro.db.Database`, a name catalog for tables and predicate/key
functions, the cost model and a re-entrant optimizer for the current
profile, and a profile-keyed :class:`~repro.session.PlanCache`.  Queries
arrive through any of three equivalent frontends —

* the **fluent builder**: ``s.table("orders").filter(even, 0.5)...``,
* the **text frontend**: ``s.query("join(filter(orders, even), ...)")``,
* the **explicit algebra**: a hand-assembled
  :class:`~repro.query.logical.LogicalOp` tree

— and all three lower to the same logical algebra, so they compile to
identical physical plans and share plan-cache entries.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import replace
from typing import Callable, Sequence

from ..core.cost import CostModel
from ..core.regions import DataRegion
from ..db.column import Column
from ..db.context import Database
from ..hardware.hierarchy import MemoryHierarchy
from ..hardware.profiles import origin2000_scaled
from ..obs import Tracer
from ..query.logical import LogicalOp, Relation
from ..query.observe import (
    Explanation,
    MeasuredResult,
    QueryResult,
    capture_measured,
    execute_result,
)
from ..query.optimizer import Optimizer, PlannedQuery, PlannerConfig
from .builder import QueryBuilder
from .cache import PlanCache, PreparedStatement
from .frontend import parse_query

__all__ = ["Session"]


class Session:
    """A database session: catalog, compilation, caching, execution.

    Every query method accepts a :class:`~repro.session.QueryBuilder`,
    a bare :class:`~repro.query.logical.LogicalOp` tree, or query text.

    Like the engine it wraps, execution is *in place*: sort-based
    operators in a chosen plan reorder the shared base columns they
    read (Monet-style semantics), so the catalog reflects execution
    history.  Pass ``restore=True`` to :meth:`execute` /
    :meth:`execute_measured` to snapshot and put back every registered
    column's values around the run (a Python-level copy, invisible to
    the simulated access trace).

    Parameters
    ----------
    hierarchy:
        Machine profile to run on; defaults to the scaled Origin2000
        (the simulator-friendly profile the experiments use).  Mutually
        exclusive with ``db``.
    db:
        Adopt an existing engine instance (its hierarchy becomes the
        session profile) instead of creating a fresh one.
    config:
        Planner knobs (:class:`~repro.query.PlannerConfig`).
    cache:
        Plan cache to use; defaults to a fresh
        :class:`~repro.session.PlanCache`.  Sessions on the same machine
        profile may share one — keys carry the profile fingerprint.
    memory_budget:
        Working-memory bound per operator in bytes (sort area, hash
        table, group table); ``None`` (default) plans purely in memory.
        With a budget the optimizer compiles spilling implementations
        exactly when working structures exceed it.  Folded into the
        planner config — and therefore into every plan-cache key, so
        cached plans never leak across budgets.  May not be combined
        with an explicit ``config`` that already sets a budget.
    execution:
        Execution mode plans run under: ``"vectorized"`` (chunked
        kernels, the config default) or ``"scalar"`` (item-at-a-time).
        Folded into the planner config — and therefore into every
        plan-cache key — overriding whatever the ``config`` carries.
        Results and simulated counters are identical across modes; only
        real wall-clock differs.
    tracer:
        Opt-in observability (:class:`~repro.obs.Tracer`): compile
        spans (wall interval, simulated instant) and, for
        :meth:`execute_measured`, per-operator execution spans plus
        drift-monitor samples keyed by the profile fingerprint.
        ``None`` (the default) records nothing.
    """

    def __init__(self, hierarchy: MemoryHierarchy | None = None,
                 db: Database | None = None,
                 config: PlannerConfig | None = None,
                 cache: PlanCache | None = None,
                 memory_budget: int | None = None,
                 execution: str | None = None,
                 tracer: Tracer | None = None) -> None:
        if db is not None and hierarchy is not None:
            raise ValueError(
                "pass either hierarchy or db, not both (a Database "
                "already carries its hierarchy)")
        self.db = db if db is not None else Database(
            hierarchy if hierarchy is not None else origin2000_scaled())
        self.config = config or PlannerConfig()
        if memory_budget is not None:
            if (config is not None
                    and config.memory_budget is not None
                    and config.memory_budget != memory_budget):
                raise ValueError(
                    "conflicting memory budgets: config.memory_budget="
                    f"{config.memory_budget} vs memory_budget="
                    f"{memory_budget}")
            self.config = replace(self.config, memory_budget=memory_budget)
        if execution is not None:
            if execution not in ("scalar", "vectorized"):
                raise ValueError(
                    "execution mode must be 'scalar' or 'vectorized', "
                    f"got {execution!r}")
            self.config = replace(self.config, execution=execution)
        # `cache or ...` would drop a shared cache that is still empty
        # (PlanCache defines __len__, so an empty cache is falsy)
        self.plan_cache = cache if cache is not None else PlanCache()
        self.tracer = tracer
        #: Callbacks ``fn(result)`` run after every
        #: :meth:`execute_measured` — how an online recalibrator
        #: (:class:`repro.calibrator.Recalibrator`) taps the live
        #: measurement stream without the session knowing about it.
        self._measurement_observers: list[Callable] = []
        self._functions: dict[str, Callable] = {}
        self._sorted: dict[str, bool] = {}
        #: Whether the most recent :meth:`compile` was served from the
        #: plan cache (per-query provenance for shared-cache clients;
        #: :meth:`PlanCache.stats` only counts globally).
        self.last_compile_cached: bool = False
        #: Session-local plan-cache hit/miss counters (the shared
        #: :class:`PlanCache` counts globally across clients); surfaced
        #: by :meth:`stats`.
        self.compile_hits: int = 0
        self.compile_misses: int = 0
        self._rebind(self.db.hierarchy)

    def spawn(self) -> "Session":
        """A new client session over the *same* engine and plan cache.

        The spawned session shares this session's :class:`Database`
        (catalog, simulated address space, memory system), its
        :class:`~repro.session.PlanCache`, and its planner config, and
        copies the predicate registry and sorted-table flags — the
        multi-client wiring of the concurrent workload service: many
        front doors, one engine, one cache.  Compile provenance
        (:attr:`last_compile_cached`) stays per session."""
        child = Session(db=self.db, config=self.config,
                        cache=self.plan_cache, tracer=self.tracer)
        child._functions.update(self._functions)
        child._sorted.update(self._sorted)
        return child

    def _rebind(self, hierarchy: MemoryHierarchy) -> None:
        self.optimizer = Optimizer(hierarchy, self.config)
        self.model = CostModel(hierarchy)

    # -- profile -------------------------------------------------------
    @property
    def hierarchy(self) -> MemoryHierarchy:
        return self.db.hierarchy

    @property
    def memory_budget(self) -> int | None:
        """The working-memory bound compilation plans under (``None``
        for unbounded in-memory planning)."""
        return self.config.memory_budget

    @property
    def fingerprint(self) -> str:
        """Fingerprint of the current machine profile (the profile
        component of every plan-cache key)."""
        self._sync_profile()
        return self.optimizer.fingerprint

    def set_hierarchy(self, hierarchy: MemoryHierarchy) -> None:
        """Switch the session to a new (e.g. re-calibrated) machine
        profile.  Tables survive; cached plans for the old profile stop
        matching (keys carry the fingerprint), and prepared statements
        recompile transparently on their next use."""
        self.db.set_hierarchy(hierarchy)
        self._rebind(hierarchy)

    def attach_measurement_observer(self, observer: Callable) -> None:
        """Subscribe ``observer(result)`` to every
        :meth:`execute_measured` result of *this* session (spawned
        siblings keep their own lists).  This is the live sample feed
        of the online recalibration loop —
        ``session.attach_measurement_observer(recalibrator.observe)``
        wires a :class:`repro.calibrator.Recalibrator` in."""
        self._measurement_observers.append(observer)

    # -- catalog -------------------------------------------------------
    def create_table(self, name: str, values: Sequence, width: int = 8,
                     sorted: bool = False) -> Column:
        """Materialise ``values`` as a column and register it as a named
        table.  ``sorted`` declares an existing physical order the
        optimizer may exploit."""
        column = self.db.register(
            self.db.create_column(name, values, width=width), name)
        self._sorted[name] = sorted
        return column

    def register_table(self, column: Column, name: str | None = None,
                       sorted: bool = False) -> Column:
        """Register an existing column as a named table."""
        name = name or column.name
        self.db.register(column, name)
        self._sorted[name] = sorted
        return column

    def predicate(self, name: str, fn: Callable) -> Callable:
        """Register a named predicate/key function for the text frontend
        and for name references in the builder."""
        self._functions[name] = fn
        return fn

    def function(self, ref: Callable | str | None) -> Callable | None:
        """Resolve a predicate/key reference: callables pass through,
        names look up the registry."""
        if ref is None or callable(ref):
            return ref
        try:
            return self._functions[ref]
        except KeyError:
            known = ", ".join(sorted(self._functions)) or "none registered"
            raise KeyError(
                f"no registered predicate/key function {ref!r} "
                f"(known: {known})") from None

    # -- frontends -----------------------------------------------------
    def table(self, name: str) -> QueryBuilder:
        """Start a fluent query from a registered table."""
        column = self.db.column(name)
        return QueryBuilder(self, Relation.of_column(
            column, sorted=self._sorted.get(name, False)))

    def relation(self, name: str, n: int, width: int = 8,
                 sorted: bool = False) -> QueryBuilder:
        """Start a fluent query from a bare region (model-only planning
        at sizes the simulator cannot execute)."""
        return QueryBuilder(self, Relation.of_region(
            DataRegion(name, n=n, w=width), sorted=sorted))

    def query(self, text: str) -> QueryBuilder:
        """Parse query text (the small query language of
        :mod:`repro.session.frontend`) against the session catalog."""
        tables = {
            name: Relation.of_column(column,
                                     sorted=self._sorted.get(name, False))
            for name, column in self.db.catalog.items()
        }
        return QueryBuilder(self, parse_query(text, tables=tables,
                                              functions=self._functions))

    def as_logical(self, q) -> LogicalOp:
        """Lower any accepted query form to its logical tree."""
        if isinstance(q, QueryBuilder):
            return q.logical()
        if isinstance(q, LogicalOp):
            return q
        if isinstance(q, str):
            return self.query(q).logical()
        raise TypeError(
            f"not a query: {q!r} (expected a QueryBuilder, a LogicalOp, "
            "or query text)")

    # -- compile & run -------------------------------------------------
    def _sync_profile(self) -> None:
        """Re-bind optimizer and model if the shared engine's hierarchy
        changed under us (a sibling session over the same
        :class:`~repro.db.Database` may have switched profiles — see
        :meth:`spawn`).  Identity check, so the common path is free."""
        if self.optimizer.hierarchy is not self.db.hierarchy:
            self._rebind(self.db.hierarchy)

    def compile(self, q) -> PlannedQuery:
        """Enumerate/rank plans through the profile-keyed plan cache.

        Sets :attr:`last_compile_cached` to whether the plan came from
        the cache (hit) or was enumerated by this call (miss).

        Safe to call from concurrent spawned sessions sharing one
        :class:`PlanCache`: the cache's per-key compile gating
        (:meth:`PlanCache.get_or_compute`) guarantees a key is
        enumerated by exactly one thread, with contenders served the
        published plan.  Per-session state (provenance flag, hit/miss
        counters) is only ever touched by the session's own thread —
        the one-session-per-client spawn discipline."""
        wall_start = time.perf_counter_ns()
        self._sync_profile()
        logical = self.as_logical(q)
        # One key derivation per compile: get_or_compute here instead
        # of passing the cache into optimize (which would re-derive it).
        key = self.optimizer.cache_key(logical)
        optimizer = self.optimizer  # pinned: a sibling's profile
        #                             switch must not retarget mid-call
        planned, hit = self.plan_cache.get_or_compute(
            key, lambda: optimizer.optimize(logical))
        self.last_compile_cached = hit
        if hit:
            self.compile_hits += 1
        else:
            self.compile_misses += 1
        if self.tracer is not None:
            # an instant on the simulated clock (the machine never pays
            # for compilation), an interval on the wall clock
            at = getattr(self.db.mem, "elapsed_ns", 0.0)
            self.tracer.span(
                "compile", track="session", category="compile",
                sim_start_ns=at, sim_end_ns=at,
                wall_start_ns=wall_start,
                wall_end_ns=time.perf_counter_ns(),
                cache_hit=hit, signature=planned.best.signature)
        return planned

    def prepare(self, q) -> PreparedStatement:
        """Compile ``q`` into a reusable prepared statement."""
        logical = self.as_logical(q)
        return PreparedStatement(self, logical, self.compile(logical),
                                 self.fingerprint)

    @contextmanager
    def _restoring(self, restore: bool):
        """Snapshot/restore registered columns' values around a run
        (plans may sort shared base columns in place).  If the plan's
        *result* aliases a base column (a bare sort of a table), the
        restored values win — restore is meant for queries producing
        derived output columns."""
        saved = ({column: list(column.values)
                  for column in self.db.catalog.values()} if restore else {})
        yield
        for column, values in saved.items():
            column.values = values

    def execute(self, q, restore: bool = False) -> Column:
        """Compile (cached) and run the chosen plan.  ``restore=True``
        puts registered columns' values back afterwards (see the class
        docstring on in-place execution).

        The bare-column fast path; :meth:`run` returns the same
        execution as a typed :class:`~repro.query.QueryResult` with
        plan provenance and timing attached."""
        planned = self.compile(q)
        with self._restoring(restore), \
                self.db.execution_scope(self.config.execution):
            return self.db.execute(planned.plan)

    def run(self, q, restore: bool = False) -> QueryResult:
        """Compile (cached) and run the chosen plan, returning a typed
        :class:`~repro.query.QueryResult`: the result column, the
        plan's :class:`~repro.query.Explanation` (signature included),
        the compile's plan-cache provenance, and wall/simulated
        execution time."""
        planned = self.compile(q)
        explanation = planned.explanation(self.model,
                                          pipeline=self.config.pipeline,
                                          cache_hit=self.last_compile_cached)
        with self.db.execution_scope(self.config.execution):
            return execute_result(self.db, planned.plan, explanation,
                                  restoring=self._restoring(restore))

    def execute_measured(self, q, cold: bool = True, restore: bool = False
                         ) -> MeasuredResult:
        """Compile (cached), run, and measure the chosen plan.

        Returns a :class:`~repro.query.MeasuredResult`: the result
        column, the whole-plan counter delta, and per-operator measured
        attribution next to the model's per-operator predictions —
        every query is a paper-style model-vs-measured experiment.

        .. deprecated:: 1.2
           This method used to return a bare
           ``(Column, CounterSnapshot)`` tuple.  Unpacking the result
           still works for one release (with a
           :class:`DeprecationWarning`); migrate to ``result.column``
           and ``result.counters``.
        """
        planned = self.compile(q)
        cache_hit = self.last_compile_cached
        explanation = planned.explanation(self.model,
                                          pipeline=self.config.pipeline,
                                          cache_hit=cache_hit)
        # ``cold=True`` resets the engine clock to zero before running,
        # so the execute span starts at 0; warm runs start at the
        # engine's current simulated time.
        start = 0.0 if cold else getattr(self.db.mem, "elapsed_ns", 0.0)
        with self._restoring(restore), \
                self.db.execution_scope(self.config.execution):
            result = capture_measured(self.db, planned.plan, explanation,
                                      cold=cold)
        if self.tracer is not None:
            self.tracer.record_measured(result, track="session",
                                        sim_start_ns=start,
                                        fingerprint=self.fingerprint)
        for observer in self._measurement_observers:
            observer(result)
        return result

    def explain_query(self, q) -> Explanation:
        """The chosen plan's typed :class:`~repro.query.Explanation` —
        operator tree, pattern notation, spill flags, per-cache-level
        predictions — stamped with the compile's plan-cache provenance
        (hit/miss).  ``explain_query(q).to_text()`` is the classic
        rendered breakdown."""
        planned = self.compile(q)
        return planned.explanation(self.model,
                                   pipeline=self.config.pipeline,
                                   cache_hit=self.last_compile_cached)

    def explain(self, q) -> str:
        """Per-operator cost/pattern breakdown of the chosen plan,
        marked with the compile's plan-cache provenance (hit/miss).

        .. deprecated:: 1.2
           Returns an opaque string; use :meth:`explain_query` for the
           typed tree (this is its ``to_text()``).
        """
        warnings.warn(
            "Session.explain() returning a bare string is deprecated; "
            "use explain_query(q) for the typed Explanation "
            "(explain_query(q).to_text() is this string)",
            DeprecationWarning, stacklevel=2)
        return self.explain_query(q).to_text()

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Cache statistics plus the active profile fingerprint.

        ``hits``/``misses``/``entries`` count over the (possibly
        shared) :class:`PlanCache`; ``session_hits``/``session_misses``
        count this session's own compiles, and ``last_compile_cached``
        is the most recent compile's provenance (the per-query flag the
        plan cache cannot see)."""
        stats: dict[str, object] = dict(self.plan_cache.stats())
        stats["session_hits"] = self.compile_hits
        stats["session_misses"] = self.compile_misses
        stats["last_compile_cached"] = self.last_compile_cached
        stats["profile"] = self.fingerprint
        return stats

    def __repr__(self) -> str:
        return (f"Session({self.hierarchy.name!r}, "
                f"tables={sorted(self.db.catalog)}, "
                f"cache={self.plan_cache.stats()})")
