"""Reproduction of "Generic Database Cost Models for Hierarchical Memory
Systems" (S. Manegold, P. A. Boncz, M. L. Kersten; CWI INS-R0203 / VLDB 2002).

The package provides:

* :mod:`repro.hardware` — the unified hardware model (cache levels, TLBs,
  machine profiles including the paper's SGI Origin2000).
* :mod:`repro.simulator` — a trace-driven cache-hierarchy simulator used as
  the measurement substrate in place of hardware event counters.
* :mod:`repro.core` — data regions, the basic/compound access-pattern
  language, and the automatically combined cost functions (the paper's
  contribution).
* :mod:`repro.db` — a column-oriented main-memory engine whose operators
  execute against the simulator (the Monet stand-in).
* :mod:`repro.calibrator` — the parameter-measurement micro-benchmarks.
* :mod:`repro.optimizer` — a cost-based algorithm advisor built on the model.
* :mod:`repro.session` — the public façade: fluent/text query frontends,
  prepared statements, and a profile-keyed plan cache.
* :mod:`repro.validation` — the model-vs-measurement experiment harness.
* :mod:`repro.server` — an asyncio multi-tenant query server serving
  open-loop traffic with ⊙-guided admission control and SLO tracking.
* :mod:`repro.obs` — dual-clock tracing spans (Chrome ``trace_event``
  export), a labeled metrics registry (Prometheus exposition), and an
  EWMA predicted-vs-measured drift monitor.
* :mod:`repro.whatif` — parametric hardware sweeps and
  capacity-planning reports: price a workload on machines you don't
  have, find the Pareto frontier, recommend the smallest config
  meeting an SLO.
"""

from .hardware import (
    CacheLevel,
    MemoryHierarchy,
    disk_extended,
    modern_x86,
    origin2000,
    origin2000_scaled,
    tiny_test_machine,
)
from .simulator import MemorySystem

__version__ = "1.7.0"


def __getattr__(name):
    # Lazy: `import repro` stays light; the session façade pulls in the
    # whole query/optimizer stack only when asked for.
    if name == "Session":
        from .session import Session
        return Session
    if name == "QueryServer":
        from .server import QueryServer
        return QueryServer
    if name == "Tracer":
        from .obs import Tracer
        return Tracer
    if name == "Recalibrator":
        from .calibrator import Recalibrator
        return Recalibrator
    if name == "ProfileSpace":
        from .whatif import ProfileSpace
        return ProfileSpace
    if name == "WhatIfSweep":
        from .whatif import WhatIfSweep
        return WhatIfSweep
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Session",
    "QueryServer",
    "Tracer",
    "Recalibrator",
    "ProfileSpace",
    "WhatIfSweep",
    "CacheLevel",
    "MemoryHierarchy",
    "MemorySystem",
    "origin2000",
    "origin2000_scaled",
    "modern_x86",
    "disk_extended",
    "tiny_test_machine",
    "__version__",
]
