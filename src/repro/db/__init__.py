"""Column-oriented main-memory engine over the simulated memory
(the reproduction's stand-in for the paper's Monet platform)."""

from .aggregate import hash_aggregate, hash_distinct, sort_aggregate, sort_distinct
from .allocator import Allocator
from .btree import SimBTree, btree_lookup_pattern, index_nested_loop_join
from .column import Column, IntVector, Table, as_numpy
from .context import Database
from .radix import (
    radix_bits,
    radix_partition,
    radix_partition_pattern,
    recommended_fanout,
)
from .datagen import grouped_keys, random_permutation, sorted_ints, uniform_ints
from .hashtable import ENTRY_WIDTH, SimHashTable
from .join import OUTPUT_WIDTH, hash_join, merge_join, nested_loop_join, probe_join
from .partition import Partitions, join_partitions, partition, partition_key
from .scan import project, scan, select
from .setops import merge_difference, merge_intersect, merge_union
from .sort import is_sorted, quick_sort
from .spill import (
    GraceJoinResult,
    external_merge_sort,
    grace_hash_join,
    spilling_hash_aggregate,
)

__all__ = [
    "Allocator",
    "Column",
    "IntVector",
    "Table",
    "as_numpy",
    "Database",
    "uniform_ints",
    "random_permutation",
    "sorted_ints",
    "grouped_keys",
    "SimHashTable",
    "ENTRY_WIDTH",
    "OUTPUT_WIDTH",
    "scan",
    "select",
    "project",
    "quick_sort",
    "is_sorted",
    "external_merge_sort",
    "grace_hash_join",
    "spilling_hash_aggregate",
    "GraceJoinResult",
    "merge_join",
    "nested_loop_join",
    "hash_join",
    "probe_join",
    "partition",
    "join_partitions",
    "Partitions",
    "partition_key",
    "hash_aggregate",
    "sort_aggregate",
    "hash_distinct",
    "sort_distinct",
    "merge_union",
    "merge_intersect",
    "merge_difference",
    "SimBTree",
    "index_nested_loop_join",
    "btree_lookup_pattern",
    "radix_partition",
    "radix_partition_pattern",
    "radix_bits",
    "recommended_fanout",
]
