"""Synthetic workload generation.

The paper's experiments use tables of randomly distributed numerical
data, with 1:1 key matches for the join workloads.  All generators take
an explicit seed so every experiment is reproducible.
"""

from __future__ import annotations

import random

__all__ = [
    "uniform_ints",
    "random_permutation",
    "sorted_ints",
    "grouped_keys",
]


def uniform_ints(n: int, lo: int = 0, hi: int = 2**31 - 1,
                 seed: int = 0) -> list[int]:
    """``n`` uniform integers in ``[lo, hi]``."""
    if n < 1:
        raise ValueError("n must be positive")
    if hi < lo:
        raise ValueError("hi must be >= lo")
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(n)]


def random_permutation(n: int, seed: int = 0) -> list[int]:
    """The integers ``0..n-1`` in random order (1:1 join keys)."""
    if n < 1:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    values = list(range(n))
    rng.shuffle(values)
    return values


def sorted_ints(n: int, step: int = 1, start: int = 0) -> list[int]:
    """``n`` sorted integers (merge-join operands)."""
    if n < 1:
        raise ValueError("n must be positive")
    return list(range(start, start + n * step, step))


def grouped_keys(n: int, groups: int, seed: int = 0) -> list[int]:
    """``n`` keys drawn uniformly from ``groups`` distinct values
    (aggregation workloads)."""
    if groups < 1:
        raise ValueError("groups must be positive")
    rng = random.Random(seed)
    return [rng.randrange(groups) for _ in range(n)]
