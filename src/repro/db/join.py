"""Join operators: merge join, nested-loop join, hash join.

Every implementation produces the access trace its Table 2 pattern
describes:

* ``merge_join`` — three concurrent sequential cursors (both inputs
  sorted, one output);
* ``nested_loop_join`` — a sequential outer cursor, one full sequential
  inner traversal per outer item, a sequential output cursor;
* ``hash_join`` — build (sequential inner input, random hash-table
  writes) then probe (sequential outer input, random hash-table hits,
  sequential output).

Join results are materialised as an output column of (outer index, inner
index) pairs, 16 bytes wide — matching the ``W`` regions the experiments
model.
"""

from __future__ import annotations

from .column import Column
from .context import Database
from .hashtable import SimHashTable

__all__ = ["merge_join", "nested_loop_join", "hash_join", "OUTPUT_WIDTH"]

#: Bytes per output pair (two 8-byte oids).
OUTPUT_WIDTH = 16


def _output(db: Database, name: str, capacity: int) -> Column:
    return db.allocate_column(name, n=max(1, capacity), width=OUTPUT_WIDTH,
                              fill=(0, 0))


def _trim(col: Column, count: int) -> Column:
    col.values = col.values[:count]
    return col


def merge_join(db: Database, outer: Column, inner: Column,
               output_name: str = "W",
               output_capacity: int | None = None) -> Column:
    """Join two *sorted* columns with two merge cursors.

    Handles duplicate keys on both sides (block-nested re-scan of the
    matching inner run, which stays cache-resident).
    """
    if db.execution != "scalar":
        from .vectorized import merge_join_v
        return merge_join_v(db, outer, inner, output_name=output_name,
                            output_capacity=output_capacity)
    mem = db.mem
    capacity = output_capacity or max(outer.n, inner.n)
    out = _output(db, output_name, capacity)
    count = 0
    i = j = 0
    while i < outer.n and j < inner.n:
        left = outer.read(mem, i)
        right = inner.read(mem, j)
        if left < right:
            i += 1
        elif left > right:
            j += 1
        else:
            # Emit the cross product of the two equal-key runs.
            run_start = j
            while j < inner.n and inner.read(mem, j) == left:
                if count >= len(out.values):
                    raise RuntimeError("join output capacity exceeded")
                out.write(mem, count, (i, j))
                count += 1
                j += 1
            i += 1
            if i < outer.n and outer.peek(i) == left:
                j = run_start
    return _trim(out, count)


def nested_loop_join(db: Database, outer: Column, inner: Column,
                     output_name: str = "W",
                     output_capacity: int | None = None) -> Column:
    """Join by scanning the whole inner input once per outer item."""
    if db.execution != "scalar":
        from .vectorized import nested_loop_join_v
        return nested_loop_join_v(db, outer, inner, output_name=output_name,
                                  output_capacity=output_capacity)
    mem = db.mem
    capacity = output_capacity or max(outer.n, inner.n)
    out = _output(db, output_name, capacity)
    count = 0
    for i in range(outer.n):
        left = outer.read(mem, i)
        for j in range(inner.n):
            if inner.read(mem, j) == left:
                if count >= len(out.values):
                    raise RuntimeError("join output capacity exceeded")
                out.write(mem, count, (i, j))
                count += 1
    return _trim(out, count)


def hash_join(db: Database, outer: Column, inner: Column,
              output_name: str = "W",
              output_capacity: int | None = None,
              max_load: float = 0.5) -> tuple[Column, SimHashTable]:
    """Build a hash table on the inner input, probe with the outer.

    Returns the output column *and* the hash table (whose region the
    experiments need for model evaluation).
    """
    if db.execution != "scalar":
        from .vectorized import hash_join_v
        return hash_join_v(db, outer, inner, output_name=output_name,
                           output_capacity=output_capacity,
                           max_load=max_load)
    table = SimHashTable.build(db, inner, max_load=max_load,
                               name=f"H({inner.name})")
    out = probe_join(db, outer, table, output_name=output_name,
                     output_capacity=output_capacity)
    return out, table


def probe_join(db: Database, outer: Column, table: SimHashTable,
               output_name: str = "W",
               output_capacity: int | None = None) -> Column:
    """The probe phase of a hash join, reusable for pre-built tables."""
    if db.execution != "scalar":
        from .vectorized import probe_join_v
        return probe_join_v(db, outer, table, output_name=output_name,
                            output_capacity=output_capacity)
    mem = db.mem
    capacity = output_capacity or max(outer.n, table.entries)
    out = _output(db, output_name, capacity)
    count = 0
    for i in range(outer.n):
        key = outer.read(mem, i)
        for payload in table.lookup(key):
            if count >= len(out.values):
                raise RuntimeError("join output capacity exceeded")
            out.write(mem, count, (i, payload))
            count += 1
    return _trim(out, count)
