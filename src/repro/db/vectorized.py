"""Vectorized (chunked) twins of the scalar operator kernels.

Every function here mirrors one scalar operator from this package —
same simulated access sequence, same allocator calls in the same order,
same result values, same exceptions — but issues the accesses through
the simulator's batch layer instead of one :meth:`MemorySystem.access`
call per item:

* maximal sequential runs become one
  :meth:`~repro.simulator.MemorySystem.access_range` call (the
  range-coalesced reporting API, byte-identical to the per-item loop);
* everything that cannot coalesce (hash chains, sort cursors, writes
  interleaved into a sweep) goes through a fused accessor from
  :meth:`~repro.simulator.MemorySystem.batch`, which is
  call-for-call identical to ``access`` with the cascade set-up hoisted
  out of the loop.

The dispatch lives in the scalar operators: each checks
``db.execution`` and forwards here when the engine runs vectorized
(:meth:`Database.execution_scope <repro.db.Database.execution_scope>`).
Kernels call each other's ``*_v`` twins directly so a composition
(grace hash join, spilling aggregate) never re-dispatches per phase.

The differential suite (``tests/test_vectorized.py``) asserts the
equivalence that makes this refactor safe: identical result columns AND
identical simulator counter deltas against the scalar kernels, operator
by operator, on multiple machine profiles.

Speedups are bounded by the access pattern itself: sequential sweeps
coalesce into a few Python calls per cache line (order-of-magnitude
gains on scans), while random hash-table chains still pay one fused
event-engine call per probed slot (roughly halving the per-access cost)
— the same sequential-vs-random asymmetry the cost model prices.
"""

from __future__ import annotations

from ..core.algorithms import (
    DEFAULT_HASH_MAX_LOAD,
    hash_capacity,
    hash_table_region,
    partition_capacity,
    spill_partition_count,
    spill_run_count,
)
from ..core.regions import DataRegion
from .column import Column, as_numpy
from .context import Database
from .hashtable import ENTRY_WIDTH, SimHashTable, _EMPTY
from .join import OUTPUT_WIDTH
from .partition import Partitions, partition_key
from .spill import GraceJoinResult

__all__ = [
    "scan_v",
    "select_v",
    "project_v",
    "project_node_v",
    "quick_sort_v",
    "build_table_v",
    "fill_table_v",
    "probe_join_v",
    "hash_join_v",
    "merge_join_v",
    "nested_loop_join_v",
    "hash_aggregate_v",
    "sort_aggregate_v",
    "hash_distinct_v",
    "sort_distinct_v",
    "partition_v",
    "external_merge_sort_v",
    "grace_hash_join_v",
    "spilling_hash_aggregate_v",
]

#: Sequential runs at least this long go through ``access_range``;
#: shorter runs stay on the fused accessor (the coalescing fast lane
#: needs a few items to amortize its setup, and ``access_range`` itself
#: only engages its aligned-sweep engine from 8 items).
_COALESCE_MIN = 8


def _sweep_with_marks(mem, fused, base: int, width: int, n: int,
                      marks, on_mark) -> None:
    """Reads of items ``0..n-1`` (sequential, ``width`` bytes each at
    ``base``), with ``on_mark(p)`` invoked directly after the read of
    each position in ``marks`` (ascending) — the shared shape of every
    "sweep with interleaved output" kernel (select, aggregate emit,
    distinct emit, inner traversal of a nested-loop join)."""
    start = 0
    for p in marks:
        run = p - start + 1
        if run >= _COALESCE_MIN:
            mem.access_range(base + start * width, width, width, run)
        else:
            addr = base + start * width
            for _ in range(run):
                fused(addr, width)
                addr += width
        on_mark(p)
        start = p + 1
    if start < n:
        run = n - start
        if run >= _COALESCE_MIN:
            mem.access_range(base + start * width, width, width, run)
        else:
            addr = base + start * width
            for _ in range(run):
                fused(addr, width)
                addr += width


# ----------------------------------------------------------------------
# unary pipeline operators (scan.py twins)
# ----------------------------------------------------------------------

def scan_v(db: Database, col: Column, used_bytes: int | None = None) -> int:
    """Vectorized :func:`repro.db.scan`: the whole sweep is one
    ``access_range`` call and the checksum one C-level ``sum``."""
    u = used_bytes or col.width
    if u > col.width:
        raise ValueError("used_bytes exceeds the item width")
    db.mem.access_range(col.address, u, col.width, col.n)
    # (a + v0) & m ... folded item-wise equals the masked total: & is
    # mod 2**32 on Python ints, and mod distributes over the sum.
    values = col.values
    view = as_numpy(values)
    if view is not None:
        # uint64 wrap-around then the 32-bit mask: 2**32 divides 2**64,
        # so the double reduction equals the arbitrary-precision sum.
        return int(view.sum(dtype="uint64")) & 0xFFFFFFFF
    return sum(values) & 0xFFFFFFFF


def select_v(db: Database, col: Column, predicate,
             output_name: str = "sel") -> Column:
    """Vectorized :func:`repro.db.select`: the selection vector is
    computed first, then the input sweep is replayed as coalesced runs
    split at the match positions (each followed by its output write)."""
    mem = db.mem
    out = db.allocate_column(output_name, n=max(1, col.n), width=col.width)
    values = col.values
    n = col.n
    matches = [i for i in range(n) if predicate(values[i])]
    fused = mem.batch()
    width = col.width
    out_base = out.address
    selected = []

    def emit(p: int) -> None:
        fused(out_base + len(selected) * width, width, True)
        selected.append(values[p])

    _sweep_with_marks(mem, fused, col.address, width, n, matches, emit)
    out.values = selected
    return out


def project_v(db: Database, col: Column, used_bytes: int,
              output_width: int | None = None,
              output_name: str = "prj") -> Column:
    """Vectorized :func:`repro.db.project`: fused alternating
    input-read/output-write cursors (the two streams interleave item by
    item, so there is no run to coalesce), one bulk value copy."""
    if not 1 <= used_bytes <= col.width:
        raise ValueError("used_bytes must be within the item width")
    mem = db.mem
    width = output_width or used_bytes
    out = db.allocate_column(output_name, n=col.n, width=width)
    fused = mem.batch()
    in_addr = col.address
    in_width = col.width
    out_addr = out.address
    for _ in range(col.n):
        fused(in_addr, used_bytes)
        fused(out_addr, width, True)
        in_addr += in_width
        out_addr += width
    out.values = list(col.values)
    return out


def project_node_v(db: Database, source: Column, output_name: str,
                   width: int, used_bytes: int, recover) -> Column:
    """Vectorized body of :meth:`ProjectNode._run
    <repro.query.physical.ProjectNode>`: like :func:`project_v` but with
    the plan node's key recovery (``recover(row, value)``, or ``None``
    for raw values) applied per item."""
    mem = db.mem
    out = db.allocate_column(output_name, n=max(1, source.n), width=width)
    fused = mem.batch()
    values = source.values
    in_addr = source.address
    in_width = source.width
    out_addr = out.address
    keys = []
    for row in range(source.n):
        fused(in_addr, used_bytes)
        value = values[row]
        keys.append(recover(row, value) if recover is not None else value)
        fused(out_addr, width, True)
        in_addr += in_width
        out_addr += width
    out.values = keys
    return out


# ----------------------------------------------------------------------
# sort (sort.py twin)
# ----------------------------------------------------------------------

def quick_sort_v(db: Database, col: Column) -> None:
    """Vectorized :func:`repro.db.quick_sort`: the identical Hoare
    two-cursor algorithm with all accesses through one fused accessor
    (sort cursors alternate directions and swap mid-run, so there is no
    stable sequential run to coalesce; the fused single-line shortcut
    still picks up the cursors' intra-line steps)."""
    from .sort import INSERTION_THRESHOLD, _hoare_partition

    mem = db.mem
    fused = mem.batch()
    values = col.values
    width = col.width
    base = col.address

    def read(i: int) -> int:
        fused(base + i * width, width)
        return values[i]

    def swap(i: int, j: int) -> None:
        fused(base + i * width, width, True)
        fused(base + j * width, width, True)
        values[i], values[j] = values[j], values[i]

    stack: list[tuple[int, int]] = [(0, col.n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo + 1 <= INSERTION_THRESHOLD:
            _insertion_sort_v(fused, values, base, width, lo, hi)
            continue
        split = _hoare_partition(read, swap, values, lo, hi)
        if split - lo > hi - split - 1:
            stack.append((lo, split))
            stack.append((split + 1, hi))
        else:
            stack.append((split + 1, hi))
            stack.append((lo, split))


def _insertion_sort_v(fused, values, base: int, width: int,
                      lo: int, hi: int) -> None:
    for i in range(lo + 1, hi + 1):
        fused(base + i * width, width)
        current = values[i]
        j = i - 1
        while j >= lo:
            fused(base + j * width, width)
            if values[j] <= current:
                break
            fused(base + (j + 1) * width, width, True)
            values[j + 1] = values[j]
            j -= 1
        fused(base + (j + 1) * width, width, True)
        values[j + 1] = current


# ----------------------------------------------------------------------
# hash table (hashtable.py twins)
# ----------------------------------------------------------------------

def fill_table_v(db: Database, table: SimHashTable, col: Column) -> None:
    """The build loop of :meth:`SimHashTable.build
    <repro.db.SimHashTable.build>` over an existing table: sequential
    input reads with the insert probe chains inlined into one fused
    accessor (double-hash chains jump randomly, nothing coalesces)."""
    mem = db.mem
    fused = mem.batch()
    values = col.values
    in_addr = col.address
    in_width = col.width
    keys = table._keys
    payloads = table._payloads
    mask = table.mask
    capacity = table.capacity
    table_base = table.address
    entries = table.entries
    for i in range(col.n):
        fused(in_addr, in_width)
        in_addr += in_width
        key = values[i]
        if entries >= capacity:
            table.entries = entries
            raise RuntimeError("hash table full")
        slot = ((key * 0x9E3779B97F4A7C15) >> 16) & mask
        step = (((key * 0xC2B2AE3D27D4EB4F) >> 24) | 1) & mask
        while True:
            fused(table_base + slot * ENTRY_WIDTH, ENTRY_WIDTH, True)
            if keys[slot] is _EMPTY:
                keys[slot] = key
                payloads[slot] = i
                entries += 1
                break
            slot = (slot + step) & mask
    table.entries = entries


def build_table_v(db: Database, col: Column, max_load: float = 0.5,
                  name: str = "H", cls=SimHashTable) -> SimHashTable:
    """Vectorized :meth:`SimHashTable.build <repro.db.SimHashTable.build>`."""
    table = cls(db, n=max(1, col.n), max_load=max_load, name=name)
    fill_table_v(db, table, col)
    return table


def probe_join_v(db: Database, outer: Column, table: SimHashTable,
                 output_name: str = "W",
                 output_capacity: int | None = None) -> Column:
    """Vectorized :func:`repro.db.probe_join`: fused outer reads and
    probe chains; each key's full lookup chain completes before its
    matches are written (the scalar ordering)."""
    mem = db.mem
    capacity = output_capacity or max(outer.n, table.entries)
    out = db.allocate_column(output_name, n=max(1, capacity),
                             width=OUTPUT_WIDTH, fill=(0, 0))
    fused = mem.batch()
    values = outer.values
    in_addr = outer.address
    in_width = outer.width
    keys = table._keys
    payloads = table._payloads
    mask = table.mask
    table_base = table.address
    out_base = out.address
    cap_len = out.n
    pairs: list = []
    count = 0
    for i in range(outer.n):
        fused(in_addr, in_width)
        in_addr += in_width
        key = values[i]
        slot = ((key * 0x9E3779B97F4A7C15) >> 16) & mask
        step = (((key * 0xC2B2AE3D27D4EB4F) >> 24) | 1) & mask
        matches = []
        while True:
            fused(table_base + slot * ENTRY_WIDTH, ENTRY_WIDTH)
            stored = keys[slot]
            if stored is _EMPTY:
                break
            if stored == key:
                matches.append(payloads[slot])
            slot = (slot + step) & mask
        for payload in matches:
            if count >= cap_len:
                raise RuntimeError("join output capacity exceeded")
            fused(out_base + count * OUTPUT_WIDTH, OUTPUT_WIDTH, True)
            pairs.append((i, payload))
            count += 1
    out.values = pairs
    return out


def hash_join_v(db: Database, outer: Column, inner: Column,
                output_name: str = "W",
                output_capacity: int | None = None,
                max_load: float = 0.5) -> tuple[Column, SimHashTable]:
    """Vectorized :func:`repro.db.hash_join`: build + probe."""
    table = build_table_v(db, inner, max_load=max_load,
                          name=f"H({inner.name})")
    out = probe_join_v(db, outer, table, output_name=output_name,
                       output_capacity=output_capacity)
    return out, table


# ----------------------------------------------------------------------
# joins (join.py twins)
# ----------------------------------------------------------------------

def merge_join_v(db: Database, outer: Column, inner: Column,
                 output_name: str = "W",
                 output_capacity: int | None = None) -> Column:
    """Vectorized :func:`repro.db.merge_join`: the three cursors
    interleave item by item (outer and inner are re-read every
    iteration), so all accesses go through one fused accessor."""
    mem = db.mem
    capacity = output_capacity or max(outer.n, inner.n)
    out = db.allocate_column(output_name, n=max(1, capacity),
                             width=OUTPUT_WIDTH, fill=(0, 0))
    fused = mem.batch()
    outer_values = outer.values
    inner_values = inner.values
    outer_base = outer.address
    inner_base = inner.address
    outer_width = outer.width
    inner_width = inner.width
    outer_n = outer.n
    inner_n = inner.n
    out_base = out.address
    cap_len = out.n
    pairs: list = []
    count = 0
    i = j = 0
    while i < outer_n and j < inner_n:
        fused(outer_base + i * outer_width, outer_width)
        left = outer_values[i]
        fused(inner_base + j * inner_width, inner_width)
        right = inner_values[j]
        if left < right:
            i += 1
        elif left > right:
            j += 1
        else:
            run_start = j
            while True:
                if j >= inner_n:
                    break
                fused(inner_base + j * inner_width, inner_width)
                if inner_values[j] != left:
                    break
                if count >= cap_len:
                    raise RuntimeError("join output capacity exceeded")
                fused(out_base + count * OUTPUT_WIDTH, OUTPUT_WIDTH, True)
                pairs.append((i, j))
                count += 1
                j += 1
            i += 1
            if i < outer_n and outer_values[i] == left:
                j = run_start
    out.values = pairs
    return out


def nested_loop_join_v(db: Database, outer: Column, inner: Column,
                       output_name: str = "W",
                       output_capacity: int | None = None) -> Column:
    """Vectorized :func:`repro.db.nested_loop_join`: the match positions
    per key are indexed once, then every inner traversal is replayed as
    coalesced runs split at that outer item's matches."""
    mem = db.mem
    capacity = output_capacity or max(outer.n, inner.n)
    out = db.allocate_column(output_name, n=max(1, capacity),
                             width=OUTPUT_WIDTH, fill=(0, 0))
    fused = mem.batch()
    outer_values = outer.values
    inner_values = inner.values
    inner_n = inner.n
    inner_width = inner.width
    inner_base = inner.address
    outer_base = outer.address
    outer_width = outer.width
    out_base = out.address
    cap_len = out.n
    positions: dict = {}
    for j in range(inner_n):
        positions.setdefault(inner_values[j], []).append(j)
    pairs: list = []
    count = 0
    for i in range(outer.n):
        fused(outer_base + i * outer_width, outer_width)
        left = outer_values[i]

        def emit(j: int, i=i) -> None:
            nonlocal count
            if count >= cap_len:
                raise RuntimeError("join output capacity exceeded")
            fused(out_base + count * OUTPUT_WIDTH, OUTPUT_WIDTH, True)
            pairs.append((i, j))
            count += 1

        _sweep_with_marks(mem, fused, inner_base, inner_width, inner_n,
                          positions.get(left, ()), emit)
    out.values = pairs
    return out


# ----------------------------------------------------------------------
# aggregation / distinct (aggregate.py twins)
# ----------------------------------------------------------------------

def hash_aggregate_v(db: Database, col: Column,
                     groups_hint: int | None = None,
                     output_name: str = "agg", key_of=None) -> Column:
    """Vectorized :func:`repro.db.hash_aggregate`: fused consume phase
    (input reads interleave with group-table chains), then the emit
    sweep over the whole table coalesced into runs split at the occupied
    slots."""
    mem = db.mem
    extract = key_of or (lambda value: value)
    hint = groups_hint or max(1, col.n)
    capacity = hash_capacity(hint)
    mask = capacity - 1
    address = db.allocator.allocate(capacity * ENTRY_WIDTH,
                                    alignment=ENTRY_WIDTH)
    keys: list = [None] * capacity
    counts = [0] * capacity

    fused = mem.batch()
    values = col.values
    in_addr = col.address
    in_width = col.width
    occupied = 0
    for i in range(col.n):
        fused(in_addr, in_width)
        in_addr += in_width
        key = extract(values[i])
        slot = ((key * 0x9E3779B97F4A7C15) >> 16) & mask
        while True:
            fused(address + slot * ENTRY_WIDTH, ENTRY_WIDTH, True)
            if keys[slot] is None:
                if occupied >= capacity - 1:
                    raise RuntimeError("group table full; raise groups_hint")
                keys[slot] = key
                counts[slot] = 1
                occupied += 1
                break
            if keys[slot] == key:
                counts[slot] += 1
                break
            slot = (slot + 1) & mask

    out = db.allocate_column(output_name, n=max(1, occupied),
                             width=ENTRY_WIDTH, fill=(0, 0))
    out_base = out.address
    groups: list = []

    def emit(slot: int) -> None:
        fused(out_base + len(groups) * ENTRY_WIDTH, ENTRY_WIDTH, True)
        groups.append((keys[slot], counts[slot]))

    marks = [slot for slot in range(capacity) if keys[slot] is not None]
    _sweep_with_marks(mem, fused, address, ENTRY_WIDTH, capacity, marks, emit)
    out.values = groups
    return out


def sort_aggregate_v(db: Database, col: Column,
                     output_name: str = "agg") -> Column:
    """Vectorized :func:`repro.db.sort_aggregate`: vectorized sort, then
    the grouping pass coalesced into runs split at the group
    boundaries (the sorted values make them known up front)."""
    mem = db.mem
    quick_sort_v(db, col)
    out = db.allocate_column(output_name, n=max(1, col.n),
                             width=ENTRY_WIDTH, fill=(0, 0))
    values = col.values
    n = col.n
    fused = mem.batch()
    out_base = out.address
    groups: list = []
    # The scalar pass flushes group g when it reads the first item of
    # group g+1, and flushes the last group after the loop.
    bounds = [i for i in range(1, n) if values[i] != values[i - 1]]
    starts = [0] + bounds

    def flush(p: int) -> None:
        fused(out_base + len(groups) * ENTRY_WIDTH, ENTRY_WIDTH, True)
        start = starts[len(groups)]
        groups.append((values[start], p - start))

    _sweep_with_marks(mem, fused, col.address, col.width, n, bounds, flush)
    if n:
        fused(out_base + len(groups) * ENTRY_WIDTH, ENTRY_WIDTH, True)
        start = starts[len(groups)]
        groups.append((values[start], n - start))
    out.values = groups
    return out


def hash_distinct_v(db: Database, col: Column,
                    output_name: str = "dist") -> Column:
    """Vectorized :func:`repro.db.hash_distinct`: fused input reads,
    lookup and insert chains, and output writes."""
    mem = db.mem
    table = SimHashTable(db, n=max(1, col.n), name=f"D({col.name})")
    out = db.allocate_column(output_name, n=max(1, col.n), width=col.width)
    fused = mem.batch()
    values = col.values
    in_addr = col.address
    in_width = col.width
    keys = table._keys
    payloads = table._payloads
    mask = table.mask
    capacity = table.capacity
    table_base = table.address
    out_base = out.address
    out_width = out.width
    entries = 0
    distinct: list = []
    for i in range(col.n):
        fused(in_addr, in_width)
        in_addr += in_width
        value = values[i]
        slot = ((value * 0x9E3779B97F4A7C15) >> 16) & mask
        step = (((value * 0xC2B2AE3D27D4EB4F) >> 24) | 1) & mask
        found = False
        while True:
            fused(table_base + slot * ENTRY_WIDTH, ENTRY_WIDTH)
            stored = keys[slot]
            if stored is _EMPTY:
                break
            if stored == value:
                found = True
            slot = (slot + step) & mask
        if not found:
            if entries >= capacity:
                table.entries = entries
                raise RuntimeError("hash table full")
            slot = ((value * 0x9E3779B97F4A7C15) >> 16) & mask
            while True:
                fused(table_base + slot * ENTRY_WIDTH, ENTRY_WIDTH, True)
                if keys[slot] is _EMPTY:
                    keys[slot] = value
                    payloads[slot] = i
                    entries += 1
                    break
                slot = (slot + step) & mask
            fused(out_base + len(distinct) * out_width, out_width, True)
            distinct.append(value)
    table.entries = entries
    out.values = distinct
    return out


def sort_distinct_v(db: Database, col: Column,
                    output_name: str = "dist") -> Column:
    """Vectorized :func:`repro.db.sort_distinct`: vectorized sort, then
    the de-duplication pass coalesced into runs split at the first
    occurrence of each distinct value."""
    mem = db.mem
    quick_sort_v(db, col)
    out = db.allocate_column(output_name, n=max(1, col.n), width=col.width)
    values = col.values
    n = col.n
    fused = mem.batch()
    out_base = out.address
    out_width = out.width
    distinct: list = []
    marks = [0] + [i for i in range(1, n) if values[i] != values[i - 1]] \
        if n else []

    def emit(p: int) -> None:
        fused(out_base + len(distinct) * out_width, out_width, True)
        distinct.append(values[p])

    _sweep_with_marks(mem, fused, col.address, col.width, n, marks, emit)
    out.values = distinct
    return out


# ----------------------------------------------------------------------
# partitioning (partition.py twin)
# ----------------------------------------------------------------------

def partition_v(db: Database, col: Column, m: int,
                output_name: str | None = None,
                slack_sigmas: float = 6.0,
                key_func=None) -> Partitions:
    """Vectorized :func:`repro.db.partition`: fused input reads and
    buffer writes (the write cursor hops between the ``m`` buffers in
    key order, so consecutive writes rarely share a run)."""
    if m < 1:
        raise ValueError("m must be positive")
    if m > col.n:
        raise ValueError("more partitions than items")
    name = output_name or f"P({col.name})"
    cluster_of = key_func or partition_key
    mem = db.mem
    n = col.n
    capacity = partition_capacity(n, m, slack_sigmas)

    region = DataRegion(name=name, n=m * capacity, w=col.width)
    buffers: list[Column] = []
    for j in range(m):
        buffers.append(
            db.allocate_column(f"{name}[{j}]", n=capacity, width=col.width)
        )
    fused = mem.batch()
    values = col.values
    width = col.width
    in_addr = col.address
    addresses = [buf.address for buf in buffers]
    fills = [0] * m
    collected: list[list] = [[] for _ in range(m)]
    for i in range(n):
        fused(in_addr, width)
        in_addr += width
        value = values[i]
        j = cluster_of(value, m)
        slot = fills[j]
        if slot >= capacity:
            raise RuntimeError(
                f"partition buffer {j} overflowed (capacity {capacity}); "
                f"increase slack_sigmas for skewed keys"
            )
        fused(addresses[j] + slot * width, width, True)
        collected[j].append(value)
        fills[j] = slot + 1

    clusters = []
    for j, buf in enumerate(buffers):
        buf.values = collected[j]
        clusters.append(buf)
    return Partitions(source_name=col.name, clusters=clusters, region=region)


# ----------------------------------------------------------------------
# spilling operators (spill.py twins)
# ----------------------------------------------------------------------

def external_merge_sort_v(db: Database, col: Column, memory_budget: int,
                          output_name: str | None = None) -> Column:
    """Vectorized :func:`repro.db.external_merge_sort`: vectorized run
    sorts, fused k-way merge (the merge cursor hops between run heads,
    so the merge itself does not coalesce)."""
    region = col.region()
    r = spill_run_count(region, memory_budget)
    if r <= 1 or col.n <= 1:
        quick_sort_v(db, col)
        return col
    mem = db.mem
    width = col.width
    run_items = -(-col.n // r)  # ceil
    bounds: list[tuple[int, int]] = []
    for j, start in enumerate(range(0, col.n, run_items)):
        end = min(col.n, start + run_items)
        run = Column(f"{col.name}.run{j}", width,
                     col.item_address(start), col.values[start:end])
        quick_sort_v(db, run)
        col.values[start:end] = run.values
        bounds.append((start, end))

    out = db.allocate_column(output_name or f"sort({col.name})",
                             n=col.n, width=width)
    fused = mem.batch()
    values = col.values
    base = col.address
    out_base = out.address
    heads: list[tuple[int, int, int]] = []
    for j, (start, _) in enumerate(bounds):
        fused(base + start * width, width)
        heads.append((values[start], j, start))
    merged: list = []
    count = 0
    while heads:
        index = min(range(len(heads)), key=lambda k: heads[k][0])
        value, j, pos = heads[index]
        fused(out_base + count * width, width, True)
        merged.append(value)
        count += 1
        pos += 1
        if pos < bounds[j][1]:
            fused(base + pos * width, width)
            heads[index] = (values[pos], j, pos)
        else:
            del heads[index]
    out.values = merged
    return out


def _partition_with_retry_v(db: Database, col: Column, m: int,
                            key_func=None) -> Partitions:
    slack = 6.0
    while True:
        try:
            return partition_v(db, col, m, slack_sigmas=slack,
                               key_func=key_func)
        except RuntimeError:
            slack *= 2


def grace_hash_join_v(db: Database, outer: Column, inner: Column,
                      memory_budget: int, output_name: str = "W",
                      max_load: float = DEFAULT_HASH_MAX_LOAD
                      ) -> GraceJoinResult | tuple[Column, None]:
    """Vectorized :func:`repro.db.grace_hash_join`."""
    table_bytes = hash_table_region(inner.region(), ENTRY_WIDTH,
                                    max_load=max_load).size
    m = spill_partition_count(table_bytes, memory_budget)
    m = max(1, min(m, outer.n, inner.n))
    if m <= 1:
        out, _ = hash_join_v(db, outer, inner, output_name=output_name,
                             max_load=max_load)
        return out, None
    outer_parts = _partition_with_retry_v(db, outer, m)
    inner_parts = _partition_with_retry_v(db, inner, m)
    planned = partition_capacity(inner.n, m)
    outputs: list[Column] = []
    for j, (outer_col, inner_col) in enumerate(zip(outer_parts, inner_parts)):
        table = SimHashTable(db, n=max(planned, inner_col.n),
                             max_load=max_load, name=f"H[{j}]")
        fill_table_v(db, table, inner_col)
        outputs.append(probe_join_v(
            db, outer_col, table,
            output_name=f"{output_name}[{j}]",
            output_capacity=max(outer_col.n, inner_col.n, 1)))
    return GraceJoinResult(outputs, outer_parts, inner_parts, m)


def spilling_hash_aggregate_v(db: Database, col: Column, memory_budget: int,
                              groups_hint: int | None = None,
                              output_name: str = "agg",
                              key_of=None) -> Column:
    """Vectorized :func:`repro.db.spilling_hash_aggregate`."""
    hint = groups_hint or max(1, col.n)
    table_bytes = hash_table_region(
        DataRegion("G", n=hint, w=ENTRY_WIDTH), ENTRY_WIDTH,
        max_load=DEFAULT_HASH_MAX_LOAD, name="G").size
    m = spill_partition_count(table_bytes, memory_budget)
    m = max(1, min(m, col.n, hint))
    if m <= 1:
        return hash_aggregate_v(db, col, groups_hint=hint,
                                output_name=output_name, key_of=key_of)
    extract = key_of or (lambda value: value)
    parts = _partition_with_retry_v(
        db, col, m,
        key_func=lambda value, mm: partition_key(extract(value), mm))
    per_part_hint = -(-hint // m)  # ceil
    pieces: list[Column] = []
    for j, part in enumerate(parts):
        if part.n == 0:
            continue
        pieces.append(hash_aggregate_v(db, part,
                                       groups_hint=per_part_hint,
                                       output_name=f"{output_name}[{j}]",
                                       key_of=key_of))
    values: list = []
    for piece in pieces:
        values.extend(piece.values)
    return db.create_column(output_name, values, width=ENTRY_WIDTH)
