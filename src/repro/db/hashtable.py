"""Open-addressing hash table in simulated memory.

The cost model describes a hash table as a single data region ``H`` of
fixed-width entries that is written in random order at build time
(``r_trav(H)``) and hit randomly at probe time (``r_acc(r, H)``).  An
open-addressing table with double hashing matches that abstraction
directly: one contiguous slot array, one (expected ``~1.x``) slot touch
per operation.  Chained tables would add a second region (the chain
nodes) that the paper's single-region description does not model.

Slots are 16 bytes (key + payload); the capacity is the smallest power of
two at or above ``n / max_load``.
"""

from __future__ import annotations

from ..core.algorithms import hash_capacity
from ..core.regions import DataRegion
from .column import Column
from .context import Database

__all__ = ["SimHashTable", "ENTRY_WIDTH"]

#: Bytes per slot: 8-byte key + 8-byte payload.
ENTRY_WIDTH = 16

_EMPTY = object()


class SimHashTable:
    """A fixed-capacity open-addressing hash table.

    Parameters
    ----------
    db:
        Execution context (provides memory + allocator).
    n:
        Expected number of entries.
    max_load:
        Load factor bound; capacity is sized to keep the average probe
        sequence short so the measured trace stays close to the modelled
        one-hit-per-operation abstraction.
    """

    def __init__(self, db: Database, n: int, max_load: float = 0.5,
                 name: str = "H") -> None:
        capacity = hash_capacity(n, max_load)
        self.db = db
        self.name = name
        self.capacity = capacity
        self.mask = capacity - 1
        self.address = db.allocator.allocate(capacity * ENTRY_WIDTH,
                                             alignment=ENTRY_WIDTH)
        self._keys: list = [_EMPTY] * capacity
        self._payloads: list = [None] * capacity
        self.entries = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Bytes occupied by the slot array: ``capacity * ENTRY_WIDTH``."""
        return self.capacity * ENTRY_WIDTH

    def region(self) -> DataRegion:
        """The cost-model region for this table: the whole slot array."""
        return DataRegion(name=self.name, n=self.capacity, w=ENTRY_WIDTH)

    def _slot_address(self, slot: int) -> int:
        return self.address + slot * ENTRY_WIDTH

    def _hash1(self, key: int) -> int:
        # Fibonacci hashing: spreads consecutive keys over the table.
        return ((key * 0x9E3779B97F4A7C15) >> 16) & self.mask

    def _hash2(self, key: int) -> int:
        # Odd step for full-cycle double hashing on a power-of-two table.
        return (((key * 0xC2B2AE3D27D4EB4F) >> 24) | 1) & self.mask

    # ------------------------------------------------------------------
    def insert(self, key: int, payload) -> None:
        """Insert a key (duplicates allowed: each gets its own slot)."""
        if self.entries >= self.capacity:
            raise RuntimeError("hash table full")
        mem = self.db.mem
        slot = self._hash1(key)
        step = self._hash2(key)
        while True:
            mem.access(self._slot_address(slot), ENTRY_WIDTH, write=True)
            if self._keys[slot] is _EMPTY:
                self._keys[slot] = key
                self._payloads[slot] = payload
                self.entries += 1
                return
            slot = (slot + step) & self.mask

    def lookup(self, key: int) -> list:
        """All payloads stored under ``key`` (empty list if none)."""
        mem = self.db.mem
        slot = self._hash1(key)
        step = self._hash2(key)
        matches = []
        while True:
            mem.access(self._slot_address(slot), ENTRY_WIDTH)
            stored = self._keys[slot]
            if stored is _EMPTY:
                return matches
            if stored == key:
                matches.append(self._payloads[slot])
            slot = (slot + step) & self.mask

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, db: Database, col: Column, max_load: float = 0.5,
              name: str = "H") -> "SimHashTable":
        """Build a table over a column: sequential read of the input,
        random writes into ``H`` — the ``build(V,H)`` pattern."""
        if db.execution != "scalar":
            from .vectorized import build_table_v
            return build_table_v(db, col, max_load=max_load, name=name,
                                 cls=cls)
        table = cls(db, n=max(1, col.n), max_load=max_load, name=name)
        mem = db.mem
        for i in range(col.n):
            mem.access(col.item_address(i), col.width)
            table.insert(col.values[i], i)
        return table
