"""Partitioning and partitioned hash join (paper Section 6.2).

``partition`` reads its input sequentially and appends every item to the
output buffer its key hashes to — one local sequential cursor per buffer,
a global cursor hopping between buffers in key order: exactly the
``s_trav(U) ⊙ nest(H, m, s_trav, rand)`` pattern.  The buffers are
allocated back-to-back, so together they form the contiguous output
region ``H`` (of which each buffer is a sub-region).

``join_partitions`` then hash-joins each matching buffer pair
(``⊕_j hash_join(U_j, V_j, W_j)``); once buffers fit in a cache, the
per-pair hash tables stay resident and the random-access penalty of plain
hash join disappears — the effect of paper Figure 7e.
"""

from __future__ import annotations

from ..core.algorithms import partition_capacity
from ..core.regions import DataRegion
from .column import Column
from .context import Database
from .hashtable import SimHashTable
from .join import OUTPUT_WIDTH, hash_join

__all__ = ["Partitions", "partition", "join_partitions", "partition_key"]


def partition_key(key: int, m: int) -> int:
    """The cluster a key belongs to (Fibonacci hash, then modulo)."""
    return ((key * 0x9E3779B97F4A7C15) >> 16) % m


class Partitions:
    """The result of partitioning one column: ``m`` cluster columns that
    are sub-regions of one contiguous output region."""

    def __init__(self, source_name: str, clusters: list[Column],
                 region: DataRegion) -> None:
        self.source_name = source_name
        self.clusters = clusters
        self.region = region

    @property
    def m(self) -> int:
        return len(self.clusters)

    def __iter__(self):
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)


def partition(db: Database, col: Column, m: int,
              output_name: str | None = None,
              slack_sigmas: float = 6.0,
              key_func=None) -> Partitions:
    """Split ``col`` into ``m`` hash clusters.

    Buffer capacity is ``n/m`` plus ``slack_sigmas`` binomial standard
    deviations (uniform keys make cluster sizes Binomial(n, 1/m)); an
    overflowing buffer raises rather than silently spilling, because a
    spill would change the access pattern under measurement.

    ``key_func(value, m)`` overrides the cluster function (multi-pass
    radix clustering feeds different hash digits to each pass).
    """
    if db.execution != "scalar":
        from .vectorized import partition_v
        return partition_v(db, col, m, output_name=output_name,
                           slack_sigmas=slack_sigmas, key_func=key_func)
    if m < 1:
        raise ValueError("m must be positive")
    if m > col.n:
        raise ValueError("more partitions than items")
    name = output_name or f"P({col.name})"
    cluster_of = key_func or partition_key
    mem = db.mem
    n = col.n
    # Shared policy with the pattern builders (the model prices the
    # buffers the engine allocates).
    capacity = partition_capacity(n, m, slack_sigmas)

    region = DataRegion(name=name, n=m * capacity, w=col.width)
    buffers: list[Column] = []
    for j in range(m):
        buffers.append(
            db.allocate_column(f"{name}[{j}]", n=capacity, width=col.width)
        )
    fills = [0] * m

    for i in range(n):
        value = col.read(mem, i)
        j = cluster_of(value, m)
        slot = fills[j]
        if slot >= capacity:
            raise RuntimeError(
                f"partition buffer {j} overflowed (capacity {capacity}); "
                f"increase slack_sigmas for skewed keys"
            )
        buffers[j].write(mem, slot, value)
        fills[j] = slot + 1

    clusters = []
    for j, buf in enumerate(buffers):
        buf.values = buf.values[:fills[j]]
        clusters.append(buf)
    return Partitions(source_name=col.name, clusters=clusters, region=region)


def join_partitions(db: Database, outer_parts: Partitions,
                    inner_parts: Partitions,
                    output_name: str = "W",
                    max_load: float = 0.5) -> tuple[list[Column], list[SimHashTable]]:
    """Hash-join matching cluster pairs: ``⊕_j hash_join(U_j, V_j, W_j)``.

    Returns the per-pair outputs and hash tables (the tables' regions are
    needed to evaluate the cost model for the same execution).
    """
    if outer_parts.m != inner_parts.m:
        raise ValueError("operand partition counts differ")
    outputs: list[Column] = []
    tables: list[SimHashTable] = []
    for j, (outer, inner) in enumerate(zip(outer_parts, inner_parts)):
        capacity = max(outer.n, inner.n)
        out, table = hash_join(
            db, outer, inner,
            output_name=f"{output_name}[{j}]",
            output_capacity=capacity,
            max_load=max_load,
        )
        outputs.append(out)
        tables.append(table)
    return outputs, tables
