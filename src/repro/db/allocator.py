"""Bump allocator for the simulated address space.

The database engine places every column, hash table and partition buffer
at an explicit address in the simulated memory, because cache behaviour
depends on addresses (line alignment, page spread, conflict sets).  A
simple monotonic bump allocator with alignment control is sufficient: the
experiments never free memory mid-run, they reset the whole system.
"""

from __future__ import annotations

__all__ = ["Allocator"]


class Allocator:
    """Monotonic address allocator.

    Parameters
    ----------
    base:
        First address handed out.  Starting above zero avoids the
        (harmless but confusing) address-0 line.
    default_alignment:
        Alignment applied when an allocation does not request its own.
    """

    def __init__(self, base: int = 4096, default_alignment: int = 8) -> None:
        if base < 0:
            raise ValueError("base must be non-negative")
        if default_alignment < 1:
            raise ValueError("alignment must be positive")
        self._next = base
        self._default_alignment = default_alignment
        self.allocations: list[tuple[int, int]] = []

    def allocate(self, nbytes: int, alignment: int | None = None) -> int:
        """Reserve ``nbytes`` and return the start address."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        align = self._default_alignment if alignment is None else alignment
        if align < 1:
            raise ValueError("alignment must be positive")
        addr = -(-self._next // align) * align
        self._next = addr + nbytes
        self.allocations.append((addr, nbytes))
        return addr

    @property
    def bytes_allocated(self) -> int:
        """Total bytes reserved so far (including alignment padding)."""
        return sum(n for _, n in self.allocations)

    @property
    def next_address(self) -> int:
        return self._next
