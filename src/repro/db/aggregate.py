"""Aggregation and duplicate elimination.

The paper notes (Section 3.2) that aggregation and duplicate elimination
are implemented with sorting or hashing and perform the respective
patterns; both variants are provided.
"""

from __future__ import annotations

from ..core.algorithms import hash_capacity
from .column import Column
from .context import Database
from .hashtable import ENTRY_WIDTH, SimHashTable
from .sort import quick_sort

__all__ = [
    "hash_aggregate",
    "sort_aggregate",
    "hash_distinct",
    "sort_distinct",
]


def hash_aggregate(db: Database, col: Column, groups_hint: int | None = None,
                   output_name: str = "agg", key_of=None) -> Column:
    """Group-count via a hash group table.

    One random group-table hit per input item (``r_acc(U.n, G)``), then a
    sequential pass over the group table emitting results.  ``key_of``
    extracts the integer grouping key from a stored value (e.g. the
    outer oid of a join-result pair); identity by default.
    """
    if db.execution != "scalar":
        from .vectorized import hash_aggregate_v
        return hash_aggregate_v(db, col, groups_hint=groups_hint,
                                output_name=output_name, key_of=key_of)
    mem = db.mem
    extract = key_of or (lambda value: value)
    hint = groups_hint or max(1, col.n)
    capacity = hash_capacity(hint)
    mask = capacity - 1
    address = db.allocator.allocate(capacity * ENTRY_WIDTH, alignment=ENTRY_WIDTH)
    keys: list = [None] * capacity
    counts = [0] * capacity

    occupied = 0
    for i in range(col.n):
        key = extract(col.read(mem, i))
        slot = ((key * 0x9E3779B97F4A7C15) >> 16) & mask
        while True:
            mem.access(address + slot * ENTRY_WIDTH, ENTRY_WIDTH, write=True)
            if keys[slot] is None:
                if occupied >= capacity - 1:
                    raise RuntimeError("group table full; raise groups_hint")
                keys[slot] = key
                counts[slot] = 1
                occupied += 1
                break
            if keys[slot] == key:
                counts[slot] += 1
                break
            slot = (slot + 1) & mask

    out = db.allocate_column(output_name, n=max(1, occupied), width=ENTRY_WIDTH,
                             fill=(0, 0))
    emitted = 0
    for slot in range(capacity):
        mem.access(address + slot * ENTRY_WIDTH, ENTRY_WIDTH)
        if keys[slot] is not None:
            out.write(mem, emitted, (keys[slot], counts[slot]))
            emitted += 1
    out.values = out.values[:emitted]
    return out


def sort_aggregate(db: Database, col: Column,
                   output_name: str = "agg") -> Column:
    """Group-count by sorting in place, then one sequential pass."""
    if db.execution != "scalar":
        from .vectorized import sort_aggregate_v
        return sort_aggregate_v(db, col, output_name=output_name)
    mem = db.mem
    quick_sort(db, col)
    out = db.allocate_column(output_name, n=max(1, col.n), width=ENTRY_WIDTH,
                             fill=(0, 0))
    emitted = 0
    current = None
    count = 0
    for i in range(col.n):
        value = col.read(mem, i)
        if value == current:
            count += 1
        else:
            if count:
                out.write(mem, emitted, (current, count))
                emitted += 1
            current = value
            count = 1
    if count:
        out.write(mem, emitted, (current, count))
        emitted += 1
    out.values = out.values[:emitted]
    return out


def hash_distinct(db: Database, col: Column,
                  output_name: str = "dist") -> Column:
    """Duplicate elimination via hashing: one random table hit per item,
    sequential output of first occurrences."""
    if db.execution != "scalar":
        from .vectorized import hash_distinct_v
        return hash_distinct_v(db, col, output_name=output_name)
    mem = db.mem
    table = SimHashTable(db, n=max(1, col.n), name=f"D({col.name})")
    out = db.allocate_column(output_name, n=max(1, col.n), width=col.width)
    emitted = 0
    for i in range(col.n):
        value = col.read(mem, i)
        if not table.lookup(value):
            table.insert(value, i)
            out.write(mem, emitted, value)
            emitted += 1
    out.values = out.values[:emitted]
    return out


def sort_distinct(db: Database, col: Column,
                  output_name: str = "dist") -> Column:
    """Duplicate elimination by sorting in place, then one pass."""
    if db.execution != "scalar":
        from .vectorized import sort_distinct_v
        return sort_distinct_v(db, col, output_name=output_name)
    mem = db.mem
    quick_sort(db, col)
    out = db.allocate_column(output_name, n=max(1, col.n), width=col.width)
    emitted = 0
    previous = None
    for i in range(col.n):
        value = col.read(mem, i)
        if emitted == 0 or value != previous:
            out.write(mem, emitted, value)
            emitted += 1
            previous = value
    out.values = out.values[:emitted]
    return out
