"""Set operations (union, intersection, difference) on sorted inputs.

The paper states the treatment of union, intersection and set-difference
derives from the join discussion; on sorted operands all three are merge
variants — three concurrent sequential cursors, like merge join.
Duplicate inputs are handled with set semantics (each distinct value
appears at most once in the result).
"""

from __future__ import annotations

from .column import Column
from .context import Database

__all__ = ["merge_union", "merge_intersect", "merge_difference"]


def _output(db: Database, name: str, capacity: int, width: int) -> Column:
    return db.allocate_column(name, n=max(1, capacity), width=width)


def _emit(mem, out: Column, count: int, value) -> int:
    if count >= len(out.values):
        raise RuntimeError("set-operation output capacity exceeded")
    out.write(mem, count, value)
    return count + 1


def _trim(col: Column, count: int) -> Column:
    col.values = col.values[:count]
    return col


def merge_union(db: Database, left: Column, right: Column,
                output_name: str = "union") -> Column:
    """Sorted union with duplicate elimination."""
    mem = db.mem
    out = _output(db, output_name, left.n + right.n, left.width)
    i = j = count = 0
    last = object()
    while i < left.n or j < right.n:
        if j >= right.n or (i < left.n and left.read(mem, i) <= right.peek(j)):
            value = left.values[i]
            i += 1
        else:
            value = right.read(mem, j)
            j += 1
        if value != last:
            count = _emit(mem, out, count, value)
            last = value
    return _trim(out, count)


def merge_intersect(db: Database, left: Column, right: Column,
                    output_name: str = "isect") -> Column:
    """Sorted intersection (distinct values present in both inputs)."""
    mem = db.mem
    out = _output(db, output_name, min(left.n, right.n), left.width)
    i = j = count = 0
    last = object()
    while i < left.n and j < right.n:
        lv = left.read(mem, i)
        rv = right.read(mem, j)
        if lv < rv:
            i += 1
        elif lv > rv:
            j += 1
        else:
            if lv != last:
                count = _emit(mem, out, count, lv)
                last = lv
            i += 1
            j += 1
    return _trim(out, count)


def merge_difference(db: Database, left: Column, right: Column,
                     output_name: str = "diff") -> Column:
    """Sorted difference (distinct left values absent from the right)."""
    mem = db.mem
    out = _output(db, output_name, left.n, left.width)
    i = j = count = 0
    last = object()
    while i < left.n:
        lv = left.read(mem, i)
        while j < right.n and right.read(mem, j) < lv:
            j += 1
        if (j >= right.n or right.peek(j) != lv) and lv != last:
            count = _emit(mem, out, count, lv)
            last = lv
        if j < right.n and right.peek(j) == lv:
            last = lv
        i += 1
    return _trim(out, count)
