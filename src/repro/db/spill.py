"""Spilling (out-of-core) operator variants under an explicit memory budget.

The in-memory operators of this package assume their auxiliary
structures — quick-sort's whole working array, a hash join's build
table, an aggregate's group table — fit in working memory.  Out of
core they do not, and each operator falls back to its classic
disk-era variant:

* :func:`external_merge_sort` — quick-sort budget-sized runs in place,
  then merge the sorted runs with one sequential cursor per run;
* :func:`grace_hash_join` — partition both inputs until every
  per-partition hash table fits the budget, then hash-join matching
  partition pairs (the grace/hybrid hash join family);
* :func:`spilling_hash_aggregate` — partition the input by grouping
  key until every per-partition group table fits the budget, then
  hash-aggregate each partition independently.

Every variant produces exactly the access trace its pattern factory in
:mod:`repro.core.algorithms` describes (``external_merge_sort_pattern``
etc.), so the derived cost functions price what the engine really does —
on a :func:`~repro.hardware.disk_extended` hierarchy, down to buffer-pool
misses.  The budget → fan-out policy is shared with the model through
:func:`~repro.core.spill_run_count` / :func:`~repro.core.spill_partition_count`.
"""

from __future__ import annotations

from ..core.algorithms import (
    DEFAULT_HASH_MAX_LOAD,
    hash_table_region,
    partition_capacity,
    spill_partition_count,
    spill_run_count,
)
from ..core.regions import DataRegion
from .aggregate import hash_aggregate
from .column import Column
from .context import Database
from .hashtable import ENTRY_WIDTH, SimHashTable
from .join import hash_join, probe_join
from .partition import Partitions, partition, partition_key
from .sort import quick_sort

__all__ = [
    "external_merge_sort",
    "grace_hash_join",
    "spilling_hash_aggregate",
    "GraceJoinResult",
]


def external_merge_sort(db: Database, col: Column, memory_budget: int,
                        output_name: str | None = None) -> Column:
    """Sort ``col`` using at most ``memory_budget`` bytes of sort area.

    Runs of ``memory_budget`` bytes are quick-sorted in place, then
    merged into a fresh output column (``col`` is left run-sorted).
    When the column fits the budget this *is* an in-place quick sort
    and ``col`` itself is returned.
    """
    if db.execution != "scalar":
        from .vectorized import external_merge_sort_v
        return external_merge_sort_v(db, col, memory_budget,
                                     output_name=output_name)
    region = col.region()
    r = spill_run_count(region, memory_budget)
    if r <= 1 or col.n <= 1:
        quick_sort(db, col)
        return col
    mem = db.mem
    width = col.width
    run_items = -(-col.n // r)  # ceil
    bounds: list[tuple[int, int]] = []
    for j, start in enumerate(range(0, col.n, run_items)):
        end = min(col.n, start + run_items)
        run = Column(f"{col.name}.run{j}", width,
                     col.item_address(start), col.values[start:end])
        quick_sort(db, run)
        # Same storage, correct simulated addresses — only the Python
        # backing list is stitched back (no extra simulated access).
        col.values[start:end] = run.values
        bounds.append((start, end))

    out = db.allocate_column(output_name or f"sort({col.name})",
                             n=col.n, width=width)
    # One sequential cursor per run; the global order follows the data.
    heads: list[tuple[int, int, int]] = []  # (value, run index, position)
    for j, (start, _) in enumerate(bounds):
        heads.append((col.read(mem, start), j, start))
    count = 0
    while heads:
        index = min(range(len(heads)), key=lambda k: heads[k][0])
        value, j, pos = heads[index]
        out.write(mem, count, value)
        count += 1
        pos += 1
        if pos < bounds[j][1]:
            heads[index] = (col.read(mem, pos), j, pos)
        else:
            del heads[index]
    return out


def _partition_with_retry(db: Database, col: Column, m: int,
                          key_func=None) -> Partitions:
    """Partition, widening the buffer slack on overflow.

    Buffer capacity assumes binomially spread cluster fills; skewed
    cluster functions (partitioning by a grouping key whose groups have
    very different sizes, or duplicate-heavy join keys) can overflow a
    buffer.  A real system re-spills in that case; here the retry
    re-runs the pass with doubled slack — the repeated input sweep is
    the measured re-spill cost.  Terminates because the slack term
    eventually covers the whole input."""
    slack = 6.0
    while True:
        try:
            return partition(db, col, m, slack_sigmas=slack,
                             key_func=key_func)
        except RuntimeError:
            slack *= 2


class GraceJoinResult:
    """The pieces of one grace hash join: per-partition output columns
    plus the partitioned operands (whose cluster columns key-recovery
    needs)."""

    def __init__(self, outputs: list[Column], outer_parts: Partitions,
                 inner_parts: Partitions, partitions: int) -> None:
        self.outputs = outputs
        self.outer_parts = outer_parts
        self.inner_parts = inner_parts
        self.partitions = partitions

    @property
    def n(self) -> int:
        return sum(out.n for out in self.outputs)


def grace_hash_join(db: Database, outer: Column, inner: Column,
                    memory_budget: int, output_name: str = "W",
                    max_load: float = DEFAULT_HASH_MAX_LOAD
                    ) -> GraceJoinResult | tuple[Column, None]:
    """Hash-join with the build table capped at ``memory_budget`` bytes.

    Partitions both inputs ``m``-ways (``m`` the shared
    :func:`~repro.core.spill_partition_count` policy over the
    capacity-rounded build table) and hash-joins matching pairs.  With
    ``m == 1`` this *is* a plain in-memory hash join and a
    ``(output column, None)`` pair is returned; otherwise a
    :class:`GraceJoinResult`.
    """
    if db.execution != "scalar":
        from .vectorized import grace_hash_join_v
        return grace_hash_join_v(db, outer, inner, memory_budget,
                                 output_name=output_name, max_load=max_load)
    table_bytes = hash_table_region(inner.region(), ENTRY_WIDTH,
                                    max_load=max_load).size
    m = spill_partition_count(table_bytes, memory_budget)
    m = max(1, min(m, outer.n, inner.n))
    if m <= 1:
        out, _ = hash_join(db, outer, inner, output_name=output_name,
                           max_load=max_load)
        return out, None
    outer_parts = _partition_with_retry(db, outer, m)
    inner_parts = _partition_with_retry(db, inner, m)
    # Per-partition tables are sized uniformly from the *planned*
    # cluster capacity (the shared partition_capacity policy), not each
    # cluster's actual fill: binomial fill variance would otherwise
    # double a table whenever a cluster crosses a power-of-two
    # boundary, decoupling the execution from its pattern description.
    planned = partition_capacity(inner.n, m)
    mem = db.mem
    outputs: list[Column] = []
    for j, (outer_col, inner_col) in enumerate(zip(outer_parts, inner_parts)):
        # max() only matters after a skew retry widened the buffers:
        # an overfull cluster still gets a table it fits in.
        table = SimHashTable(db, n=max(planned, inner_col.n),
                             max_load=max_load, name=f"H[{j}]")
        for i in range(inner_col.n):
            mem.access(inner_col.item_address(i), inner_col.width)
            table.insert(inner_col.values[i], i)
        outputs.append(probe_join(
            db, outer_col, table,
            output_name=f"{output_name}[{j}]",
            output_capacity=max(outer_col.n, inner_col.n, 1)))
    return GraceJoinResult(outputs, outer_parts, inner_parts, m)


def spilling_hash_aggregate(db: Database, col: Column, memory_budget: int,
                            groups_hint: int | None = None,
                            output_name: str = "agg",
                            key_of=None) -> Column:
    """Group-count with the group table capped at ``memory_budget``
    bytes.

    Partitions the input by (extracted) grouping key until each
    per-partition group table fits the budget, then hash-aggregates
    every partition; a key meets all its duplicates inside one
    partition, so concatenating the per-partition results is the exact
    group count (in partition-then-table order rather than plain
    :func:`~repro.db.hash_aggregate`'s table order).
    """
    if db.execution != "scalar":
        from .vectorized import spilling_hash_aggregate_v
        return spilling_hash_aggregate_v(db, col, memory_budget,
                                         groups_hint=groups_hint,
                                         output_name=output_name,
                                         key_of=key_of)
    hint = groups_hint or max(1, col.n)
    table_bytes = hash_table_region(
        DataRegion("G", n=hint, w=ENTRY_WIDTH), ENTRY_WIDTH,
        max_load=DEFAULT_HASH_MAX_LOAD, name="G").size
    m = spill_partition_count(table_bytes, memory_budget)
    m = max(1, min(m, col.n, hint))
    if m <= 1:
        return hash_aggregate(db, col, groups_hint=hint,
                              output_name=output_name, key_of=key_of)
    extract = key_of or (lambda value: value)
    parts = _partition_with_retry(
        db, col, m,
        key_func=lambda value, mm: partition_key(extract(value), mm))
    per_part_hint = -(-hint // m)  # ceil
    pieces: list[Column] = []
    for j, part in enumerate(parts):
        if part.n == 0:
            continue
        pieces.append(hash_aggregate(db, part,
                                     groups_hint=per_part_hint,
                                     output_name=f"{output_name}[{j}]",
                                     key_of=key_of))
    values: list = []
    for piece in pieces:
        values.extend(piece.values)
    # The per-partition outputs already live in simulated memory; this
    # combined column is a zero-copy view for the consumer (same
    # convention as the partitioned hash join's combined output).
    return db.create_column(output_name, values, width=ENTRY_WIDTH)
