"""A B+-tree index over simulated memory.

The paper models trees as regions ("more complex structures like trees
are modeled by regions with R.n representing the number of nodes and
R.w the size of a single node", Section 3.1), and a batch of index
lookups as random accesses into that region — each probe touches a
root-to-leaf path of ``height`` nodes, i.e. ``r_acc(height * lookups,
tree)``.  The node size is a tuning knob: cache-line-sized nodes are the
cache-conscious design of Rao/Ross [RR99, RR00] cited in the paper's
introduction.

The tree stores (key, payload) pairs, keys need not be unique.  Nodes
live back-to-back in one allocation, so the tree is one contiguous
region whose geometry the cost model can describe.
"""

from __future__ import annotations

import bisect
import math

from ..core.patterns import Conc, Pattern, RAcc, STrav
from ..core.regions import DataRegion
from .column import Column
from .context import Database

__all__ = ["SimBTree", "index_nested_loop_join", "btree_lookup_pattern"]


class _Node:
    __slots__ = ("keys", "children", "payloads", "index")

    def __init__(self, index: int, leaf: bool) -> None:
        self.index = index
        self.keys: list[int] = []
        self.children: list[_Node] | None = None if leaf else []
        self.payloads: list[list] | None = [] if leaf else None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class SimBTree:
    """A bulk-loaded B+-tree with fixed-size nodes in simulated memory.

    Parameters
    ----------
    db:
        Execution context.
    node_bytes:
        Size of one node (``R.w`` of the tree region).  16 bytes per
        (key, pointer/payload) slot; ``node_bytes=128`` matches an L2
        line on the Origin2000 (the cache-conscious choice).
    """

    SLOT_BYTES = 16

    def __init__(self, db: Database, keys_payloads: list[tuple[int, object]],
                 node_bytes: int = 128, name: str = "T") -> None:
        if not keys_payloads:
            raise ValueError("cannot build an index over nothing")
        if node_bytes < 2 * self.SLOT_BYTES:
            raise ValueError("a node must hold at least two slots")
        self.db = db
        self.name = name
        self.node_bytes = node_bytes
        self.fanout = node_bytes // self.SLOT_BYTES

        pairs = sorted(keys_payloads, key=lambda kp: kp[0])
        self._nodes: list[_Node] = []
        self.root = self._bulk_load(pairs)
        self.height = self._height(self.root)
        self.address = db.allocator.allocate(
            len(self._nodes) * node_bytes, alignment=node_bytes
        )

    # ------------------------------------------------------------------
    def _new_node(self, leaf: bool) -> _Node:
        node = _Node(index=len(self._nodes), leaf=leaf)
        self._nodes.append(node)
        return node

    def _bulk_load(self, pairs) -> _Node:
        # Leaves: fanout-sized runs of (key -> payload list).
        leaves: list[_Node] = []
        i = 0
        while i < len(pairs):
            leaf = self._new_node(leaf=True)
            while i < len(pairs) and len(leaf.keys) < self.fanout:
                key = pairs[i][0]
                bucket: list = []
                while i < len(pairs) and pairs[i][0] == key:
                    bucket.append(pairs[i][1])
                    i += 1
                leaf.keys.append(key)
                leaf.payloads.append(bucket)
            leaves.append(leaf)
        # Inner levels: separator = first key of each child.
        level = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            j = 0
            while j < len(level):
                parent = self._new_node(leaf=False)
                group = level[j:j + self.fanout]
                parent.children = group
                parent.keys = [child.keys[0] for child in group]
                parents.append(parent)
                j += self.fanout
            level = parents
        return level[0]

    def _height(self, node: _Node) -> int:
        height = 1
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def size(self) -> int:
        return self.num_nodes * self.node_bytes

    def region(self) -> DataRegion:
        """The tree as a data region: ``R.n`` nodes of ``R.w`` bytes."""
        return DataRegion(name=self.name, n=self.num_nodes, w=self.node_bytes)

    def _touch(self, node: _Node) -> None:
        self.db.mem.access(self.address + node.index * self.node_bytes,
                           self.node_bytes)

    def lookup(self, key: int) -> list:
        """All payloads under ``key`` (walks one root-to-leaf path)."""
        node = self.root
        self._touch(node)
        while not node.is_leaf:
            slot = bisect.bisect_right(node.keys, key) - 1
            node = node.children[max(0, slot)]
            self._touch(node)
        slot = bisect.bisect_left(node.keys, key)
        if slot < len(node.keys) and node.keys[slot] == key:
            return list(node.payloads[slot])
        return []

    @classmethod
    def build(cls, db: Database, col: Column, node_bytes: int = 128,
              name: str | None = None) -> "SimBTree":
        """Index a column (payload = row index); the build reads the
        column sequentially (the sort is charged to the caller, as for
        merge join)."""
        mem = db.mem
        pairs = []
        for i in range(col.n):
            mem.access(col.item_address(i), col.width)
            pairs.append((col.values[i], i))
        return cls(db, pairs, node_bytes=node_bytes,
                   name=name or f"T({col.name})")


def index_nested_loop_join(db: Database, outer: Column, tree: SimBTree,
                           output_name: str = "W",
                           output_capacity: int | None = None) -> Column:
    """Join by probing the index once per outer item."""
    from .join import OUTPUT_WIDTH

    mem = db.mem
    capacity = max(1, output_capacity or outer.n)
    out = db.allocate_column(output_name, n=capacity, width=OUTPUT_WIDTH,
                             fill=(0, 0))
    count = 0
    for i in range(outer.n):
        key = outer.read(mem, i)
        for payload in tree.lookup(key):
            if count >= len(out.values):
                raise RuntimeError("join output capacity exceeded")
            out.write(mem, count, (i, payload))
            count += 1
    out.values = out.values[:count]
    return out


def btree_lookup_pattern(U: DataRegion, tree: DataRegion, height: int,
                         W: DataRegion, fanout: int | None = None) -> Pattern:
    """Index-nested-loop join pattern.

    Every probe walks one root-to-leaf path: one random hit *per tree
    level*.  Each level is modelled as its own sub-region of the tree
    (root: 1 node, then fanout-growing levels, leaves taking the rest)::

        inl_join(U,T,W) = s_trav+(U) ⊙ r_acc(U.n, T.lvl0) ⊙ ...
                          ⊙ r_acc(U.n, T.lvl{h-1}) ⊙ s_trav+(W)

    This captures the access skew that makes B-trees cache-friendly:
    the upper levels are tiny, quickly resident, and absorb most of the
    hits — only the leaf level pays random misses.  (A single uniform
    ``r_acc`` over the whole tree region misses this and over-predicts
    by 2-3x.)
    """
    if height < 1:
        raise ValueError("height must be positive")
    if fanout is None:
        fanout = max(2, round(tree.n ** (1.0 / height)))
    sizes: list[int] = []
    count = 1
    for _ in range(height - 1):
        sizes.append(min(count, tree.n))
        count *= fanout
    upper = sum(sizes)
    sizes.append(max(1, tree.n - upper))
    parts: list[Pattern] = [STrav(U)]
    for lvl, size in enumerate(sizes):
        level_region = tree.subregion(f"{tree.name}.lvl{lvl}", n=size)
        parts.append(RAcc(level_region, r=U.n))
    parts.append(STrav(W))
    return Conc.of(*parts)
