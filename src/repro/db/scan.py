"""Unary pipeline operators: scan, select, project.

Each operator is implemented exactly as its Table 2 pattern describes:
a sequential input cursor and (where there is output) a sequential output
cursor; ``u`` — the bytes actually used per input item — surfaces as the
``used_bytes`` argument.
"""

from __future__ import annotations

from typing import Callable

from .column import Column
from .context import Database

__all__ = ["scan", "select", "project"]


def scan(db: Database, col: Column, used_bytes: int | None = None) -> int:
    """Sequential sweep over a column; returns a checksum so the work is
    observable.  Pattern: ``s_trav+(U[, u])``."""
    if db.execution != "scalar":
        from .vectorized import scan_v
        return scan_v(db, col, used_bytes)
    mem = db.mem
    u = used_bytes or col.width
    if u > col.width:
        raise ValueError("used_bytes exceeds the item width")
    checksum = 0
    for i in range(col.n):
        mem.access(col.item_address(i), u)
        checksum = (checksum + col.values[i]) & 0xFFFFFFFF
    return checksum


def select(db: Database, col: Column, predicate: Callable[[int], bool],
           output_name: str = "sel") -> Column:
    """Filter a column; sequential input and output cursors.
    Pattern: ``s_trav+(U) ⊙ s_trav+(W)``."""
    if db.execution != "scalar":
        from .vectorized import select_v
        return select_v(db, col, predicate, output_name=output_name)
    mem = db.mem
    out = db.allocate_column(output_name, n=max(1, col.n), width=col.width)
    count = 0
    for i in range(col.n):
        value = col.read(mem, i)
        if predicate(value):
            out.write(mem, count, value)
            count += 1
    out.values = out.values[:count]
    return out


def project(db: Database, col: Column, used_bytes: int,
            output_width: int | None = None,
            output_name: str = "prj") -> Column:
    """Copy ``used_bytes`` of every item to a narrower output column.
    Pattern: ``s_trav+(U, u) ⊙ s_trav+(W)``."""
    if db.execution != "scalar":
        from .vectorized import project_v
        return project_v(db, col, used_bytes, output_width=output_width,
                         output_name=output_name)
    if not 1 <= used_bytes <= col.width:
        raise ValueError("used_bytes must be within the item width")
    mem = db.mem
    width = output_width or used_bytes
    out = db.allocate_column(output_name, n=col.n, width=width)
    for i in range(col.n):
        mem.access(col.item_address(i), used_bytes)
        out.write(mem, i, col.values[i])
    return out
