"""Execution context: simulated memory plus address allocation.

A :class:`Database` bundles the pieces every operator needs — the
hierarchy profile, the trace-driven :class:`MemorySystem`, and the bump
allocator that places columns in the simulated address space — and offers
the measurement helpers the experiments use (snapshot deltas around an
operator run, the software analogue of reading hardware counters).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from ..hardware.hierarchy import MemoryHierarchy
from ..simulator.counters import CounterSnapshot
from ..simulator.memory import MemorySystem
from .allocator import Allocator
from .column import Column

__all__ = ["Database"]


class Database:
    """A tiny column-oriented main-memory engine instance."""

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        self.mem = MemorySystem(hierarchy)
        self.allocator = Allocator()
        #: named-table catalog: the columns query frontends resolve by
        #: name.  Registration is explicit (see :meth:`register`) so
        #: intermediate results never shadow base tables.
        self.catalog: dict[str, Column] = {}
        # Active per-operator measurement collector (None outside a
        # :meth:`operator_measurement` block); plan nodes report their
        # inclusive counter deltas here.
        self._operator_probe: list | None = None
        #: execution mode for the db-layer operators: ``"scalar"``
        #: (item-at-a-time, the historical behaviour and the default for
        #: direct db-level calls) or ``"vectorized"`` (chunked kernels
        #: with range-coalesced simulator reporting — identical counters
        #: and results, much faster wall-clock).  The query layer scopes
        #: this per plan execution via :meth:`execution_scope`.
        self.execution = "scalar"

    # ------------------------------------------------------------------
    def register(self, column: Column, name: str | None = None) -> Column:
        """Register a column in the named-table catalog (under its own
        name by default).  Re-registering a name rebinds it."""
        self.catalog[name or column.name] = column
        return column

    def column(self, name: str) -> Column:
        """Look up a registered table/column by name."""
        try:
            return self.catalog[name]
        except KeyError:
            known = ", ".join(sorted(self.catalog)) or "none registered"
            raise KeyError(
                f"no registered table {name!r} (known: {known})") from None

    def set_hierarchy(self, hierarchy: MemoryHierarchy) -> None:
        """Switch to a new (e.g. re-calibrated) machine profile in
        place.  The address space, catalog, and column contents all
        survive; the trace-driven memory system restarts cold against
        the new hierarchy."""
        self.hierarchy = hierarchy
        self.mem = MemorySystem(hierarchy)

    # ------------------------------------------------------------------
    def create_column(self, name: str, values: Sequence, width: int = 8,
                      alignment: int | None = None) -> Column:
        """Materialise values as a column in simulated memory.

        Creation itself is *not* measured (the experiments measure the
        operators, not the loader), so no accesses are simulated here.
        """
        values = list(values)
        address = self.allocator.allocate(
            max(1, len(values)) * width, alignment=alignment
        )
        return Column(name=name, width=width, address=address, values=values)

    def allocate_column(self, name: str, n: int, width: int = 8,
                        fill=0, alignment: int | None = None) -> Column:
        """Pre-allocate an output column of ``n`` items."""
        if n < 1:
            raise ValueError("n must be positive")
        return self.create_column(name, [fill] * n, width=width, alignment=alignment)

    # ------------------------------------------------------------------
    def execute(self, plan) -> Column:
        """Run a physical plan (a :class:`~repro.query.QueryPlan` or any
        plan node) against this database and return its result column.

        The executor entry point: plans are duck-typed (anything with an
        ``execute(db)`` method), so the db layer needs no dependency on
        the query layer."""
        return plan.execute(self)

    def execute_measured(self, plan,
                         cold: bool = True) -> "tuple[Column, CounterSnapshot]":
        """Run a plan and return ``(result, counter delta)``.

        ``cold=True`` (the default) resets caches and counters first, so
        the delta is the plan's full cold-cache cost — the setting the
        model's empty-initial-state assumption (Section 4.5) describes.
        """
        if cold:
            self.reset()
        with self.measure() as result:
            out = plan.execute(self)
        return out, result[0]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Cold caches and zeroed counters (address space is kept)."""
        self.mem.reset()

    @contextmanager
    def execution_scope(self, mode: str) -> Iterator[None]:
        """Run the block under the given execution mode::

            with db.execution_scope("vectorized"):
                quick_sort(db, column)

        Restores the previous mode on exit (scopes nest).  Counters and
        results are identical across modes by construction; only the
        Python wall-clock differs.
        """
        if mode not in ("scalar", "vectorized"):
            raise ValueError(
                f"execution mode must be 'scalar' or 'vectorized', got {mode!r}")
        previous = self.execution
        self.execution = mode
        try:
            yield
        finally:
            self.execution = previous

    @contextmanager
    def operator_measurement(self) -> Iterator[list]:
        """Collect per-operator counter deltas inside the block.

        While active, every plan-operator execution (any node whose
        ``execute`` runs against this database — see
        :meth:`repro.query.PlanNode.execute`) appends an
        ``(operator, inclusive counter delta)`` pair to the yielded
        list, children included in the delta.  The scoped-measurement
        substrate of :func:`repro.query.measure_plan`; nests and
        restores any outer collector on exit."""
        records: list = []
        previous = self._operator_probe
        self._operator_probe = records
        try:
            yield records
        finally:
            self._operator_probe = previous

    @contextmanager
    def measure(self) -> Iterator[list[CounterSnapshot]]:
        """Measure the counter delta around a block::

            with db.measure() as result:
                quick_sort(db, column)
            delta = result[0]

        The yielded list receives exactly one element — the difference of
        the after/before snapshots — once the block exits.
        """
        result: list[CounterSnapshot] = []
        before = self.mem.snapshot()
        yield result
        after = self.mem.snapshot()
        result.append(after - before)
