"""Multi-pass radix partitioning (the [MBK00a] optimization).

Figure 7d shows single-pass partitioning thrashing once the cluster
count ``m`` exceeds a level's line/entry count.  The companion work the
paper builds on (Manegold/Boncz/Kersten, "Optimizing database
architecture for the new bottleneck") fixes this by clustering in
*multiple passes*: each pass splits by at most ``fanout`` clusters (kept
at or below the smallest line/entry count), revisiting its input
sequentially.  P passes produce ``fanout^P`` clusters while every pass
stays below every thrashing threshold.

The access pattern of one pass is exactly the Table 2 ``partition``
pattern; the whole operation is their ``⊕``-sequence, so the cost model
prices multi-pass vs single-pass clustering with no new machinery —
bench ``bench_ext_radix.py`` reproduces the crossover where two cheap
passes beat one thrashing pass.
"""

from __future__ import annotations

import math

from ..core.algorithms import partition_pattern
from ..core.patterns import Pattern, Seq
from ..core.regions import DataRegion
from .column import Column
from .context import Database
from .partition import Partitions, partition

__all__ = [
    "radix_bits",
    "radix_partition",
    "radix_partition_pattern",
    "recommended_fanout",
]


def radix_bits(m: int) -> int:
    """Number of key bits needed to address ``m`` clusters."""
    if m < 1:
        raise ValueError("m must be positive")
    return max(1, math.ceil(math.log2(m)))


def recommended_fanout(hierarchy) -> int:
    """Largest per-pass fanout that avoids thrashing every level:
    the smallest line/entry count in the hierarchy (Figure 7d's rule)."""
    return max(2, min(level.num_lines for level in hierarchy.all_levels))


def radix_partition(db: Database, col: Column, m: int,
                    fanout: int | None = None,
                    output_name: str | None = None) -> Partitions:
    """Partition ``col`` into ``m`` clusters in several bounded passes.

    Each pass re-clusters every current cluster by at most ``fanout``
    ways; ``fanout`` defaults to the machine-derived recommendation.
    The clustering is hierarchical (pass p refines pass p-1), so two
    operands radix-partitioned with the same parameters get matching
    clusters — which is what partitioned joins need.  Keys are assumed
    roughly uniform (clusters must stay non-empty so both operands
    refine to the same cluster count).
    """
    if m < 1:
        raise ValueError("m must be positive")
    if m > col.n:
        raise ValueError("more partitions than items")
    fanout = fanout or recommended_fanout(db.hierarchy)
    if fanout < 2:
        raise ValueError("fanout must be at least 2")
    name = output_name or f"RP({col.name})"

    # Pass p consumes its own digit of the hash value, so the passes
    # compose into a single m-way clustering.
    def digit_key(pass_index: int, ways: int):
        shift = 8 * pass_index  # 8 hash bits per pass (fanout <= 256)
        def key(value: int, m_ways: int, _shift=shift) -> int:
            return ((value * 0x9E3779B97F4A7C15) >> (16 + _shift)) % m_ways
        return key

    if fanout > 256:
        fanout = 256
    passes = max(1, math.ceil(math.log(m, fanout)))
    current = [col]
    remaining = m
    for p in range(passes):
        ways = min(fanout, remaining)
        refined: list[Column] = []
        for j, cluster in enumerate(current):
            if cluster.n < ways:
                raise RuntimeError(
                    f"pass {p}: cluster {j} holds only {cluster.n} items; "
                    f"radix partitioning needs roughly uniform keys"
                )
            step = partition(db, cluster, ways,
                             output_name=f"{name}.p{p}[{j}]",
                             key_func=digit_key(p, ways))
            refined.extend(step.clusters)
        current = refined
        remaining = math.ceil(remaining / ways)
    region = DataRegion(name=name, n=max(1, sum(c.n for c in current)),
                        w=col.width)
    return Partitions(source_name=col.name, clusters=current, region=region)


def radix_partition_pattern(U: DataRegion, m: int, fanout: int) -> Pattern:
    """The multi-pass pattern: one Table 2 ``partition`` pattern per
    pass, ``⊕``-combined; pass p reads the previous pass's output."""
    if fanout < 2:
        raise ValueError("fanout must be at least 2")
    passes = max(1, math.ceil(math.log(max(2, m), fanout)))
    parts: list[Pattern] = []
    source = U
    for p in range(passes):
        ways = min(fanout, m)
        target = DataRegion(f"{U.name}.pass{p}", n=U.n, w=U.w)
        parts.append(partition_pattern(source, target, ways))
        source = target
    return Seq.of(*parts)
