"""Columns and tables over the simulated memory.

The engine is column-oriented in the spirit of Monet (the paper's
experimentation platform): a :class:`Column` is a contiguous array of
fixed-width items at a simulated address; every read or write of an item
is reported to the :class:`~repro.simulator.MemorySystem` before the
Python-level value is touched, so the simulator observes the operator's
true access trace.

Since the vectorized execution engine, integer columns are *really*
contiguous: values live in an :class:`IntVector` — a 64-bit
:class:`array.array` subclass — so chunked kernels iterate machine
integers in one flat buffer instead of a list of boxed objects, and the
optional numpy fast path (:func:`as_numpy`, gated by the
``REPRO_NUMPY`` environment flag) can view the same bytes zero-copy.
Columns holding non-integer values (the ``(outer, inner)`` pair outputs
of joins and aggregates) transparently fall back to a plain list.

A column maps 1:1 onto a cost-model :class:`~repro.core.DataRegion`
(length = cardinality, width = item size), which is how measured and
predicted costs are connected.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Sequence

from ..core.regions import DataRegion
from ..simulator.memory import MemorySystem

__all__ = ["Column", "IntVector", "Table", "as_numpy"]


class IntVector(array):
    """A contiguous vector of signed 64-bit integers.

    The storage type of integer columns: one flat C buffer (8 bytes per
    item, the default column width) instead of a list of boxed Python
    ints.  Compares equal to lists and tuples holding the same values,
    so the column API is unchanged for consumers.
    """

    def __new__(cls, values: Iterable = ()) -> "IntVector":
        return super().__new__(cls, "q", values)

    def __eq__(self, other):
        if isinstance(other, array):
            return array.__eq__(self, other)
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    # Mutable sequence with value-based equality.
    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IntVector({self.tolist()!r})"


def as_numpy(vector):
    """A zero-copy ``int64`` numpy view of an :class:`IntVector`.

    Returns ``None`` unless the ``REPRO_NUMPY`` environment flag is set
    *and* numpy is importable *and* ``vector`` is contiguous integer
    storage — the library itself has no runtime dependencies, so numpy
    only ever accelerates, never gates, execution.
    """
    if not os.environ.get("REPRO_NUMPY"):
        return None
    if not isinstance(vector, array) or vector.typecode != "q" or not len(vector):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is optional
        return None
    return numpy.frombuffer(vector, dtype=numpy.int64)


class Column:
    """A fixed-width column at a simulated address.

    Parameters
    ----------
    name:
        Column identifier (also used for the derived region).
    width:
        Item width in bytes (the region's ``R.w``).
    address:
        Simulated start address (line/page alignment matters!).
    values:
        Backing Python values; the column owns them.  Integer values
        are stored in a contiguous :class:`IntVector`; anything else
        (join-result pairs, ...) keeps a plain list.
    """

    __slots__ = ("name", "width", "address", "_values")

    def __init__(self, name: str, width: int, address: int,
                 values) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        if address < 0:
            raise ValueError("address must be non-negative")
        self.name = name
        self.width = width
        self.address = address
        self.values = values

    # ------------------------------------------------------------------
    @property
    def values(self):
        """The backing storage (:class:`IntVector` for integer columns,
        a list otherwise)."""
        return self._values

    @values.setter
    def values(self, new_values) -> None:
        if type(new_values) is IntVector:
            self._values = new_values
            return
        try:
            self._values = IntVector(new_values)
        except (TypeError, ValueError, OverflowError):
            # Non-integer payloads (pairs) or out-of-64-bit values.
            self._values = list(new_values)

    @property
    def n(self) -> int:
        return len(self._values)

    @property
    def size(self) -> int:
        """Bytes occupied: ``n * width``."""
        return self.n * self.width

    def item_address(self, index: int) -> int:
        return self.address + index * self.width

    def region(self, parent: DataRegion | None = None) -> DataRegion:
        """The cost-model region describing this column.

        An empty column (a join with no matches) is described as a
        one-item region — regions are never empty in the paper's model.
        """
        return DataRegion(name=self.name, n=max(1, self.n), w=self.width,
                          parent=parent)

    # ------------------------------------------------------------------
    def read(self, mem: MemorySystem, index: int, nbytes: int | None = None):
        """Read item ``index`` (touching ``nbytes`` of it, default all)."""
        mem.access(self.item_address(index), nbytes or self.width)
        return self._values[index]

    def write(self, mem: MemorySystem, index: int, value,
              nbytes: int | None = None) -> None:
        """Write item ``index``."""
        mem.access(self.item_address(index), nbytes or self.width, write=True)
        try:
            self._values[index] = value
        except (TypeError, OverflowError):
            # A non-integer value written into contiguous integer
            # storage (e.g. partitioning pair-valued intermediates):
            # demote the backing to a plain list and retry.
            self._values = list(self._values)
            self._values[index] = value

    def swap(self, mem: MemorySystem, i: int, j: int) -> None:
        """Swap two items (one read + one write per side)."""
        width = self.width
        mem.access(self.item_address(i), width)
        mem.access(self.item_address(j), width)
        mem.access(self.item_address(i), width, write=True)
        mem.access(self.item_address(j), width, write=True)
        values = self._values
        values[i], values[j] = values[j], values[i]

    def peek(self, index: int):
        """Read a value *without* simulating an access (test/debug only)."""
        return self._values[index]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Column({self.name}, n={self.n}, w={self.width}, @{self.address})"


class Table:
    """A set of equally long columns (a BAT-style binary table when it
    has exactly ``head`` and ``tail`` columns)."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        columns = list(columns)
        if not columns:
            raise ValueError("a table needs at least one column")
        cardinality = columns[0].n
        for col in columns:
            if col.n != cardinality:
                raise ValueError(
                    f"column {col.name} has {col.n} items, expected {cardinality}"
                )
        self.name = name
        self.columns = {col.name: col for col in columns}
        if len(self.columns) != len(columns):
            raise ValueError("duplicate column names")

    @property
    def n(self) -> int:
        return next(iter(self.columns.values())).n

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name} has no column {name!r}") from None

    def __repr__(self) -> str:
        cols = ", ".join(self.columns)
        return f"Table({self.name}: {cols}; n={self.n})"
