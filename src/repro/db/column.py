"""Columns and tables over the simulated memory.

The engine is column-oriented in the spirit of Monet (the paper's
experimentation platform): a :class:`Column` is a contiguous array of
fixed-width items at a simulated address; every read or write of an item
is reported to the :class:`~repro.simulator.MemorySystem` before the
Python-level value is touched, so the simulator observes the operator's
true access trace.

A column maps 1:1 onto a cost-model :class:`~repro.core.DataRegion`
(length = cardinality, width = item size), which is how measured and
predicted costs are connected.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.regions import DataRegion
from ..simulator.memory import MemorySystem

__all__ = ["Column", "Table"]


class Column:
    """A fixed-width column at a simulated address.

    Parameters
    ----------
    name:
        Column identifier (also used for the derived region).
    width:
        Item width in bytes (the region's ``R.w``).
    address:
        Simulated start address (line/page alignment matters!).
    values:
        Backing Python values; the list is owned by the column.
    """

    __slots__ = ("name", "width", "address", "values")

    def __init__(self, name: str, width: int, address: int,
                 values: list) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        if address < 0:
            raise ValueError("address must be non-negative")
        self.name = name
        self.width = width
        self.address = address
        self.values = values

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def size(self) -> int:
        """Bytes occupied: ``n * width``."""
        return self.n * self.width

    def item_address(self, index: int) -> int:
        return self.address + index * self.width

    def region(self, parent: DataRegion | None = None) -> DataRegion:
        """The cost-model region describing this column.

        An empty column (a join with no matches) is described as a
        one-item region — regions are never empty in the paper's model.
        """
        return DataRegion(name=self.name, n=max(1, self.n), w=self.width,
                          parent=parent)

    # ------------------------------------------------------------------
    def read(self, mem: MemorySystem, index: int, nbytes: int | None = None):
        """Read item ``index`` (touching ``nbytes`` of it, default all)."""
        mem.access(self.item_address(index), nbytes or self.width)
        return self.values[index]

    def write(self, mem: MemorySystem, index: int, value,
              nbytes: int | None = None) -> None:
        """Write item ``index``."""
        mem.access(self.item_address(index), nbytes or self.width, write=True)
        self.values[index] = value

    def swap(self, mem: MemorySystem, i: int, j: int) -> None:
        """Swap two items (one read + one write per side)."""
        width = self.width
        mem.access(self.item_address(i), width)
        mem.access(self.item_address(j), width)
        mem.access(self.item_address(i), width, write=True)
        mem.access(self.item_address(j), width, write=True)
        values = self.values
        values[i], values[j] = values[j], values[i]

    def peek(self, index: int):
        """Read a value *without* simulating an access (test/debug only)."""
        return self.values[index]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Column({self.name}, n={self.n}, w={self.width}, @{self.address})"


class Table:
    """A set of equally long columns (a BAT-style binary table when it
    has exactly ``head`` and ``tail`` columns)."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        columns = list(columns)
        if not columns:
            raise ValueError("a table needs at least one column")
        cardinality = columns[0].n
        for col in columns:
            if col.n != cardinality:
                raise ValueError(
                    f"column {col.name} has {col.n} items, expected {cardinality}"
                )
        self.name = name
        self.columns = {col.name: col for col in columns}
        if len(self.columns) != len(columns):
            raise ValueError("duplicate column names")

    @property
    def n(self) -> int:
        return next(iter(self.columns.values())).n

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name} has no column {name!r}") from None

    def __repr__(self) -> str:
        cols = ", ".join(self.columns)
        return f"Table({self.name}: {cols}; n={self.n})"
