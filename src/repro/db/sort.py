"""In-place quick-sort with the paper's two-cursor partitioning pass.

"Quick-sort uses two cursors, one starting at the front and the other
starting at the end.  Both cursors sequentially walk towards each other
swapping data items where necessary, until they meet in the middle"
(Section 6.2) — i.e. a Hoare partition.  Recursion then proceeds
depth-first on both parts.  The access trace this produces is exactly the
compound pattern :func:`repro.core.quick_sort_pattern` describes.
"""

from __future__ import annotations

from .column import Column
from .context import Database

__all__ = ["quick_sort", "is_sorted"]

#: Sub-arrays of at most this many items are finished with insertion
#: sort, like production quick-sorts; the threshold is small enough not
#: to disturb the modelled pattern.
INSERTION_THRESHOLD = 8


def quick_sort(db: Database, col: Column) -> None:
    """Sort a column in place (ascending)."""
    if db.execution != "scalar":
        from .vectorized import quick_sort_v
        return quick_sort_v(db, col)
    mem = db.mem
    values = col.values
    width = col.width
    base = col.address

    def read(i: int) -> int:
        mem.access(base + i * width, width)
        return values[i]

    def swap(i: int, j: int) -> None:
        mem.access(base + i * width, width, write=True)
        mem.access(base + j * width, width, write=True)
        values[i], values[j] = values[j], values[i]

    # Explicit stack: recursion depth is O(log n) in expectation but the
    # adversarial worst case is O(n).
    stack: list[tuple[int, int]] = [(0, col.n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo + 1 <= INSERTION_THRESHOLD:
            _insertion_sort(mem, col, lo, hi)
            continue
        split = _hoare_partition(read, swap, values, lo, hi)
        # Push the larger side first so the smaller is processed next,
        # bounding the stack at O(log n).
        if split - lo > hi - split - 1:
            stack.append((lo, split))
            stack.append((split + 1, hi))
        else:
            stack.append((split + 1, hi))
            stack.append((lo, split))


def _hoare_partition(read, swap, values, lo: int, hi: int) -> int:
    """The two-cursor partitioning pass of Section 6.2."""
    pivot = values[(lo + hi) // 2]
    i = lo - 1
    j = hi + 1
    while True:
        i += 1
        while read(i) < pivot:
            i += 1
        j -= 1
        while read(j) > pivot:
            j -= 1
        if i >= j:
            return j
        swap(i, j)


def _insertion_sort(mem, col: Column, lo: int, hi: int) -> None:
    values = col.values
    width = col.width
    base = col.address
    for i in range(lo + 1, hi + 1):
        mem.access(base + i * width, width)
        current = values[i]
        j = i - 1
        while j >= lo:
            mem.access(base + j * width, width)
            if values[j] <= current:
                break
            mem.access(base + (j + 1) * width, width, write=True)
            values[j + 1] = values[j]
            j -= 1
        mem.access(base + (j + 1) * width, width, write=True)
        values[j + 1] = current


def is_sorted(col: Column) -> bool:
    """Verification helper (no simulated accesses)."""
    values = col.values
    return all(values[i] <= values[i + 1] for i in range(len(values) - 1))
