"""Concurrent workload service: interference-aware scheduling via ⊙.

The paper's concurrent-execution operator ``⊙`` (Section 5.2) models
access patterns competing for a cache, dividing its capacity
proportionally to the patterns' footprints.  PR 1 applied it *within*
one query (pipelined producer/consumer edges); this subsystem applies
it *between* queries: composing the whole-plan patterns of queries that
are to run concurrently under one ``⊙`` predicts the batch's contention
slowdown — and a scheduler that trusts the prediction can decide which
queries may share the machine.

* :mod:`repro.service.workload` — deterministic seeded multi-client
  query streams over a shared :class:`~repro.session.Session` catalog,
* :mod:`repro.service.interference` — the ⊙ co-run cost model
  (:class:`InterferenceModel`, :class:`CoRunPrediction`),
* :mod:`repro.service.scheduler` — admission control and batch
  selection (:class:`FifoSerialPolicy`, :class:`MaxParallelPolicy`,
  :class:`InterferenceAwarePolicy`),
* :mod:`repro.service.executor` — the simulated-time multi-client
  executor (record each plan's access trace, replay co-run batches
  interleaved through one shared memory system),
* :mod:`repro.service.metrics` — per-query/per-batch metrics and the
  rendered :class:`WorkloadReport`.
"""

from .executor import ServiceExecutor, TraceRecorder, replay_interleaved
from .interference import CoRunPrediction, InterferenceModel
from .metrics import BatchMetrics, QueryMetrics, WorkloadReport, percentile
from .scheduler import (
    FifoSerialPolicy,
    InterferenceAwarePolicy,
    MaxParallelPolicy,
    SchedulePolicy,
    Task,
)
from .workload import (
    WorkloadGenerator,
    WorkloadQuery,
    poisson_gaps,
    stamp_arrivals,
)

__all__ = [
    "WorkloadGenerator",
    "WorkloadQuery",
    "poisson_gaps",
    "stamp_arrivals",
    "InterferenceModel",
    "CoRunPrediction",
    "SchedulePolicy",
    "FifoSerialPolicy",
    "MaxParallelPolicy",
    "InterferenceAwarePolicy",
    "Task",
    "ServiceExecutor",
    "TraceRecorder",
    "replay_interleaved",
    "QueryMetrics",
    "BatchMetrics",
    "WorkloadReport",
    "percentile",
]
