"""Admission control and co-run batch selection.

A policy turns the admitted queue (compiled :class:`Task` objects, in
arrival order) into a sequence of **batches**; batches execute one
after another, the members of a batch concurrently.  Three policies
span the design space:

* :class:`FifoSerialPolicy` — the baseline: one query per batch, no
  concurrency, no interference (and no CPU/memory overlap either);
* :class:`MaxParallelPolicy` — the opposite extreme: pack every batch
  to the concurrency cap in arrival order, blind to contention;
* :class:`InterferenceAwarePolicy` — greedy co-schedule selection under
  the ⊙ model: grow each batch with the candidate that increases the
  predicted makespan least, and admit a candidate only while co-running
  is predicted no slower than queueing it behind the batch.

Batches, not a continuous stream, keep the simulated-time semantics
exact: within a batch the executor interleaves the members' access
traces on the shared hierarchy; across batches the machine is a simple
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..query.physical import QueryPlan
from .interference import InterferenceModel
from .workload import WorkloadQuery

__all__ = ["Task", "SchedulePolicy", "FifoSerialPolicy",
           "MaxParallelPolicy", "InterferenceAwarePolicy"]


@dataclass(frozen=True)
class Task:
    """One admitted, compiled query awaiting execution."""

    query: WorkloadQuery
    plan: QueryPlan
    #: Predicted standalone (cold, whole-cache) memory time.
    solo_memory_ns: float
    #: Calibrated pure-CPU time (Eq. 6.1).
    cpu_ns: float
    #: Whether compilation was served from the shared plan cache.
    cache_hit: bool
    #: The chosen physical plan's one-line signature.
    signature: str = ""

    @property
    def solo_total_ns(self) -> float:
        """Standalone completion time (Eq. 6.1: memory + CPU)."""
        return self.solo_memory_ns + self.cpu_ns


class SchedulePolicy:
    """Base class: a policy maps the arrival-ordered queue to batches."""

    name = "policy"

    def batches(self, tasks: Sequence[Task]) -> list[list[Task]]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FifoSerialPolicy(SchedulePolicy):
    """Serial baseline: every query runs alone, in arrival order."""

    name = "fifo-serial"

    def batches(self, tasks: Sequence[Task]) -> list[list[Task]]:
        return [[t] for t in tasks]


class MaxParallelPolicy(SchedulePolicy):
    """Naive maximal concurrency: fill each batch to ``max_batch`` in
    arrival order, regardless of predicted interference."""

    name = "max-parallel"

    def __init__(self, max_batch: int = 4) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.max_batch = max_batch

    def batches(self, tasks: Sequence[Task]) -> list[list[Task]]:
        return [list(tasks[i:i + self.max_batch])
                for i in range(0, len(tasks), self.max_batch)]

    def __repr__(self) -> str:
        return f"MaxParallelPolicy(max_batch={self.max_batch})"


class InterferenceAwarePolicy(SchedulePolicy):
    """Greedy makespan-minimizing co-scheduling under the ⊙ model.

    Batch construction: seed with the longest-waiting queued task, then
    repeatedly add the candidate whose admission yields the smallest
    predicted batch makespan.  **Admission control**: a candidate is
    admitted only if

        makespan(batch ∪ {c})  ≤  makespan(batch) + slack · solo(c)

    i.e. co-running ``c`` is predicted to cost no more than running it
    *after* the batch (``slack=1``), so a policy decision never makes
    the predicted schedule worse than FIFO-serial.  ``slack`` trades
    strictness for packing: below 1 it demands a predicted win from
    concurrency, above 1 it tolerates bounded interference in exchange
    for freeing later batches.

    The candidate scan is bounded by ``lookahead`` queue positions so
    scheduling stays ``O(queue · max_batch · lookahead)`` co-run
    predictions, and no task is starved: unpicked candidates keep their
    arrival order, and every pass seeds with the queue head.
    """

    name = "interference-aware"

    def __init__(self, interference: InterferenceModel,
                 max_batch: int = 4, slack: float = 1.0,
                 lookahead: int = 8) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if slack <= 0:
            raise ValueError("slack must be positive")
        if lookahead < 1:
            raise ValueError("lookahead must be positive")
        self.interference = interference
        self.max_batch = max_batch
        self.slack = slack
        self.lookahead = lookahead

    def _makespan(self, batch: Sequence[Task]) -> float:
        return self.interference.co_run([t.plan for t in batch]).makespan_ns

    def batches(self, tasks: Sequence[Task]) -> list[list[Task]]:
        queue = list(tasks)
        out: list[list[Task]] = []
        while queue:
            batch = [queue.pop(0)]
            current = self._makespan(batch)
            while len(batch) < self.max_batch and queue:
                best_index = None
                best_makespan = None
                for i, candidate in enumerate(queue[:self.lookahead]):
                    predicted = self._makespan(batch + [candidate])
                    limit = current + self.slack * candidate.solo_total_ns
                    if predicted > limit:
                        continue  # rejected: queueing it is cheaper
                    if best_makespan is None or predicted < best_makespan:
                        best_index, best_makespan = i, predicted
                if best_index is None:
                    break
                batch.append(queue.pop(best_index))
                current = best_makespan
            out.append(batch)
        return out

    def __repr__(self) -> str:
        return (f"InterferenceAwarePolicy(max_batch={self.max_batch}, "
                f"slack={self.slack}, lookahead={self.lookahead})")
