"""Deterministic multi-client workload generation.

A :class:`WorkloadGenerator` populates a shared
:class:`~repro.session.Session` catalog (following the explicit-seed
conventions of :mod:`repro.db.datagen`) and draws mixed query streams
from a small set of templates — point filters, scans, joins,
aggregations, and join+aggregate pipelines — expressed in the text
frontend, so every workload query is an ordinary session query that
compiles through the shared plan cache.

Everything is seeded: the same ``(seed, scale, mix)`` always produces
the same tables, the same query sequence, and the same client
assignment, which is what makes scheduler comparisons (same workload,
different policy) meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from ..db.datagen import grouped_keys, random_permutation
from ..session import Session

__all__ = ["WorkloadQuery", "WorkloadGenerator", "KINDS",
           "poisson_gaps", "stamp_arrivals"]

#: The query template families a workload mixes.
KINDS = ("point", "scan", "join", "aggregate", "join_aggregate")

#: Default mix: a balanced multi-client stream.
DEFAULT_MIX: Mapping[str, float] = {
    "point": 0.2,
    "scan": 0.2,
    "join": 0.2,
    "aggregate": 0.2,
    "join_aggregate": 0.2,
}

#: A memory-bound mix dominated by joins whose hash tables compete for
#: the cache — the stress case for co-run scheduling.
CONTENTION_HEAVY_MIX: Mapping[str, float] = {
    "point": 0.05,
    "scan": 0.05,
    "join": 0.5,
    "aggregate": 0.1,
    "join_aggregate": 0.3,
}

#: An I/O-bound mix for disk-extended profiles: joins and aggregates
#: whose working structures exceed the memory budget, so co-runners
#: compete for buffer-pool pages the way in-memory queries compete for
#: cache lines.
OUT_OF_CORE_MIX: Mapping[str, float] = {
    "scan": 0.1,
    "join": 0.4,
    "aggregate": 0.2,
    "join_aggregate": 0.3,
}


@dataclass(frozen=True)
class WorkloadQuery:
    """One queued client query: arrival order ``qid``, issuing
    ``client``, template family ``kind``, its text-frontend form, and
    its open-loop arrival time on the simulated clock (0 for closed
    batches, where every query is present at the start)."""

    qid: int
    client: int
    kind: str
    text: str
    arrival_ns: float = 0.0


def poisson_gaps(rng: random.Random, rate_qps: float) -> Iterable[float]:
    """Endless exponential inter-arrival gaps (simulated ns) of an
    open-loop Poisson process with mean rate ``rate_qps`` queries per
    simulated second — the one arrival definition offline replay and
    the live server share."""
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    mean_gap_ns = 1e9 / rate_qps
    while True:
        yield rng.expovariate(1.0 / mean_gap_ns)


def stamp_arrivals(queries: Sequence[WorkloadQuery],
                   gaps: Iterable[float]) -> list[WorkloadQuery]:
    """The same stream with cumulative arrival timestamps drawn from
    ``gaps`` (the first query arrives after the first gap)."""
    out: list[WorkloadQuery] = []
    clock = 0.0
    for query, gap in zip(queries, gaps):
        if gap < 0:
            raise ValueError("arrival gaps must be non-negative")
        clock += gap
        out.append(replace(query, arrival_ns=clock))
    if len(out) != len(queries):
        raise ValueError("gaps exhausted before the stream ended")
    return out


class WorkloadGenerator:
    """Seeded generator of mixed query streams over a shared catalog.

    Parameters
    ----------
    session:
        The session whose catalog the workload runs against; a fresh
        default session is created when omitted.  Tables and predicates
        are registered on it (existing registrations of the same names
        are rebound).
    seed:
        Master seed; table contents and the query stream derive from it.
    scale:
        Base-table cardinality.  With the scaled-Origin2000 profile,
        ``scale=2048`` makes each join's hash table (~43 KB) comparable
        to L2 (64 KB), so co-running two joins thrashes — the
        contention regime; ``scale=256`` keeps several co-run working
        sets cache-resident — the friendly regime.
    mix:
        Kind → weight mapping (need not sum to 1); defaults to
        :data:`DEFAULT_MIX`.
    """

    def __init__(self, session: Session | None = None, seed: int = 0,
                 scale: int = 2048, mix: Mapping[str, float] | None = None
                 ) -> None:
        if scale < 16:
            raise ValueError("scale must be >= 16")
        self.session = session if session is not None else Session()
        self.seed = seed
        self.scale = scale
        self.mix = dict(mix if mix is not None else DEFAULT_MIX)
        unknown = set(self.mix) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown workload kinds: {sorted(unknown)}")
        if sum(self.mix.values()) <= 0:
            raise ValueError("mix weights must sum to a positive value")
        self.groups = max(2, scale // 32)
        self._populate()

    @classmethod
    def contention_heavy(cls, session: Session | None = None, seed: int = 0,
                         scale: int = 2048) -> "WorkloadGenerator":
        """A join-dominated, memory-bound workload (the scheduling
        stress case)."""
        return cls(session=session, seed=seed, scale=scale,
                   mix=CONTENTION_HEAVY_MIX)

    @classmethod
    def out_of_core(cls, session: Session | None = None, seed: int = 0,
                    scale: int = 1024,
                    memory_budget: int = 2 * 1024) -> "WorkloadGenerator":
        """An I/O-bound workload over a disk-extended profile: tables
        sized beyond the scaled buffer pool, every operator planned
        under ``memory_budget`` — so plans spill and the ⊙ co-run
        model's division extends to buffer-pool pages.  A fresh
        disk-extended session is created when none is passed; a passed
        session should use a disk-extended profile and a budget of its
        own."""
        if session is None:
            from ..hardware.profiles import disk_extended_scaled
            session = Session(hierarchy=disk_extended_scaled(),
                              memory_budget=memory_budget)
        return cls(session=session, seed=seed, scale=scale,
                   mix=OUT_OF_CORE_MIX)

    # ------------------------------------------------------------------
    def _populate(self) -> None:
        s, n, seed = self.session, self.scale, self.seed
        s.create_table("orders", random_permutation(n, seed=seed + 1))
        s.create_table("customers", random_permutation(n, seed=seed + 2))
        s.create_table("parts", random_permutation(n, seed=seed + 3))
        s.create_table("events", grouped_keys(n, groups=self.groups,
                                              seed=seed + 4))
        s.predicate("even", lambda v: v % 2 == 0)
        s.predicate("quarter", lambda v: v % 4 == 0)
        s.predicate("rare", lambda v: v % 16 == 0)

    def _templates(self, kind: str) -> Sequence[str]:
        """The text-frontend instances of one template family.  A small
        fixed set per kind keeps the shared plan cache meaningful: the
        stream revisits templates, so later compiles hit."""
        g = self.groups
        if kind == "point":
            return (f"filter(orders, rare, sel={1 / 16})",
                    f"filter(parts, rare, sel={1 / 16})")
        if kind == "scan":
            return ("filter(customers, even, sel=0.5)",
                    "filter(orders, quarter, sel=0.25)")
        if kind == "join":
            return ("join(orders, customers)",
                    "join(customers, parts)")
        if kind == "aggregate":
            return (f"aggregate(events, groups={g})",
                    f"aggregate(events, groups={2 * g})")
        if kind == "join_aggregate":
            # Join keys are permutation values (all distinct), so the
            # oracle group count is the join's output cardinality.
            return (f"aggregate(join(filter(orders, even, sel=0.5), "
                    f"customers), groups={self.scale // 2})",
                    f"aggregate(join(orders, parts), groups={self.scale})")
        raise ValueError(f"unknown workload kind {kind!r}")

    # ------------------------------------------------------------------
    def generate(self, n_queries: int, clients: int = 4,
                 rate_qps: float | None = None) -> list[WorkloadQuery]:
        """``n_queries`` queries in arrival order, dealt round-robin to
        ``clients`` clients, kinds drawn from the mix — deterministic in
        ``(seed, scale, mix, n_queries, clients, rate_qps)``.

        With ``rate_qps`` the stream carries open-loop Poisson arrival
        timestamps at that mean rate (queries per simulated second),
        drawn from the same seeded generator as the stream itself —
        offline replay and the live server consume one and the same
        workload definition.  Without it every ``arrival_ns`` is 0 (a
        closed batch)."""
        if n_queries < 1:
            raise ValueError("n_queries must be positive")
        if clients < 1:
            raise ValueError("clients must be positive")
        # A stable integer derivation (not hash(): str hashing is
        # process-randomized) so streams differ per request shape.
        rng = random.Random(self.seed * 1_000_003
                            + n_queries * 101 + clients)
        kinds = sorted(k for k, w in self.mix.items() if w > 0)
        weights = [self.mix[k] for k in kinds]
        out: list[WorkloadQuery] = []
        for qid in range(n_queries):
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            text = rng.choice(self._templates(kind))
            out.append(WorkloadQuery(qid=qid, client=qid % clients,
                                     kind=kind, text=text))
        if rate_qps is not None:
            out = stamp_arrivals(out, poisson_gaps(rng, rate_qps))
        return out
