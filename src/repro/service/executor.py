"""Simulated-time multi-client execution over one shared engine.

The trace-driven simulator executes one access at a time, so
*concurrency* is simulated the way the ⊙ model describes it: record
each plan's access trace (the exact sequence of ``(address, nbytes)``
the engine's operators issue), then replay a batch's traces
**interleaved round-robin** through a single cold
:class:`~repro.simulator.MemorySystem`.  The interleaved replay makes
the co-runners genuinely compete for every cache level — the measured
counterpart of composing their patterns under ``⊙``.

Recording happens against the shared :class:`~repro.db.Database` (one
address space, so two queries over one table really do share lines),
with base-column values snapshot/restored around each run: sort-based
operators reorder shared base columns in place, and every batch member
must observe the same base state — concurrent execution over one
snapshot.

Timing follows :mod:`repro.service.interference`: per batch,
``makespan = max(Σ mem_i, max_i (cpu_i + mem_i))`` with ``mem_i``
query ``i``'s share of the replayed (contended) memory time — memory
latencies serialize on the shared hierarchy, CPU overlaps other
queries' stalls.  Batches execute in sequence on a simulated clock.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Sequence

from ..db.context import Database
from ..hardware.hierarchy import MemoryHierarchy
from ..query.observe import MeasuredResult, measure_plan
from ..query.optimizer import plan_signature
from ..query.physical import QueryPlan
from ..session import Session
from ..simulator.counters import CounterSnapshot
from ..simulator.memory import MemorySystem
from .interference import InterferenceModel
from .metrics import BatchMetrics, QueryMetrics, WorkloadReport
from .scheduler import SchedulePolicy, Task
from .workload import WorkloadQuery

__all__ = ["TraceRecorder", "record_trace", "replay_interleaved",
           "trace_length", "measure_solo", "BatchReplay",
           "ServiceExecutor"]


class TraceRecorder:
    """A stand-in for :class:`~repro.simulator.MemorySystem` that
    records the access trace instead of simulating it (operators only
    ever call :meth:`access`/:meth:`read`/:meth:`write` — or, since the
    vectorized engine, :meth:`access_range` and :meth:`batch`).

    Trace entries are either a plain ``(addr, nbytes)`` access or a
    coalesced ``("range", addr, nbytes, stride, count)`` run standing
    for ``count`` accesses; replay expands ranges access-for-access, so
    a trace recorded under vectorized execution replays to the same
    counters as its scalar recording."""

    __slots__ = ("trace",)

    def __init__(self) -> None:
        self.trace: list[tuple] = []

    def access(self, addr: int, nbytes: int = 1, write: bool = False) -> None:
        self.trace.append((addr, nbytes))

    def access_range(self, addr: int, nbytes: int, stride: int | None = None,
                     count: int = 1, write: bool = False) -> None:
        if count > 0:
            self.trace.append(("range", addr, nbytes,
                               nbytes if stride is None else stride, count))

    def batch(self):
        trace = self.trace

        def fused(addr: int, nbytes: int = 8, write: bool = False) -> None:
            trace.append((addr, nbytes))

        return fused

    def read(self, addr: int, nbytes: int = 1) -> None:
        self.access(addr, nbytes)

    def write(self, addr: int, nbytes: int = 1) -> None:
        self.access(addr, nbytes, write=True)


def trace_length(trace: Sequence[tuple]) -> int:
    """The number of simulated accesses a trace stands for (coalesced
    range entries count every item in the run)."""
    return sum(entry[4] if entry[0] == "range" else 1 for entry in trace)


@contextmanager
def _restored_columns(db: Database):
    """Snapshot/restore registered columns' values (in-place sorts must
    not leak between recordings; the copy is Python-level and invisible
    to the simulated trace)."""
    saved = {column: list(column.values) for column in db.catalog.values()}
    try:
        yield
    finally:
        for column, values in saved.items():
            column.values = values


def record_trace(db: Database, plan: QueryPlan) -> list[tuple]:
    """Execute ``plan`` against ``db`` with a recording memory system
    and return its access trace.  Base columns are restored afterwards,
    so every batch member records against the same base state."""
    recorder = TraceRecorder()
    real = db.mem
    with _restored_columns(db):
        db.mem = recorder
        try:
            plan.execute(db)
        finally:
            db.mem = real
    return recorder.trace


@dataclass(frozen=True)
class BatchReplay:
    """The measured outcome of one interleaved batch replay."""

    #: Total memory time of the batch (sum of all attributed latencies).
    total_ns: float
    #: Memory time attributed to each trace's own accesses.
    memory_ns: tuple[float, ...]
    #: Elapsed (shared-clock) time at which each trace finished.
    finish_ns: tuple[float, ...]
    #: Per-level hit/miss counters of the shared memory system after
    #: the whole batch drained — the sample the metrics registry takes
    #: at batch boundaries.
    counters: CounterSnapshot | None = None


#: Default time-slice length (accesses per turn) of the interleaved
#: replay.  The ⊙ model divides capacity as if each co-runner keeps a
#: steady working partition; a quantum of one access instead models
#: adversarial per-access alternation (SMT worst case), where the
#: competitors evict each other's hot lines *between consecutive
#: accesses* — measurably worse than proportional sharing, especially
#: for the 8-entry TLB.  A quantum of tens of accesses corresponds to
#: the scheduler-granularity time-slicing a query service actually
#: exhibits, and is the regime the Section 5.2 division describes.
DEFAULT_QUANTUM = 64


def replay_interleaved(hierarchy: MemoryHierarchy,
                       traces: Sequence[Sequence[tuple]],
                       quantum: int = DEFAULT_QUANTUM) -> BatchReplay:
    """Replay ``traces`` round-robin (``quantum`` accesses per active
    trace per turn) through one cold
    :class:`~repro.simulator.MemorySystem`.

    Round-robin interleaving is the fair time-slicing ⊙ assumes: every
    co-runner advances at the same access rate while all compete for
    the same caches.  Shorter traces drop out as they finish, leaving
    the remainder more of the cache — the same asymmetry the footprint
    division models.
    """
    if quantum < 1:
        raise ValueError("quantum must be positive")
    mem = MemorySystem(hierarchy)
    n = len(traces)
    memory = [0.0] * n
    finish = [0.0] * n
    # Per-trace cursor: (entry index, accesses already replayed out of
    # the current entry).  A coalesced range entry stands for `count`
    # accesses, and a quantum boundary may split it mid-run — the
    # remainder replays as access_range(addr + done * stride, ...),
    # which is access-for-access identical to finishing the loop.
    positions: list[tuple[int, int]] = [(0, 0)] * n
    active = [i for i in range(n) if trace_length(traces[i]) > 0]
    while active:
        still_active = []
        for i in active:
            trace = traces[i]
            entry_index, done = positions[i]
            budget = quantum
            before = mem.elapsed_ns
            while budget > 0 and entry_index < len(trace):
                entry = trace[entry_index]
                if entry[0] == "range":
                    _, addr, nbytes, stride, count = entry
                    take = min(count - done, budget)
                    mem.access_range(addr + done * stride, nbytes,
                                     stride, take)
                    budget -= take
                    done += take
                    if done == count:
                        entry_index += 1
                        done = 0
                else:
                    addr, nbytes = entry
                    mem.access(addr, nbytes)
                    budget -= 1
                    entry_index += 1
            memory[i] += mem.elapsed_ns - before
            positions[i] = (entry_index, done)
            if entry_index < len(trace):
                still_active.append(i)
            else:
                finish[i] = mem.elapsed_ns
        active = still_active
    return BatchReplay(total_ns=mem.elapsed_ns,
                       memory_ns=tuple(memory),
                       finish_ns=tuple(finish),
                       counters=mem.snapshot())


def measure_solo(session: Session, plan: QueryPlan) -> MeasuredResult:
    """One plan's cold typed measurement over ``session``'s engine.

    Runs against a *fresh* memory system swapped in for the duration
    (the engine's own clock and cache state stay untouched, exactly as
    trace recording + replay guarantee), with base columns restored so
    later runs observe the same base state — the solo-batch path both
    the offline executor and the query server use."""
    db = session.db
    real = db.mem
    db.mem = MemorySystem(session.hierarchy)
    try:
        with _restored_columns(db), \
                db.execution_scope(session.config.execution):
            return measure_plan(db, plan, session.model,
                                pipeline=session.config.pipeline,
                                cold=False,  # the swapped-in system
                                             # is already cold
                                signature=plan_signature(plan.root))
    finally:
        db.mem = real


class ServiceExecutor:
    """Drives a workload through compile → schedule → co-run replay.

    Parameters
    ----------
    session:
        The root session owning the shared engine, catalog, and plan
        cache.  Each client gets its own :meth:`~Session.spawn`-ed
        session over the same engine and cache, so compile provenance
        (hit/miss) is tracked per client while plans are shared.
    policy:
        The scheduling policy (see :mod:`repro.service.scheduler`).
    quantum:
        Time-slice length of the interleaved replay (accesses per
        co-runner per turn; see :data:`DEFAULT_QUANTUM`).
    """

    def __init__(self, session: Session, policy: SchedulePolicy,
                 quantum: int = DEFAULT_QUANTUM) -> None:
        self.session = session
        self.policy = policy
        self.quantum = quantum
        self.interference = InterferenceModel(session.hierarchy)
        self._clients: dict[int, Session] = {}

    # ------------------------------------------------------------------
    def _client_session(self, client: int) -> Session:
        if client not in self._clients:
            self._clients[client] = self.session.spawn()
        return self._clients[client]

    def admit(self, queries: Sequence[WorkloadQuery]) -> list[Task]:
        """Compile every queued query through its client's session (all
        sharing one plan cache) into scheduler tasks."""
        tasks: list[Task] = []
        for wq in queries:
            client = self._client_session(wq.client)
            planned = client.compile(wq.text)
            plan = planned.plan
            memory, cpu = self.interference.standalone(plan)
            tasks.append(Task(query=wq, plan=plan,
                              solo_memory_ns=memory, cpu_ns=cpu,
                              cache_hit=client.last_compile_cached,
                              signature=plan_signature(plan.root)))
        return tasks

    def run(self, queries: Sequence[WorkloadQuery]) -> WorkloadReport:
        """Admit, schedule, and execute ``queries``; returns the full
        simulated-time report."""
        if self.interference.hierarchy is not self.session.hierarchy:
            # the shared engine's profile changed since construction
            self.interference = InterferenceModel(self.session.hierarchy)
        tasks = self.admit(queries)
        batches = self.policy.batches(tasks)
        scheduled = sorted(t.query.qid for b in batches for t in b)
        if scheduled != sorted(t.query.qid for t in tasks):
            raise ValueError(
                f"policy {self.policy.name!r} lost or duplicated queries")

        db = self.session.db
        clock = 0.0
        query_metrics: list[QueryMetrics] = []
        batch_metrics: list[BatchMetrics] = []
        for index, batch in enumerate(batches):
            prediction = self.interference.co_run([t.plan for t in batch])
            if len(batch) == 1:
                # A solo member needs no interleaving: run it through
                # the typed measured path, which yields the identical
                # cold-cache counters a single-trace replay would (the
                # out-of-core suite proves replay == execution) *plus*
                # per-operator predicted-vs-measured attribution.
                measured = measure_solo(self.session, batch[0].plan)
                memory_ns = (measured.measured_ns,)
                finish_ns = (measured.measured_ns,)
                total_ns = measured.measured_ns
                operators = (measured.operators,)
            else:
                with db.execution_scope(self.session.config.execution):
                    traces = [record_trace(db, t.plan) for t in batch]
                replay = replay_interleaved(self.session.hierarchy, traces,
                                            quantum=self.quantum)
                memory_ns = replay.memory_ns
                finish_ns = replay.finish_ns
                total_ns = replay.total_ns
                operators = (None,) * len(batch)
            finishes = []
            for t, mem_ns, mem_finish, ops in zip(batch, memory_ns,
                                                  finish_ns, operators):
                # A member is done once its accesses have drained *and*
                # its own CPU work fits after/between them.
                finish = max(mem_finish, mem_ns + t.cpu_ns)
                finishes.append(finish)
                query_metrics.append(QueryMetrics(
                    qid=t.query.qid, client=t.query.client,
                    kind=t.query.kind, signature=t.signature,
                    batch_index=index, cache_hit=t.cache_hit,
                    start_ns=clock, finish_ns=clock + finish,
                    memory_ns=mem_ns, cpu_ns=t.cpu_ns,
                    operators=ops))
            makespan = max(max(finishes), total_ns)
            batch_metrics.append(BatchMetrics(
                index=index, size=len(batch),
                predicted_memory_ns=prediction.batch_memory_ns,
                measured_memory_ns=total_ns,
                predicted_makespan_ns=prediction.makespan_ns,
                measured_makespan_ns=makespan))
            clock += makespan
        query_metrics.sort(key=lambda m: m.qid)
        return WorkloadReport(self.policy.name, query_metrics,
                              batch_metrics,
                              fingerprint=self.session.fingerprint)
