"""The ⊙ co-run cost model: predicting inter-query cache contention.

Composing the whole-plan access patterns of queries that execute
*concurrently* under one ``⊙`` (:class:`~repro.core.Conc`) is exactly
the paper's Section 5.2 contention model applied across queries: every
cache level is divided among the co-runners proportionally to their
footprints (Eq. 5.3), so each plan is priced against a smaller cache
than it would own when running alone.  The difference between the
⊙-composed cost and the sum of standalone costs is the predicted
contention slowdown.

Timing model (makespan).  The simulated machine has one shared memory
hierarchy and one logical core per co-running client: miss latencies
serialize on the shared hierarchy, while a query's calibrated pure-CPU
work (Eq. 6.1) overlaps *other* queries' memory stalls but never its
own.  Hence for a co-run batch

    makespan = max( Σᵢ mem_i ,  maxᵢ (cpu_i + mem_i) )

with ``mem_i`` the ⊙-inflated memory time of member ``i`` — which
degenerates to the paper's serial ``T = T_mem + T_cpu`` for a batch of
one.  Memory-bound batches are bounded by total (inflated) bus time;
CPU-bound batches by their slowest member, which is where co-running
wins over serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.cost import CostModel
from ..hardware.hierarchy import MemoryHierarchy
from ..query.physical import QueryPlan

__all__ = ["CoRunPrediction", "InterferenceModel"]


@dataclass(frozen=True)
class CoRunPrediction:
    """The ⊙ model's verdict on one co-run batch."""

    #: Per-member memory time under the ⊙ cache division (inflated).
    memory_ns: tuple[float, ...]
    #: Per-member calibrated pure-CPU time (Eq. 6.1).
    cpu_ns: tuple[float, ...]
    #: Per-member *standalone* memory time (whole cache to itself).
    solo_memory_ns: tuple[float, ...]

    @property
    def batch_memory_ns(self) -> float:
        """Total memory time of the batch under ⊙ — identical to
        ``estimate(Conc.of(*patterns)).memory_ns``."""
        return sum(self.memory_ns)

    @property
    def serial_memory_ns(self) -> float:
        """Total memory time if the members ran one after another, each
        from a cold cache."""
        return sum(self.solo_memory_ns)

    @property
    def slowdown(self) -> float:
        """Predicted contention factor: ⊙ memory time over serial
        memory time (≥ 1 up to model noise; 1 means no interference)."""
        serial = self.serial_memory_ns
        return self.batch_memory_ns / serial if serial > 0 else 1.0

    @property
    def makespan_ns(self) -> float:
        """Predicted completion time of the batch (see module
        docstring): shared-hierarchy memory time serializes, CPU
        overlaps other members' stalls."""
        if not self.memory_ns:
            return 0.0
        return max(self.batch_memory_ns,
                   max(c + m for c, m in zip(self.cpu_ns, self.memory_ns)))

    @property
    def serial_makespan_ns(self) -> float:
        """Completion time if the members ran serially (Eq. 6.1 each)."""
        return self.serial_memory_ns + sum(self.cpu_ns)


class InterferenceModel:
    """Prices co-run batches of physical plans by external ⊙
    composition.

    Plans contribute their pipeline-aware whole-plan patterns
    (:meth:`~repro.query.QueryPlan.pattern`); access-free plans (bare
    scans) contribute nothing to contention but still carry CPU time.
    """

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        self.model = CostModel(hierarchy)
        # Standalone estimates memoized per plan: the scheduler prices
        # O(queue · batch · lookahead) candidate batches over the same
        # few plans, and a plan's solo cost never changes.  The plan is
        # kept in the value so its id() stays unambiguous.
        self._solo: dict[int, tuple[QueryPlan, float, float]] = {}

    # ------------------------------------------------------------------
    def _pattern(self, plan: QueryPlan):
        try:
            return plan.pattern(pipeline=True)
        except ValueError:  # access-free plan (bare scan)
            return None

    def cpu_time_ns(self, plan: QueryPlan) -> float:
        """Calibrated pure-CPU time of ``plan`` (Eq. 6.1)."""
        return self.hierarchy.nanoseconds(plan.cpu_cycles())

    def standalone(self, plan: QueryPlan) -> tuple[float, float]:
        """``(memory_ns, cpu_ns)`` of ``plan`` running alone on a cold
        machine (memoized per plan)."""
        key = id(plan)
        cached = self._solo.get(key)
        if cached is not None:
            return cached[1], cached[2]
        pattern = self._pattern(plan)
        memory = (0.0 if pattern is None
                  else self.model.estimate(pattern).memory_ns)
        cpu = self.cpu_time_ns(plan)
        self._solo[key] = (plan, memory, cpu)
        return memory, cpu

    def co_run(self, plans: Sequence[QueryPlan]) -> CoRunPrediction:
        """Predict the contention of running ``plans`` concurrently."""
        if not plans:
            raise ValueError("a co-run batch needs at least one plan")
        patterns = [self._pattern(p) for p in plans]
        standalone = [self.standalone(p) for p in plans]
        cpu = tuple(c for _, c in standalone)
        solo = tuple(m for m, _ in standalone)
        present = [pat for pat in patterns if pat is not None]
        if len(present) <= 1:
            # No competition: at most one member touches memory.
            return CoRunPrediction(memory_ns=solo, cpu_ns=cpu,
                                   solo_memory_ns=solo)
        shared = self.model.concurrent_estimates(present)
        times = iter(e.memory_ns for e in shared)
        memory = tuple(0.0 if pat is None else next(times)
                       for pat in patterns)
        return CoRunPrediction(memory_ns=memory, cpu_ns=cpu,
                               solo_memory_ns=solo)
