"""Per-query and per-batch service metrics, and the rendered report.

All times are simulated nanoseconds on the service's machine profile.
Queries arrive together at simulated time zero (a closed batch of
client requests), so a query's latency is its completion time: queueing
delay behind earlier batches plus its own batch's execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..query.observe import OperatorMeasurement

__all__ = ["percentile", "QueryMetrics", "BatchMetrics", "WorkloadReport"]


#: Sentinel distinguishing "no empty-sample default supplied" from an
#: explicit ``empty=None``.
_RAISE = object()


def percentile(values: Sequence[float], q: float, empty=_RAISE) -> float:
    """The ``q``-th percentile (0–100) with linear interpolation.

    Edge cases are explicit: an empty sample raises :class:`ValueError`
    unless ``empty`` supplies a return value for it (sliding SLO
    windows pass ``empty=None`` — a window with no completions has no
    percentile, which is not an error), and a single sample is its own
    ``q``-th percentile for every ``q`` including 0 and 100."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if not values:
        if empty is _RAISE:
            raise ValueError("percentile of an empty sequence")
        return empty
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class QueryMetrics:
    """One query's simulated-time accounting."""

    qid: int
    client: int
    kind: str
    signature: str
    batch_index: int
    cache_hit: bool
    #: Simulated time the query's batch started.
    start_ns: float
    #: Simulated time the query completed.
    finish_ns: float
    #: Memory time measured for this query during the batch replay
    #: (inflated by contention when co-run).
    memory_ns: float
    #: Calibrated pure-CPU time.
    cpu_ns: float
    #: Per-operator predicted-vs-measured attribution
    #: (:class:`~repro.query.OperatorMeasurement`), available when the
    #: query ran solo (a singleton batch executes through the typed
    #: measured path); ``None`` for co-run members, whose interleaved
    #: accesses have no per-operator scope.
    operators: tuple[OperatorMeasurement, ...] | None = None

    @property
    def latency_ns(self) -> float:
        """Arrival is simulated time zero, so latency = completion."""
        return self.finish_ns

    def to_json(self) -> dict:
        out = {
            "qid": self.qid, "client": self.client, "kind": self.kind,
            "signature": self.signature, "batch_index": self.batch_index,
            "cache_hit": self.cache_hit, "start_ns": self.start_ns,
            "finish_ns": self.finish_ns, "latency_ns": self.latency_ns,
            "memory_ns": self.memory_ns, "cpu_ns": self.cpu_ns,
        }
        if self.operators is not None:
            out["operators"] = [op.to_json() for op in self.operators]
        return out


@dataclass(frozen=True)
class BatchMetrics:
    """One co-run batch: the ⊙ prediction next to the simulator's
    measurement."""

    index: int
    size: int
    predicted_memory_ns: float
    measured_memory_ns: float
    predicted_makespan_ns: float
    measured_makespan_ns: float

    @property
    def contention_error(self) -> float:
        """Relative error of the ⊙-predicted batch memory time against
        the interleaved-replay measurement."""
        if self.measured_memory_ns <= 0:
            return 0.0
        return (abs(self.predicted_memory_ns - self.measured_memory_ns)
                / self.measured_memory_ns)

    def to_json(self) -> dict:
        return {
            "index": self.index, "size": self.size,
            "predicted_memory_ns": self.predicted_memory_ns,
            "measured_memory_ns": self.measured_memory_ns,
            "predicted_makespan_ns": self.predicted_makespan_ns,
            "measured_makespan_ns": self.measured_makespan_ns,
            "contention_error": self.contention_error,
        }


class WorkloadReport:
    """The executor's result: every query, every batch, one policy."""

    def __init__(self, policy: str, queries: list[QueryMetrics],
                 batches: list[BatchMetrics],
                 fingerprint: str = "") -> None:
        if not queries:
            raise ValueError("a report needs at least one query")
        self.policy = policy
        self.queries = queries
        self.batches = batches
        #: Profile fingerprint of the machine the run executed on —
        #: joins this report to the what-if candidate that predicted it.
        self.fingerprint = fingerprint

    # -- headline numbers ----------------------------------------------
    @property
    def makespan_ns(self) -> float:
        """Simulated completion time of the whole workload."""
        return max(q.finish_ns for q in self.queries)

    @property
    def throughput_qps(self) -> float:
        """Queries per simulated second."""
        span = self.makespan_ns
        return len(self.queries) / (span / 1e9) if span > 0 else float("inf")

    def latency_percentile(self, q: float) -> float:
        return percentile([m.latency_ns for m in self.queries], q)

    @property
    def p50_latency_ns(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_ns(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency_ns(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def cache_hits(self) -> int:
        return sum(1 for q in self.queries if q.cache_hit)

    @property
    def mean_contention_error(self) -> float:
        """Mean relative ⊙-vs-simulator error over *co-run* batches
        (singleton batches exercise the plain Section 4/5 model, which
        the existing validation suites already cover)."""
        shared = [b.contention_error for b in self.batches if b.size > 1]
        if not shared:
            return 0.0
        return sum(shared) / len(shared)

    def to_json(self) -> dict:
        """The whole run as a JSON-serializable dict — built from the
        same typed vocabulary (per-operator measurements included where
        available) the query layer's results serialize with."""
        return {
            "kind": "workload_report",
            "policy": self.policy,
            "fingerprint": self.fingerprint,
            "makespan_ns": self.makespan_ns,
            "throughput_qps": self.throughput_qps,
            "p50_latency_ns": self.p50_latency_ns,
            "p95_latency_ns": self.p95_latency_ns,
            "p99_latency_ns": self.p99_latency_ns,
            # the same values under the SloTracker.snapshot() names, so
            # serving-side consumers read one vocabulary
            "p50_ns": self.p50_latency_ns,
            "p95_ns": self.p95_latency_ns,
            "p99_ns": self.p99_latency_ns,
            "cache_hits": self.cache_hits,
            "mean_contention_error": self.mean_contention_error,
            "queries": [q.to_json() for q in self.queries],
            "batches": [b.to_json() for b in self.batches],
        }

    # ------------------------------------------------------------------
    def render(self) -> str:
        """A compact text table of the run."""
        q = self.queries
        lines = [
            f"policy {self.policy}: {len(q)} queries in "
            f"{len(self.batches)} batches",
            f"  makespan   {self.makespan_ns / 1e6:>10.2f} ms   "
            f"throughput {self.throughput_qps:>8.1f} q/s",
            f"  latency    p50 {self.p50_latency_ns / 1e6:>8.2f} ms   "
            f"p95 {self.p95_latency_ns / 1e6:>8.2f} ms   "
            f"p99 {self.p99_latency_ns / 1e6:>8.2f} ms",
            f"  plan cache {self.cache_hits}/{len(q)} hits   "
            f"⊙ vs simulator error "
            f"{self.mean_contention_error * 100:>5.1f}% "
            f"(co-run batches)",
        ]
        lines.append("  batches:")
        for b in self.batches:
            lines.append(
                f"    #{b.index:<3} size {b.size}  "
                f"mem pred {b.predicted_memory_ns / 1e6:>8.2f} ms / "
                f"meas {b.measured_memory_ns / 1e6:>8.2f} ms  "
                f"makespan {b.measured_makespan_ns / 1e6:>8.2f} ms")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"WorkloadReport({self.policy!r}, "
                f"queries={len(self.queries)}, "
                f"makespan={self.makespan_ns / 1e6:.2f}ms)")
