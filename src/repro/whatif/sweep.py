"""The deterministic what-if sweep driver: price, don't execute.

For every candidate of a :class:`~repro.whatif.ProfileSpace` the sweep
builds a fresh :class:`~repro.session.Session` on the candidate
machine, compiles the *same* fixed workload through the real
:class:`~repro.query.Optimizer` (so plan choice reacts to the
candidate hardware — a bigger cache can change the chosen join), and
prices the stream purely with the cost model:

* standalone cost per query from the whole-plan pattern (Eq. 6.1),
* co-run batches formed by the same ⊙-guided admission rule the
  server uses (:class:`~repro.service.InterferenceAwarePolicy`),
* each batch priced by
  :meth:`~repro.core.CostModel.concurrent_estimates` through
  :meth:`~repro.service.InterferenceModel.co_run` (Eq. 5.3), with
  ``makespan = max(Σ mem_i, max_i (cpu_i + mem_i))``.

Nothing executes: a sweep over machines that don't exist costs only
model arithmetic.  Because batches complete as units on the simulated
clock, a member's *predicted* completion is its batch's makespan plus
the queueing delay behind earlier batches — the model-side counterpart
of the executor's timing, and the definition behind predicted
p50/p95.  Optional **spot checks** replay chosen candidates through
the trace-driven simulator (:class:`~repro.service.ServiceExecutor`)
to verify the prediction stays inside the validation band.

Workloads come in two shapes: :class:`GeneratedWorkload` re-creates a
seeded :class:`~repro.service.WorkloadGenerator` stream per candidate
(templates over deterministic tables), and :class:`CapturedWorkload`
snapshots a live session's catalog and an observed ``(kind, text)``
stream — how a :class:`~repro.server.QueryServer` answers capacity
questions from its own recorded mix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

from ..query.optimizer import plan_signature
from ..service.executor import DEFAULT_QUANTUM, ServiceExecutor
from ..service.interference import InterferenceModel
from ..service.metrics import percentile
from ..service.scheduler import (
    FifoSerialPolicy,
    InterferenceAwarePolicy,
    MaxParallelPolicy,
    SchedulePolicy,
    Task,
)
from ..service.workload import (
    CONTENTION_HEAVY_MIX,
    DEFAULT_MIX,
    OUT_OF_CORE_MIX,
    WorkloadGenerator,
    WorkloadQuery,
)
from ..session import Session
from .report import WhatIfReport
from .space import Candidate, ProfileSpace

__all__ = ["GeneratedWorkload", "CapturedWorkload", "CandidateOutcome",
           "SpotCheck", "WhatIfSweep", "MIXES", "SWEEP_POLICIES"]

#: Named mixes the CLI and generated workloads accept.
MIXES: Mapping[str, Mapping[str, float]] = {
    "default": DEFAULT_MIX,
    "contention-heavy": CONTENTION_HEAVY_MIX,
    "out-of-core": OUT_OF_CORE_MIX,
}

#: Batch-formation policies a sweep can price under (the server's
#: admission modes).
SWEEP_POLICIES = ("interference-aware", "max-parallel", "fifo-serial")


class GeneratedWorkload:
    """A seeded template workload, re-created per candidate.

    Deterministic in ``(seed, scale, mix, n_queries, clients)`` — the
    same definition every candidate prices, so differences between
    rows are the hardware, never the workload.
    """

    def __init__(self, *, seed: int = 0, scale: int = 512,
                 mix: str | Mapping[str, float] = "contention-heavy",
                 n_queries: int = 32, clients: int = 8) -> None:
        if isinstance(mix, str):
            if mix not in MIXES:
                raise ValueError(f"unknown mix {mix!r} "
                                 f"(expected one of {sorted(MIXES)})")
            self.mix_name = mix
            self.mix = dict(MIXES[mix])
        else:
            self.mix_name = "custom"
            self.mix = dict(mix)
        if n_queries < 1:
            raise ValueError("n_queries must be positive")
        if clients < 1:
            raise ValueError("clients must be positive")
        self.seed = seed
        self.scale = scale
        self.n_queries = n_queries
        self.clients = clients

    def realize(self, candidate: Candidate
                ) -> tuple[Session, list[WorkloadQuery]]:
        """A fresh session on the candidate machine with the seeded
        catalog populated, plus the (identical across candidates)
        query stream."""
        session = Session(hierarchy=candidate.hierarchy,
                          memory_budget=candidate.memory_budget)
        generator = WorkloadGenerator(session=session, seed=self.seed,
                                      scale=self.scale, mix=self.mix)
        return session, generator.generate(self.n_queries,
                                           clients=self.clients)

    def to_json(self) -> dict:
        return {
            "source": "generated",
            "mix": self.mix_name,
            "weights": {k: self.mix[k] for k in sorted(self.mix)},
            "seed": self.seed,
            "scale": self.scale,
            "queries": self.n_queries,
            "clients": self.clients,
        }


class CapturedWorkload:
    """A workload captured from a live session: its catalog values and
    an observed query stream, re-materialized on each candidate
    machine.

    The snapshot is by *value* (column contents, sortedness flags,
    predicate registry), so re-pricing needs no knowledge of how the
    catalog was generated — any served mix can be re-asked against
    hypothetical hardware.
    """

    def __init__(self, *, tables: Mapping[str, tuple[Sequence, int, bool]],
                 functions: Mapping[str, Callable],
                 queries: Sequence[WorkloadQuery], clients: int) -> None:
        if not queries:
            raise ValueError("a captured workload needs at least one query")
        if clients < 1:
            raise ValueError("clients must be positive")
        self.tables = {name: (list(values), width, bool(sorted_flag))
                       for name, (values, width, sorted_flag)
                       in tables.items()}
        self.functions = dict(functions)
        self.queries = list(queries)
        self.clients = clients

    @classmethod
    def from_session(cls, session: Session,
                     queries: Sequence, clients: int | None = None
                     ) -> "CapturedWorkload":
        """Snapshot ``session``'s catalog and normalize ``queries`` —
        either :class:`~repro.service.WorkloadQuery` objects or bare
        ``(kind, text)`` pairs — into a re-priceable workload."""
        normalized: list[WorkloadQuery] = []
        n_clients = clients if clients is not None else 1
        for i, query in enumerate(queries):
            if isinstance(query, WorkloadQuery):
                normalized.append(replace(query, qid=i))
            else:
                kind, text = query
                normalized.append(WorkloadQuery(
                    qid=i, client=i % max(1, n_clients), kind=kind,
                    text=text))
        if clients is None:
            n_clients = max(
                (q.client for q in normalized), default=0) + 1
        tables = {
            name: (list(column.values), column.width,
                   session._sorted.get(name, False))
            for name, column in session.db.catalog.items()
        }
        return cls(tables=tables, functions=session._functions,
                   queries=normalized, clients=n_clients)

    def realize(self, candidate: Candidate
                ) -> tuple[Session, list[WorkloadQuery]]:
        session = Session(hierarchy=candidate.hierarchy,
                          memory_budget=candidate.memory_budget)
        for name, (values, width, sorted_flag) in self.tables.items():
            session.create_table(name, list(values), width=width,
                                 sorted=sorted_flag)
        for name, fn in self.functions.items():
            session.predicate(name, fn)
        return session, list(self.queries)

    def to_json(self) -> dict:
        kinds: dict[str, int] = {}
        for query in self.queries:
            kinds[query.kind] = kinds.get(query.kind, 0) + 1
        return {
            "source": "captured",
            "queries": len(self.queries),
            "clients": self.clients,
            "kinds": {k: kinds[k] for k in sorted(kinds)},
            "tables": {name: len(values) for name, (values, _, _)
                       in sorted(self.tables.items())},
        }


@dataclass(frozen=True)
class SpotCheck:
    """One candidate's simulator verification: the same workload,
    batches, and policy executed trace-by-trace, next to the sweep's
    pure-model prediction."""

    measured_makespan_ns: float
    measured_p50_ns: float
    measured_p95_ns: float
    measured_throughput_qps: float
    #: Relative |predicted − measured| / measured for the headline
    #: numbers (the 0.35 validation band applies).
    makespan_error: float
    p95_error: float
    #: The executor's own ⊙-vs-replay error over co-run batches.
    mean_contention_error: float

    def to_json(self) -> dict:
        return {
            "measured_makespan_ns": self.measured_makespan_ns,
            "measured_p50_ns": self.measured_p50_ns,
            "measured_p95_ns": self.measured_p95_ns,
            "measured_throughput_qps": self.measured_throughput_qps,
            "makespan_error": self.makespan_error,
            "p95_error": self.p95_error,
            "mean_contention_error": self.mean_contention_error,
        }


@dataclass(frozen=True)
class CandidateOutcome:
    """One candidate's predicted serving behaviour on the fixed
    workload — a pure function of (workload, candidate, policy)."""

    index: int
    label: str
    params: tuple[tuple[str, object], ...]
    fingerprint: str
    cost_proxy: float
    cores: int
    memory_budget: int | None
    #: Σ of predicted batch makespans (the whole stream's completion).
    makespan_ns: float
    p50_ns: float
    p95_ns: float
    throughput_qps: float
    batches: int
    co_run_batches: int
    #: Largest marginal makespan inflation any admission caused,
    #: relative to the admitted query's solo time — the smallest
    #: admission ``slack`` that would re-admit every co-runner the
    #: sweep packed on this machine.
    max_admission_inflation: float
    spot_check: SpotCheck | None = None

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "params": dict(self.params),
            "fingerprint": self.fingerprint,
            "cost_proxy": self.cost_proxy,
            "cores": self.cores,
            "memory_budget": self.memory_budget,
            "predicted": {
                "makespan_ns": self.makespan_ns,
                "p50_ns": self.p50_ns,
                "p95_ns": self.p95_ns,
                "throughput_qps": self.throughput_qps,
            },
            "batches": self.batches,
            "co_run_batches": self.co_run_batches,
            "max_admission_inflation": self.max_admission_inflation,
            "spot_check": (None if self.spot_check is None
                           else self.spot_check.to_json()),
        }


class WhatIfSweep:
    """Prices one workload on every candidate of one space.

    Parameters
    ----------
    space:
        The :class:`~repro.whatif.ProfileSpace` to expand.
    workload:
        A :class:`GeneratedWorkload` or :class:`CapturedWorkload`.
    policy:
        Batch-formation policy (:data:`SWEEP_POLICIES`); a candidate's
        ``cores`` is the batch cap.
    slack / lookahead:
        Admission knobs for the interference-aware policy (the
        server's defaults).
    quantum:
        Interleaved-replay time slice for spot checks.
    """

    def __init__(self, space: ProfileSpace, workload, *,
                 policy: str = "interference-aware", slack: float = 1.0,
                 lookahead: int = 8,
                 quantum: int = DEFAULT_QUANTUM) -> None:
        if policy not in SWEEP_POLICIES:
            raise ValueError(f"unknown policy {policy!r} "
                             f"(expected one of {SWEEP_POLICIES})")
        self.space = space
        self.workload = workload
        self.policy = policy
        self.slack = slack
        self.lookahead = lookahead
        self.quantum = quantum
        #: label → Candidate for every priced candidate (filled by
        #: :meth:`run`; lets callers spot-check after the fact).
        self.candidates: dict[str, Candidate] = {}

    # ------------------------------------------------------------------
    def _make_policy(self, candidate: Candidate,
                     interference: InterferenceModel) -> SchedulePolicy:
        if self.policy == "fifo-serial":
            return FifoSerialPolicy()
        if self.policy == "max-parallel":
            return MaxParallelPolicy(max_batch=candidate.cores)
        return InterferenceAwarePolicy(interference,
                                       max_batch=candidate.cores,
                                       slack=self.slack,
                                       lookahead=self.lookahead)

    def _admit(self, session: Session, queries: Sequence[WorkloadQuery],
               interference: InterferenceModel) -> list[Task]:
        tasks: list[Task] = []
        for wq in queries:
            planned = session.compile(wq.text)
            plan = planned.plan
            memory, cpu = interference.standalone(plan)
            tasks.append(Task(query=wq, plan=plan, solo_memory_ns=memory,
                              cpu_ns=cpu,
                              cache_hit=session.last_compile_cached,
                              signature=plan_signature(plan.root)))
        return tasks

    def price(self, candidate: Candidate) -> CandidateOutcome:
        """Predict the workload's serving behaviour on ``candidate``
        with pure model arithmetic (no execution, no simulator)."""
        session, queries = self.workload.realize(candidate)
        interference = InterferenceModel(session.hierarchy)
        tasks = self._admit(session, queries, interference)
        policy = self._make_policy(candidate, interference)
        batches = policy.batches(tasks)
        clock = 0.0
        latencies: list[float] = []
        inflation = 0.0
        co_run = 0
        for batch in batches:
            plans = [t.plan for t in batch]
            makespan = interference.co_run(plans).makespan_ns
            if len(batch) > 1:
                co_run += 1
                previous = interference.co_run(plans[:1]).makespan_ns
                for size in range(2, len(plans) + 1):
                    grown = interference.co_run(plans[:size]).makespan_ns
                    solo = batch[size - 1].solo_total_ns
                    if solo > 0:
                        inflation = max(inflation,
                                        (grown - previous) / solo)
                    previous = grown
            # A batch completes as a unit on the simulated clock: every
            # member's predicted completion is the batch makespan plus
            # the queueing delay behind earlier batches.
            latencies.extend(clock + makespan for _ in batch)
            clock += makespan
        throughput = (len(latencies) / (clock / 1e9) if clock > 0
                      else float("inf"))
        self.candidates[candidate.label] = candidate
        return CandidateOutcome(
            index=candidate.index, label=candidate.label,
            params=candidate.params, fingerprint=candidate.fingerprint,
            cost_proxy=candidate.cost_proxy, cores=candidate.cores,
            memory_budget=candidate.memory_budget,
            makespan_ns=clock,
            p50_ns=percentile(latencies, 50.0),
            p95_ns=percentile(latencies, 95.0),
            throughput_qps=throughput,
            batches=len(batches), co_run_batches=co_run,
            max_admission_inflation=inflation)

    def spot_check(self, candidate: Candidate,
                   outcome: CandidateOutcome) -> SpotCheck:
        """Execute the workload on ``candidate`` through the
        trace-driven simulator (recorded traces, interleaved replay —
        the measured counterpart of the ⊙ prediction) and compare the
        headline numbers."""
        session, queries = self.workload.realize(candidate)
        interference = InterferenceModel(session.hierarchy)
        executor = ServiceExecutor(
            session, self._make_policy(candidate, interference),
            quantum=self.quantum)
        report = executor.run(queries)
        measured_makespan = report.makespan_ns
        measured_p95 = report.p95_latency_ns
        return SpotCheck(
            measured_makespan_ns=measured_makespan,
            measured_p50_ns=report.p50_latency_ns,
            measured_p95_ns=measured_p95,
            measured_throughput_qps=report.throughput_qps,
            makespan_error=(abs(outcome.makespan_ns - measured_makespan)
                            / measured_makespan
                            if measured_makespan > 0 else 0.0),
            p95_error=(abs(outcome.p95_ns - measured_p95) / measured_p95
                       if measured_p95 > 0 else 0.0),
            mean_contention_error=report.mean_contention_error)

    # ------------------------------------------------------------------
    def run(self, *, slo_p95_ns: float | None = None,
            spot_check: str = "none") -> WhatIfReport:
        """Expand, price every candidate, assemble the report, answer
        the SLO question (when asked), and verify chosen rows on the
        simulator.

        ``spot_check`` is ``"none"``, ``"frontier"`` (every
        Pareto-frontier row plus the recommended one), or ``"all"``.
        """
        if spot_check not in ("none", "frontier", "all"):
            raise ValueError("spot_check must be 'none', 'frontier', "
                             f"or 'all', got {spot_check!r}")
        expansion = self.space.expand()
        baseline = self.price(expansion.baseline)
        outcomes = [self.price(c) for c in expansion.candidates]
        report = WhatIfReport(
            space=self.space.name, policy=self.policy,
            workload=self.workload.to_json(), baseline=baseline,
            candidates=outcomes, skipped=list(expansion.skipped))
        if slo_p95_ns is not None:
            report.recommend(p95_ns=slo_p95_ns)
        if spot_check != "none":
            targets = ([report.baseline, *report.outcomes()]
                       if spot_check == "all"
                       else report.frontier_outcomes())
            labels = {o.label for o in targets}
            recommendation = report.recommendation
            if recommendation is not None:
                labels.add(recommendation.label)
            for label in sorted(labels):
                outcome = report.outcome(label)
                check = self.spot_check(self.candidates[label], outcome)
                report.attach_spot_check(label, check)
        return report
