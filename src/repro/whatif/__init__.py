"""What-if capacity planning: price workloads on machines you don't
have.

The paper's calibrated cost model (Sections 4–6) needs only a
described :class:`~repro.hardware.MemoryHierarchy` to price an access
pattern — so a parametric space of *hypothetical* machines
(:class:`ProfileSpace`) can be swept (:class:`WhatIfSweep`) against a
fixed workload with pure arithmetic, and the resulting
:class:`WhatIfReport` answers capacity questions ("smallest config
meeting p95 ≤ X at N clients") with baseline deltas, a Pareto
frontier, and optional trace-driven simulator spot checks on the
interesting rows.

Also runnable as ``python -m repro.whatif``; a live
:class:`~repro.server.QueryServer` exposes the same machinery through
:meth:`~repro.server.QueryServer.capacity_plan`.
"""

from .report import Recommendation, WhatIfReport, derive_admission_slack
from .space import (
    CONFIG_AXES,
    PROFILE_AXES,
    TINY_POOL_BASE,
    Candidate,
    ProfileSpace,
    SpaceExpansion,
    cost_proxy,
)
from .sweep import (
    MIXES,
    SWEEP_POLICIES,
    CandidateOutcome,
    CapturedWorkload,
    GeneratedWorkload,
    SpotCheck,
    WhatIfSweep,
)

__all__ = [
    "ProfileSpace",
    "Candidate",
    "SpaceExpansion",
    "cost_proxy",
    "PROFILE_AXES",
    "CONFIG_AXES",
    "TINY_POOL_BASE",
    "WhatIfSweep",
    "GeneratedWorkload",
    "CapturedWorkload",
    "CandidateOutcome",
    "SpotCheck",
    "WhatIfReport",
    "Recommendation",
    "derive_admission_slack",
    "MIXES",
    "SWEEP_POLICIES",
]
