"""``python -m repro.whatif`` — capacity planning from the shell.

Sweeps a parametric profile space over a seeded workload mix and
prints the report table; ``--output`` writes the schema-validated JSON
report.  Example — "what's the smallest pool meeting p95 ≤ 3 ms for
the contention-heavy mix at 8 clients?"::

    python -m repro.whatif --mix contention-heavy --clients 8 \\
        --pool-pages 16 32 64 128 --slo-p95-ms 3.0 \\
        --output whatif.json
"""

from __future__ import annotations

import argparse
import json
import sys

from .space import TINY_POOL_BASE, ProfileSpace
from .sweep import MIXES, SWEEP_POLICIES, GeneratedWorkload, WhatIfSweep

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.whatif",
        description="Price a seeded workload mix on a parametric space "
                    "of hypothetical machines (pure cost-model "
                    "arithmetic; nothing executes unless spot checks "
                    "are requested).")
    workload = parser.add_argument_group("workload")
    workload.add_argument("--mix", choices=sorted(MIXES),
                          default="contention-heavy",
                          help="seeded workload mix (default: "
                               "contention-heavy)")
    workload.add_argument("--scale", type=int, default=512,
                          help="base table rows (default: 512)")
    workload.add_argument("--queries", type=int, default=32,
                          help="queries in the stream (default: 32)")
    workload.add_argument("--clients", type=int, default=8,
                          help="concurrent clients (default: 8)")
    workload.add_argument("--seed", type=int, default=0,
                          help="workload seed (default: 0)")

    space = parser.add_argument_group(
        "space axes (give at least one; values form a cross-product)")
    space.add_argument("--l1-kb", type=float, nargs="+", metavar="KB",
                       help="L1 capacities to sweep")
    space.add_argument("--l2-kb", type=float, nargs="+", metavar="KB",
                       help="L2 capacities to sweep")
    space.add_argument("--mem-ns", type=float, nargs="+", metavar="NS",
                       help="random memory latencies to sweep")
    space.add_argument("--pool-pages", type=int, nargs="+", metavar="N",
                       help="buffer-pool sizes to sweep (uses the tiny "
                            "pool base profile)")
    space.add_argument("--cores", type=int, nargs="+", metavar="N",
                       help="core counts (co-run batch caps) to sweep")
    space.add_argument("--budget", type=int, nargs="+", metavar="BYTES",
                       help="per-operator memory budgets to sweep "
                            "(0 = unbudgeted)")

    sweep = parser.add_argument_group("sweep")
    sweep.add_argument("--policy", choices=SWEEP_POLICIES,
                       default="interference-aware",
                       help="batch-formation policy (default: "
                            "interference-aware)")
    sweep.add_argument("--slo-p95-ms", type=float, default=None,
                       metavar="MS",
                       help="ask the recommender for the smallest "
                            "config meeting this p95")
    sweep.add_argument("--spot-check", choices=("none", "frontier", "all"),
                       default="none",
                       help="verify rows on the trace-driven simulator "
                            "(default: none)")
    sweep.add_argument("--output", metavar="PATH", default=None,
                       help="write the schema-validated JSON report here")
    return parser


def _axes(args: argparse.Namespace) -> dict:
    axes: dict = {}
    if args.l1_kb:
        axes["l1_kb"] = list(args.l1_kb)
    if args.l2_kb:
        axes["l2_kb"] = list(args.l2_kb)
    if args.mem_ns:
        axes["mem_ns"] = list(args.mem_ns)
    if args.pool_pages:
        axes["pool_pages"] = list(args.pool_pages)
    if args.cores:
        axes["cores"] = list(args.cores)
    if args.budget:
        axes["memory_budget"] = [None if b == 0 else b
                                 for b in args.budget]
    return axes


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    axes = _axes(args)
    if not axes:
        parser.error("give at least one space axis "
                     "(--l1-kb/--l2-kb/--mem-ns/--pool-pages/"
                     "--cores/--budget)")
    # Pool and budget sweeps need data caches below the pool being
    # swept; the tiny pool base satisfies every ordering invariant.
    base = (dict(TINY_POOL_BASE)
            if ("pool_pages" in axes or "memory_budget" in axes)
            else None)
    space = ProfileSpace(axes, base=base, name="cli")
    workload = GeneratedWorkload(seed=args.seed, scale=args.scale,
                                 mix=args.mix, n_queries=args.queries,
                                 clients=args.clients)
    sweep = WhatIfSweep(space, workload, policy=args.policy)
    slo_ns = (args.slo_p95_ms * 1e6
              if args.slo_p95_ms is not None else None)
    report = sweep.run(slo_p95_ns=slo_ns, spot_check=args.spot_check)
    print(report.render())
    if args.output:
        payload = report.to_json()
        from ..obs.schema import validate_whatif_report
        problems = validate_whatif_report(payload)
        if problems:
            print("schema problems:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if slo_ns is not None and report.recommendation is None:
        print("no config meets the requested p95 target",
              file=sys.stderr)
        return 2
    return 0
