"""Declarative parametric profile spaces for what-if sweeps.

A :class:`ProfileSpace` names the knobs of a capacity-planning
question — cache sizes and miss latencies per level, buffer-pool
pages, per-operator memory budget, core count for ⊙ co-run batches —
and expands their cross-product into concrete
:class:`~repro.hardware.MemoryHierarchy` candidates through
:func:`~repro.hardware.parametric_profile`.  Every hardware invariant
(capacity ordering, line multiples, ``rand >= seq`` latencies, TLB
separation) is re-checked by the :mod:`repro.hardware` constructors
during expansion: invalid corners of the grid are *skipped with a
recorded reason*, never silently built.

The point of the exercise is the paper's superpower — the calibrated
cost model prices an access pattern on any hierarchy you can describe,
so a candidate machine never has to exist (or be simulated) to be
compared.  Expansion is pure and deterministic: the same space always
yields the same candidates in the same order, which is what makes
what-if reports byte-reproducible.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..hardware.hierarchy import MemoryHierarchy
from ..hardware.profiles import parametric_profile

__all__ = ["Candidate", "SpaceExpansion", "ProfileSpace", "cost_proxy",
           "PROFILE_AXES", "CONFIG_AXES", "TINY_POOL_BASE"]

#: The :func:`~repro.hardware.parametric_profile` knobs a space may
#: sweep (everything but ``name``).
PROFILE_AXES: tuple[str, ...] = tuple(
    p for p in inspect.signature(parametric_profile).parameters
    if p != "name")

#: Software/config knobs a space may sweep alongside the hardware:
#: ``memory_budget`` (per-operator working memory, ``None`` = plan
#: purely in memory) and ``cores`` (logical cores = the co-run batch
#: cap the ⊙ scheduler packs to).
CONFIG_AXES: tuple[str, ...] = ("memory_budget", "cores")

#: Base kwargs reproducing :func:`~repro.hardware.tiny_test_machine`
#: with a 32-page buffer pool (:func:`~repro.hardware.disk_extended_scaled`)
#: — the starting point for pool/budget sweeps, where the data caches
#: must sit *below* the pool being swept.
TINY_POOL_BASE: Mapping[str, object] = {
    "l1_kb": 0.25, "l1_line": 16, "l1_seq_ns": 2.0, "l1_rand_ns": 6.0,
    "l2_kb": 1.0, "l2_line": 32, "mem_ns": 50.0, "mem_seq_ns": 20.0,
    "tlb_entries": 4, "page_kb": 0.125, "tlb_ns": 30.0,
    "cpu_mhz": 100.0, "pool_pages": 32,
}


def cost_proxy(hierarchy: MemoryHierarchy, cores: int = 1) -> float:
    """A deterministic relative hardware-cost score for the Pareto
    frontier (not dollars): each data level contributes its capacity
    weighted by speed (``bytes / rand_miss_latency_ns`` — fast memory
    costs more per byte, a big slow pool less than a small fast cache),
    and cores multiply the whole machine.  Monotone in every resource a
    space sweeps, so "smallest config meeting the SLO" is well defined.
    """
    capacity = sum(level.capacity / level.rand_miss_latency_ns
                   for level in hierarchy.levels)
    return cores * capacity


@dataclass(frozen=True)
class Candidate:
    """One concrete point of a profile space: a buildable machine plus
    the software knobs a sweep prices it under."""

    index: int
    label: str
    #: The swept axis values, in axis-declaration order.
    params: tuple[tuple[str, object], ...]
    hierarchy: MemoryHierarchy
    memory_budget: int | None
    #: Logical cores = co-run batch cap for the ⊙ scheduler.
    cores: int

    @property
    def fingerprint(self) -> str:
        """The candidate profile's fingerprint (joins a what-if row to
        any serving/workload report produced on the same machine)."""
        return self.hierarchy.fingerprint()

    @property
    def cost_proxy(self) -> float:
        return cost_proxy(self.hierarchy, self.cores)

    def params_dict(self) -> dict:
        return dict(self.params)


@dataclass(frozen=True)
class SpaceExpansion:
    """The deterministic result of expanding a space: the baseline
    candidate, every buildable grid point, and the invalid points with
    the constructor's reason for rejecting each."""

    baseline: Candidate
    candidates: tuple[Candidate, ...]
    skipped: tuple[dict, ...]

    def __iter__(self):
        return iter(self.candidates)

    def __len__(self) -> int:
        return len(self.candidates)


class ProfileSpace:
    """A named cross-product of hardware and config axes.

    Parameters
    ----------
    axes:
        Axis name → candidate values.  Hardware axes are the
        :func:`~repro.hardware.parametric_profile` keywords
        (:data:`PROFILE_AXES`); config axes are ``memory_budget``
        (``None`` allowed, meaning unbudgeted) and ``cores``
        (:data:`CONFIG_AXES`).  Declaration order fixes expansion
        order.
    base:
        Fixed :func:`~repro.hardware.parametric_profile` kwargs every
        candidate shares (e.g. :data:`TINY_POOL_BASE` for pool
        sweeps).  Swept axes override base entries.
    cores / memory_budget:
        Defaults for candidates when the corresponding axis is not
        swept — also the baseline's values.
    name:
        Label for reports.
    """

    def __init__(self, axes: Mapping[str, Sequence], *,
                 base: Mapping[str, object] | None = None,
                 cores: int = 4, memory_budget: int | None = None,
                 name: str = "space") -> None:
        if not axes:
            raise ValueError("a profile space needs at least one axis")
        known = set(PROFILE_AXES) | set(CONFIG_AXES)
        for axis, values in axes.items():
            if axis not in known:
                raise ValueError(
                    f"unknown axis {axis!r} (hardware axes: "
                    f"{', '.join(PROFILE_AXES)}; config axes: "
                    f"{', '.join(CONFIG_AXES)})")
            if not isinstance(values, Sequence) or isinstance(values, str) \
                    or not values:
                raise ValueError(
                    f"axis {axis!r} needs a non-empty sequence of values")
        unknown_base = set(base or ()) - set(PROFILE_AXES)
        if unknown_base:
            raise ValueError(
                f"unknown base profile kwargs: {sorted(unknown_base)}")
        if cores < 1:
            raise ValueError("cores must be positive")
        if memory_budget is not None and memory_budget < 1:
            raise ValueError("memory_budget must be positive or None")
        self.axes = {axis: tuple(values) for axis, values in axes.items()}
        self.base = dict(base or {})
        self.cores = cores
        self.memory_budget = memory_budget
        self.name = name

    # ------------------------------------------------------------------
    def _build(self, index: int, label: str,
               params: Mapping[str, object]) -> Candidate:
        profile_kwargs = dict(self.base)
        cores = self.cores
        budget = self.memory_budget
        for axis, value in params.items():
            if axis == "cores":
                cores = value
            elif axis == "memory_budget":
                budget = value
            else:
                profile_kwargs[axis] = value
        if not isinstance(cores, int) or cores < 1:
            raise ValueError(f"cores must be a positive int, got {cores!r}")
        if budget is not None and (not isinstance(budget, int)
                                   or budget < 1):
            raise ValueError(
                f"memory_budget must be a positive int or None, "
                f"got {budget!r}")
        hierarchy = parametric_profile(**profile_kwargs)
        return Candidate(index=index, label=label,
                         params=tuple(params.items()),
                         hierarchy=hierarchy, memory_budget=budget,
                         cores=cores)

    def baseline(self) -> Candidate:
        """The reference candidate every report computes deltas
        against: the base profile under the default cores/budget."""
        return self._build(0, "baseline", {})

    def expand(self) -> SpaceExpansion:
        """Expand the cross-product.  Grid points the hardware
        constructors reject (their :class:`ValueError`) are recorded
        under ``skipped``, not raised — an infeasible corner is an
        answer, not a crash."""
        names = list(self.axes)
        candidates: list[Candidate] = []
        skipped: list[dict] = []
        for number, combo in enumerate(
                itertools.product(*self.axes.values()), start=1):
            params = dict(zip(names, combo))
            label = ",".join(f"{axis}={value}"
                             for axis, value in params.items())
            try:
                candidates.append(
                    self._build(len(candidates) + 1, label, params))
            except ValueError as exc:
                skipped.append({"params": {k: v for k, v in params.items()},
                                "reason": str(exc)})
        if not candidates:
            raise ValueError(
                f"every candidate of space {self.name!r} was rejected: "
                + "; ".join(s["reason"] for s in skipped))
        return SpaceExpansion(baseline=self.baseline(),
                              candidates=tuple(candidates),
                              skipped=tuple(skipped))

    def __repr__(self) -> str:
        axes = ", ".join(f"{axis}×{len(values)}"
                         for axis, values in self.axes.items())
        return f"ProfileSpace({self.name!r}, {axes})"
