"""What-if reports: baseline deltas, Pareto frontier, SLO recommender.

A :class:`WhatIfReport` collects the sweep's priced candidates and
answers the capacity-planning questions the numbers exist for:

* **deltas** — every candidate relative to the baseline machine
  (relative makespan / p95 / throughput / cost changes);
* **Pareto frontier** — the undominated set on (cost proxy, predicted
  makespan): a candidate is on the frontier iff no cheaper-or-equal
  candidate finishes the workload sooner;
* **recommendation** — "the smallest config meeting p95 ≤ X at N
  clients": among candidates (baseline included) whose predicted p95
  meets the target, the minimum by cost proxy.  The recommendation
  also carries an **admission slack**: the recommended machine's
  largest observed per-admission makespan inflation (plus 5%
  headroom), which a :class:`~repro.server.QueryServer` can adopt as
  its :class:`~repro.server.AdmissionController` slack so the live
  scheduler re-forms the co-run batches the plan was priced under.

Serialization is deterministic (sorted keys, no wall-clock stamps):
the same sweep yields byte-identical JSON, which is what lets CI diff
reports across runs.  ``validate_whatif_report`` in
:mod:`repro.obs.schema` checks the emitted shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep → report)
    from .sweep import CandidateOutcome, SpotCheck

__all__ = ["WhatIfReport", "Recommendation", "derive_admission_slack"]

#: Bounds for the recommender-derived admission slack: never so tight
#: the server degenerates to serial (< 0.25), never looser than 4×.
MIN_SLACK = 0.25
MAX_SLACK = 4.0
#: Headroom multiplier over the observed worst admission inflation.
SLACK_HEADROOM = 1.05


@dataclass(frozen=True)
class Recommendation:
    """The recommender's answer to one SLO question."""

    #: The question as asked: p95 target (ns), client count, policy.
    question: dict
    label: str
    fingerprint: str
    params: dict
    cost_proxy: float
    predicted_p95_ns: float
    predicted_makespan_ns: float
    #: Admission slack that re-admits every co-runner the sweep packed
    #: on the recommended machine (worst marginal inflation + 5%),
    #: clamped to [0.25, 4.0]; 1.0 when no co-run happened.
    admission_slack: float
    candidates_considered: int
    candidates_meeting: int

    def to_json(self) -> dict:
        return {
            "question": dict(self.question),
            "label": self.label,
            "fingerprint": self.fingerprint,
            "params": dict(self.params),
            "cost_proxy": self.cost_proxy,
            "predicted_p95_ns": self.predicted_p95_ns,
            "predicted_makespan_ns": self.predicted_makespan_ns,
            "admission_slack": self.admission_slack,
            "candidates_considered": self.candidates_considered,
            "candidates_meeting": self.candidates_meeting,
        }


def derive_admission_slack(max_admission_inflation: float) -> float:
    """The admission slack implied by a priced candidate: its worst
    marginal makespan inflation plus headroom, clamped — the smallest
    server setting under which the live scheduler would still admit
    every co-runner the sweep's batches contained."""
    if max_admission_inflation <= 0.0:
        return 1.0
    return max(MIN_SLACK,
               round(min(MAX_SLACK,
                         max_admission_inflation * SLACK_HEADROOM), 3))


class WhatIfReport:
    """The sweep's full result: baseline, candidates, skipped grid
    points, frontier, and (once asked) a recommendation."""

    KIND = "whatif_report"
    SCHEMA_VERSION = 1

    def __init__(self, *, space: str, policy: str, workload: dict,
                 baseline: "CandidateOutcome",
                 candidates: Sequence["CandidateOutcome"],
                 skipped: Sequence[dict] = ()) -> None:
        self.space = space
        self.policy = policy
        self.workload = dict(workload)
        self.baseline = baseline
        self._candidates = list(candidates)
        self.skipped = [dict(s) for s in skipped]
        self.recommendation: Recommendation | None = None

    # -- access --------------------------------------------------------
    def outcomes(self) -> list:
        """The swept candidates (baseline excluded)."""
        return list(self._candidates)

    def outcome(self, label: str) -> "CandidateOutcome":
        if label == self.baseline.label:
            return self.baseline
        for candidate in self._candidates:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no candidate labelled {label!r}")

    def attach_spot_check(self, label: str, check: "SpotCheck") -> None:
        """Record a simulator verification for one priced row."""
        if label == self.baseline.label:
            self.baseline = replace(self.baseline, spot_check=check)
            return
        for i, candidate in enumerate(self._candidates):
            if candidate.label == label:
                self._candidates[i] = replace(candidate, spot_check=check)
                return
        raise KeyError(f"no candidate labelled {label!r}")

    # -- analysis ------------------------------------------------------
    def delta(self, outcome: "CandidateOutcome") -> dict:
        """Relative change vs the baseline machine (negative makespan /
        p95 deltas mean faster, positive throughput means more q/s)."""
        base = self.baseline

        def rel(value: float, reference: float) -> float:
            return (value - reference) / reference if reference else 0.0

        return {
            "makespan": rel(outcome.makespan_ns, base.makespan_ns),
            "p95": rel(outcome.p95_ns, base.p95_ns),
            "throughput": rel(outcome.throughput_qps, base.throughput_qps),
            "cost": rel(outcome.cost_proxy, base.cost_proxy),
        }

    def frontier_outcomes(self) -> list:
        """The Pareto-undominated rows on (cost proxy, predicted
        makespan), baseline included, cheapest first."""
        pool = sorted([self.baseline, *self._candidates],
                      key=lambda o: (o.cost_proxy, o.makespan_ns, o.label))
        frontier = []
        best = float("inf")
        for outcome in pool:
            if outcome.makespan_ns < best:
                frontier.append(outcome)
                best = outcome.makespan_ns
        return frontier

    def recommend(self, *, p95_ns: float) -> Recommendation | None:
        """Answer "smallest config meeting p95 ≤ ``p95_ns``" over the
        baseline and every candidate; stores and returns the answer
        (``None`` when no config meets the target)."""
        if p95_ns <= 0:
            raise ValueError("p95_ns must be positive")
        pool = [self.baseline, *self._candidates]
        meeting = [o for o in pool if o.p95_ns <= p95_ns]
        question = {
            "p95_ns": p95_ns,
            "clients": self.workload.get("clients"),
            "policy": self.policy,
        }
        if not meeting:
            self.recommendation = None
            return None
        chosen = min(meeting, key=lambda o: (
            o.cost_proxy, o.memory_budget or 0, o.makespan_ns, o.label))
        self.recommendation = Recommendation(
            question=question, label=chosen.label,
            fingerprint=chosen.fingerprint, params=dict(chosen.params),
            cost_proxy=chosen.cost_proxy,
            predicted_p95_ns=chosen.p95_ns,
            predicted_makespan_ns=chosen.makespan_ns,
            admission_slack=derive_admission_slack(
                chosen.max_admission_inflation),
            candidates_considered=len(pool),
            candidates_meeting=len(meeting))
        return self.recommendation

    # -- serialization -------------------------------------------------
    def to_json(self) -> dict:
        frontier_labels = [o.label for o in self.frontier_outcomes()]
        candidates = []
        for outcome in self._candidates:
            row = outcome.to_json()
            row["delta"] = self.delta(outcome)
            row["on_frontier"] = outcome.label in frontier_labels
            candidates.append(row)
        return {
            "kind": self.KIND,
            "schema_version": self.SCHEMA_VERSION,
            "space": self.space,
            "policy": self.policy,
            "workload": self.workload,
            "baseline": self.baseline.to_json(),
            "candidates": candidates,
            "skipped": self.skipped,
            "frontier": frontier_labels,
            "recommendation": (None if self.recommendation is None
                               else self.recommendation.to_json()),
        }

    # -- presentation --------------------------------------------------
    def render(self) -> str:
        """A compact text table: one row per candidate, frontier rows
        starred, spot-checked rows showing the measured error."""
        frontier = {o.label for o in self.frontier_outcomes()}
        lines = [
            f"what-if sweep '{self.space}' ({self.policy}, "
            f"{self.workload.get('queries', '?')} queries, "
            f"{self.workload.get('clients', '?')} clients)",
            f"  {'candidate':<42} {'cost':>10} {'makespan':>12} "
            f"{'p95':>12} {'Δp95':>8}",
        ]
        for outcome in [self.baseline, *self._candidates]:
            star = "*" if outcome.label in frontier else " "
            delta = self.delta(outcome)["p95"]
            row = (f" {star}{outcome.label:<42} "
                   f"{outcome.cost_proxy:>10.1f} "
                   f"{outcome.makespan_ns / 1e6:>10.2f}ms "
                   f"{outcome.p95_ns / 1e6:>10.2f}ms "
                   f"{delta * 100:>+7.1f}%")
            if outcome.spot_check is not None:
                row += (f"  [sim p95 err "
                        f"{outcome.spot_check.p95_error * 100:.1f}%]")
            lines.append(row)
        if self.skipped:
            lines.append(f"  skipped {len(self.skipped)} infeasible grid "
                         f"point(s):")
            for entry in self.skipped:
                lines.append(f"    {entry['params']}: {entry['reason']}")
        lines.append(f"  frontier: {', '.join(sorted(frontier))}")
        rec = self.recommendation
        if rec is not None:
            lines.append(
                f"  recommend '{rec.label}' for p95 ≤ "
                f"{rec.question['p95_ns'] / 1e6:.2f} ms: predicted p95 "
                f"{rec.predicted_p95_ns / 1e6:.2f} ms at cost "
                f"{rec.cost_proxy:.1f} "
                f"({rec.candidates_meeting}/{rec.candidates_considered} "
                f"configs meet the target; admission slack "
                f"{rec.admission_slack})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"WhatIfReport({self.space!r}, policy={self.policy!r}, "
                f"candidates={len(self._candidates)})")
