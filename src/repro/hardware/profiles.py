"""Machine profiles for the unified hardware model.

:func:`origin2000` is the exact machine of paper Table 3 (SGI Origin2000,
MIPS R10000 @ 250 MHz) and is used for *model-only* cost evaluation at the
paper's original scale.

:func:`origin2000_scaled` shrinks every capacity by a constant factor while
keeping line sizes, page size ratios and latencies; it is the profile the
trace-driven simulator executes against (simulating 128 MB traversals
event-by-event in Python is infeasible, and all of the paper's crossovers
depend only on capacity *ratios* — see DESIGN.md, "Substitutions").

:func:`modern_x86` is a three-level profile for examples, and
:func:`disk_extended` exercises the paper's Section 7 claim that main
memory can be viewed as a cache for disk I/O by appending a buffer-pool
level with seek-dominated random latency.
"""

from __future__ import annotations

from .cache_level import CacheLevel
from .hierarchy import MemoryHierarchy

__all__ = [
    "origin2000",
    "origin2000_scaled",
    "modern_x86",
    "disk_extended",
    "disk_extended_scaled",
    "tiny_test_machine",
    "parametric_profile",
]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def origin2000() -> MemoryHierarchy:
    """The SGI Origin2000 of paper Table 3.

    L1: 32 KB, 32 B lines; L2: 4 MB, 128 B lines; TLB: 64 entries of 16 KB
    pages (1 MB virtual capacity).  Sequential / random miss latencies are
    the calibrated values of Table 3 (8/24 ns for L1 misses, 188/400 ns for
    L2 misses, 228 ns for TLB misses).
    """
    return MemoryHierarchy(
        name="SGI Origin2000",
        levels=(
            CacheLevel(
                name="L1",
                capacity=32 * KB,
                line_size=32,
                associativity=2,
                seq_miss_latency_ns=8.0,
                rand_miss_latency_ns=24.0,
            ),
            CacheLevel(
                name="L2",
                capacity=4 * MB,
                line_size=128,
                associativity=2,
                seq_miss_latency_ns=188.0,
                rand_miss_latency_ns=400.0,
            ),
        ),
        tlbs=(
            CacheLevel(
                name="TLB",
                capacity=64 * 16 * KB,  # 64 entries x 16 KB pages = 1 MB
                line_size=16 * KB,
                associativity=0,  # fully associative
                seq_miss_latency_ns=228.0,
                rand_miss_latency_ns=228.0,
                is_tlb=True,
            ),
        ),
        cpu_speed_mhz=250.0,
    )


def origin2000_scaled() -> MemoryHierarchy:
    """Origin2000 with capacities shrunk for trace-driven simulation.

    Capacities are divided by 64 for the data caches; the TLB keeps 8
    entries of 4 KB pages so that, as on the real machine, the TLB's
    virtual capacity sits between L1 and L2 (2 KB < 32 KB < 64 KB, mirroring
    32 KB < 1 MB < 4 MB).  Line sizes and latencies are unchanged, so miss
    counts and times keep the paper's shapes at 1/64 the working-set size.
    """
    return MemoryHierarchy(
        name="SGI Origin2000 (scaled 1/64)",
        levels=(
            CacheLevel(
                name="L1",
                capacity=2 * KB,  # 64 lines
                line_size=32,
                associativity=2,
                seq_miss_latency_ns=8.0,
                rand_miss_latency_ns=24.0,
            ),
            CacheLevel(
                name="L2",
                capacity=64 * KB,  # 512 lines
                line_size=128,
                associativity=2,
                seq_miss_latency_ns=188.0,
                rand_miss_latency_ns=400.0,
            ),
        ),
        tlbs=(
            CacheLevel(
                name="TLB",
                capacity=8 * 4 * KB,  # 8 entries x 4 KB pages = 32 KB
                line_size=4 * KB,
                associativity=0,
                seq_miss_latency_ns=228.0,
                rand_miss_latency_ns=228.0,
                is_tlb=True,
            ),
        ),
        cpu_speed_mhz=250.0,
    )


def modern_x86() -> MemoryHierarchy:
    """A contemporary three-level x86 server profile (model-only examples)."""
    return MemoryHierarchy(
        name="modern x86 server",
        levels=(
            CacheLevel(
                name="L1",
                capacity=32 * KB,
                line_size=64,
                associativity=8,
                seq_miss_latency_ns=3.0,
                rand_miss_latency_ns=5.0,
            ),
            CacheLevel(
                name="L2",
                capacity=1 * MB,
                line_size=64,
                associativity=8,
                seq_miss_latency_ns=10.0,
                rand_miss_latency_ns=14.0,
            ),
            CacheLevel(
                name="L3",
                capacity=32 * MB,
                line_size=64,
                associativity=16,
                seq_miss_latency_ns=30.0,
                rand_miss_latency_ns=90.0,
            ),
        ),
        tlbs=(
            CacheLevel(
                name="dTLB",
                capacity=64 * 4 * KB,
                line_size=4 * KB,
                associativity=0,
                seq_miss_latency_ns=25.0,
                rand_miss_latency_ns=25.0,
                is_tlb=True,
            ),
        ),
        cpu_speed_mhz=3000.0,
    )


def disk_extended(base: MemoryHierarchy | None = None,
                  buffer_pool_bytes: int = 1 * GB,
                  page_size: int = 8 * KB,
                  seq_page_latency_us: float = 40.0,
                  rand_page_latency_ms: float = 5.0) -> MemoryHierarchy:
    """Append a buffer-pool/disk level to a hierarchy (paper Section 7).

    The paper argues that viewing main memory (the DBMS buffer pool) as a
    cache for disk pages folds I/O cost models into the same framework: the
    buffer pool becomes one more :class:`CacheLevel` whose line size is the
    disk page size, whose sequential miss latency is page transfer time and
    whose random miss latency additionally carries the seek.
    """
    base = base or modern_x86()
    disk_level = CacheLevel(
        name="BufferPool",
        capacity=buffer_pool_bytes,
        line_size=page_size,
        associativity=0,
        seq_miss_latency_ns=seq_page_latency_us * 1e3,
        rand_miss_latency_ns=rand_page_latency_ms * 1e6,
        is_pool=True,
    )
    return MemoryHierarchy(
        name=base.name + " + disk",
        levels=base.levels + (disk_level,),
        tlbs=base.tlbs,
        cpu_speed_mhz=base.cpu_speed_mhz,
    )


def disk_extended_scaled(base: MemoryHierarchy | None = None,
                         buffer_pool_bytes: int = 4 * KB,
                         page_size: int = 128,
                         seq_page_latency_ns: float = 1_000.0,
                         rand_page_latency_ns: float = 25_000.0
                         ) -> MemoryHierarchy:
    """A disk-extended hierarchy small enough for trace-driven simulation.

    Appends a buffer pool of 32 pages (4 KB, 128 B pages) to the tiny
    test machine — the same capacity-ratio trick as
    :func:`origin2000_scaled`: all of the out-of-core crossovers depend
    on working-set *vs* pool-size ratios and on the seek/transfer
    latency ratio (here 25x, mirroring a disk's ~5 ms seek vs ~40 us
    page transfer at 1/200 scale), so a few-KB working set exercises
    exactly the regime a few-GB one does on real hardware — at trace
    sizes Python can replay.
    """
    base = base or tiny_test_machine()
    pool = CacheLevel(
        name="BufferPool",
        capacity=buffer_pool_bytes,
        line_size=page_size,
        associativity=0,
        seq_miss_latency_ns=seq_page_latency_ns,
        rand_miss_latency_ns=rand_page_latency_ns,
        is_pool=True,
    )
    return MemoryHierarchy(
        name=base.name + " + disk (scaled)",
        levels=base.levels + (pool,),
        tlbs=base.tlbs,
        cpu_speed_mhz=base.cpu_speed_mhz,
    )


def _capacity(kb: float, line_size: int, what: str) -> int:
    """``kb`` kilobytes rounded to whole ``line_size`` lines (a
    :class:`CacheLevel` capacity must be a line multiple)."""
    if kb <= 0:
        raise ValueError(f"{what} must be positive, got {kb!r}")
    lines = round(kb * KB / line_size)
    if lines < 1:
        raise ValueError(
            f"{what}={kb!r} KB is smaller than one {line_size}-byte line")
    return lines * line_size


def parametric_profile(*, name: str | None = None,
                       l1_kb: float = 2.0, l1_line: int = 32,
                       l1_assoc: int = 2,
                       l1_seq_ns: float = 8.0, l1_rand_ns: float = 24.0,
                       l2_kb: float = 64.0, l2_line: int = 128,
                       l2_assoc: int = 2,
                       mem_ns: float = 400.0,
                       mem_seq_ns: float | None = None,
                       tlb_entries: int = 8, page_kb: float = 4.0,
                       tlb_ns: float = 228.0,
                       pool_pages: int | None = None, page_size: int = 128,
                       pool_seq_ns: float = 1_000.0,
                       pool_rand_ns: float = 25_000.0,
                       cpu_mhz: float = 250.0) -> MemoryHierarchy:
    """A two-level (+ TLB, + optional buffer pool) hierarchy built from
    explicit knobs — the constructor behind what-if profile spaces
    (:mod:`repro.whatif`), so benches and tests stop hand-wiring
    :class:`CacheLevel` tuples.

    The defaults reproduce :func:`origin2000_scaled` level for level,
    so ``parametric_profile()`` is the simulator-friendly baseline and
    every knob is a departure from it.  ``mem_ns`` is the *random*
    L2-miss latency (the paper's Table 3 headline number); the
    sequential miss latency defaults to ``mem_ns`` scaled by the
    calibrated Origin2000 seq/rand ratio (188/400), so turning the one
    memory-latency knob preserves the bandwidth/latency relationship
    calibration found.  ``pool_pages`` (when set) appends a
    :func:`disk_extended_scaled`-style buffer-pool level of that many
    ``page_size``-byte pages.

    Capacities are rounded to whole lines; every :class:`CacheLevel`
    and :class:`MemoryHierarchy` invariant (capacity ordering, TLB
    separation, ``rand >= seq``) is re-checked by the constructors, so
    invalid corners of a swept space raise :class:`ValueError` instead
    of producing an unbuildable machine.
    """
    if mem_seq_ns is None:
        mem_seq_ns = mem_ns * (188.0 / 400.0)
    if tlb_entries < 1:
        raise ValueError("tlb_entries must be positive")
    levels = [
        CacheLevel(
            name="L1",
            capacity=_capacity(l1_kb, l1_line, "l1_kb"),
            line_size=l1_line,
            associativity=l1_assoc,
            seq_miss_latency_ns=l1_seq_ns,
            rand_miss_latency_ns=l1_rand_ns,
        ),
        CacheLevel(
            name="L2",
            capacity=_capacity(l2_kb, l2_line, "l2_kb"),
            line_size=l2_line,
            associativity=l2_assoc,
            seq_miss_latency_ns=mem_seq_ns,
            rand_miss_latency_ns=mem_ns,
        ),
    ]
    if pool_pages is not None:
        if pool_pages < 1:
            raise ValueError("pool_pages must be positive")
        levels.append(CacheLevel(
            name="BufferPool",
            capacity=pool_pages * page_size,
            line_size=page_size,
            associativity=0,
            seq_miss_latency_ns=pool_seq_ns,
            rand_miss_latency_ns=pool_rand_ns,
            is_pool=True,
        ))
    page_bytes = _capacity(page_kb, 1, "page_kb")
    if name is None:
        pool = (f", pool {pool_pages}p" if pool_pages is not None else "")
        name = (f"parametric (l1 {l1_kb:g}KB, l2 {l2_kb:g}KB, "
                f"mem {mem_ns:g}ns{pool})")
    return MemoryHierarchy(
        name=name,
        levels=tuple(levels),
        tlbs=(
            CacheLevel(
                name="TLB",
                capacity=tlb_entries * page_bytes,
                line_size=page_bytes,
                associativity=0,
                seq_miss_latency_ns=tlb_ns,
                rand_miss_latency_ns=tlb_ns,
                is_tlb=True,
            ),
        ),
        cpu_speed_mhz=cpu_mhz,
    )


def tiny_test_machine() -> MemoryHierarchy:
    """A deliberately tiny two-level machine for fast unit tests.

    L1: 256 B with 16 B lines (16 lines); L2: 1 KB with 32 B lines
    (32 lines); TLB: 4 entries of 128 B pages.  Small enough that tests can
    enumerate expected behaviour by hand.
    """
    return MemoryHierarchy(
        name="tiny test machine",
        levels=(
            CacheLevel(
                name="L1",
                capacity=256,
                line_size=16,
                associativity=2,
                seq_miss_latency_ns=2.0,
                rand_miss_latency_ns=6.0,
            ),
            CacheLevel(
                name="L2",
                capacity=1024,
                line_size=32,
                associativity=2,
                seq_miss_latency_ns=20.0,
                rand_miss_latency_ns=50.0,
            ),
        ),
        tlbs=(
            CacheLevel(
                name="TLB",
                capacity=4 * 128,
                line_size=128,
                associativity=0,
                seq_miss_latency_ns=30.0,
                rand_miss_latency_ns=30.0,
                is_tlb=True,
            ),
        ),
        cpu_speed_mhz=100.0,
    )
