"""The unified hardware model: a cascade of cache levels (Section 2.3).

A :class:`MemoryHierarchy` holds the *data* cache levels (L1, L2, ...)
ordered from closest-to-CPU outwards, plus zero or more TLB levels.  The
paper treats TLBs "just like memory caches" with the page size as line
size; they participate in the cost sum of Eq. 3.1 exactly like data
caches, but data-cache capacity constraints never apply to them and vice
versa, so we keep the two families separate and iterate over
:attr:`MemoryHierarchy.all_levels` when summing costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from .cache_level import CacheLevel

__all__ = ["MemoryHierarchy"]


@dataclass(frozen=True)
class MemoryHierarchy:
    """An ordered cascade of cache levels plus TLBs.

    Parameters
    ----------
    name:
        Profile name, e.g. ``"SGI Origin2000"``.
    levels:
        Data-cache levels ordered from the CPU outwards (L1 first).  Each
        level must be no smaller and no faster than its predecessor.
    tlbs:
        Translation lookaside buffers, ordered likewise (L1 TLB first).
    cpu_speed_mhz:
        Clock speed, used only to convert cycle counts in reports.
    """

    name: str
    levels: tuple[CacheLevel, ...]
    tlbs: tuple[CacheLevel, ...] = ()
    cpu_speed_mhz: float = 250.0

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a hierarchy needs at least one data cache level")
        for level in self.levels:
            if level.is_tlb:
                raise ValueError(f"{level.name}: TLB levels belong in 'tlbs'")
        for tlb in self.tlbs:
            if not tlb.is_tlb:
                raise ValueError(f"{tlb.name}: non-TLB level in 'tlbs'")
        for lvl in self.levels[:-1]:
            if lvl.is_pool:
                raise ValueError(
                    f"{lvl.name}: a buffer pool must be the outermost "
                    "data level (it caches disk, nothing caches it)"
                )
        for inner, outer in zip(self.levels, self.levels[1:]):
            if outer.capacity < inner.capacity:
                raise ValueError(
                    f"{outer.name} capacity ({outer.capacity}) is below "
                    f"{inner.name} capacity ({inner.capacity})"
                )
            if outer.line_size < inner.line_size:
                raise ValueError(
                    f"{outer.name} line size ({outer.line_size}) is below "
                    f"{inner.name} line size ({inner.line_size})"
                )
        if self.cpu_speed_mhz <= 0:
            raise ValueError("cpu_speed_mhz must be positive")

    # ------------------------------------------------------------------
    @property
    def all_levels(self) -> tuple[CacheLevel, ...]:
        """Data caches followed by TLBs — the index set of Eq. 3.1."""
        return self.levels + self.tlbs

    @property
    def num_levels(self) -> int:
        return len(self.all_levels)

    @property
    def buffer_pool(self) -> CacheLevel | None:
        """The buffer-pool level of a disk-extended hierarchy (always
        the outermost data level), or ``None`` for pure-memory
        profiles."""
        last = self.levels[-1]
        return last if last.is_pool else None

    @property
    def has_buffer_pool(self) -> bool:
        """Whether this hierarchy is disk-extended (paper Section 7)."""
        return self.levels[-1].is_pool

    def level(self, name: str) -> CacheLevel:
        """Look a level up by name (data caches and TLBs)."""
        for lvl in self.all_levels:
            if lvl.name == name:
                return lvl
        raise KeyError(f"no cache level named {name!r} in {self.name}")

    def fingerprint(self) -> str:
        """Stable content fingerprint of this profile (see
        :func:`repro.hardware.profile_fingerprint`)."""
        from .serialization import profile_fingerprint
        return profile_fingerprint(self)

    def cycles(self, nanoseconds: float) -> float:
        """Convert a duration in nanoseconds to CPU cycles."""
        return nanoseconds * self.cpu_speed_mhz / 1e3

    def nanoseconds(self, cycles: float) -> float:
        """Convert CPU cycles to nanoseconds."""
        return cycles * 1e3 / self.cpu_speed_mhz

    def scaled_capacities(self, factor: int, name_suffix: str = " (scaled)") -> "MemoryHierarchy":
        """A hierarchy with every capacity divided by ``factor``.

        Line sizes, page sizes and latencies are preserved so every ratio
        the cost model depends on (region size vs. capacity, cursor count
        vs. line count) survives; only the absolute scale shrinks.  Used to
        produce simulator-friendly variants of real machine profiles.
        """
        if factor < 1:
            raise ValueError("factor must be >= 1")

        def shrink(level: CacheLevel) -> CacheLevel:
            lines = max(level.effective_associativity if level.associativity else 1,
                        level.num_lines // factor)
            ways = level.associativity
            if ways and ways > lines:
                ways = lines
            return CacheLevel(
                name=level.name,
                capacity=lines * level.line_size,
                line_size=level.line_size,
                associativity=ways,
                seq_miss_latency_ns=level.seq_miss_latency_ns,
                rand_miss_latency_ns=level.rand_miss_latency_ns,
                is_tlb=level.is_tlb,
                is_pool=level.is_pool,
            )

        return MemoryHierarchy(
            name=self.name + name_suffix,
            levels=tuple(shrink(l) for l in self.levels),
            tlbs=tuple(shrink(t) for t in self.tlbs),
            cpu_speed_mhz=self.cpu_speed_mhz,
        )

    def scaled_latencies(self, multipliers: Mapping[str, tuple[float, float]],
                         name_suffix: str = " (recalibrated)"
                         ) -> "MemoryHierarchy":
        """A hierarchy with per-level miss latencies rescaled.

        ``multipliers`` maps level names to ``(seq_mult, rand_mult)``
        factors applied to that level's sequential/random miss
        latencies; unnamed levels keep theirs.  Capacities, line sizes
        and associativities are untouched, so every miss *count* the
        model derives (region size vs. capacity, cursors vs. lines) is
        preserved — only the per-miss prices move.  This is the
        parametric neighborhood the online recalibrator
        (:mod:`repro.calibrator.autotune`) searches.

        Raises :class:`KeyError` for an unknown level name and
        :class:`ValueError` when a rescaled level violates its own
        constraints (random latency must stay >= sequential).
        """
        known = {lvl.name for lvl in self.all_levels}
        unknown = sorted(set(multipliers) - known)
        if unknown:
            raise KeyError(
                f"no cache level named {unknown[0]!r} in {self.name}")
        for name, (seq_mult, rand_mult) in multipliers.items():
            if seq_mult <= 0 or rand_mult <= 0:
                raise ValueError(
                    f"{name}: latency multipliers must be positive, "
                    f"got ({seq_mult}, {rand_mult})")

        def reprice(level: CacheLevel) -> CacheLevel:
            seq_mult, rand_mult = multipliers.get(level.name, (1.0, 1.0))
            if seq_mult == 1.0 and rand_mult == 1.0:
                return level
            return replace(
                level,
                seq_miss_latency_ns=level.seq_miss_latency_ns * seq_mult,
                rand_miss_latency_ns=level.rand_miss_latency_ns * rand_mult,
            )

        return MemoryHierarchy(
            name=self.name + name_suffix,
            levels=tuple(reprice(l) for l in self.levels),
            tlbs=tuple(reprice(t) for t in self.tlbs),
            cpu_speed_mhz=self.cpu_speed_mhz,
        )

    def describe(self) -> list[dict[str, object]]:
        """Paper Table 1 rendered for this machine: one row per level."""
        return [lvl.describe() for lvl in self.all_levels]
