"""Unified hardware model (paper Section 2): cache levels and hierarchies."""

from .cache_level import FULLY_ASSOCIATIVE, CacheLevel
from .hierarchy import MemoryHierarchy
from .profiles import (
    disk_extended,
    disk_extended_scaled,
    modern_x86,
    origin2000,
    origin2000_scaled,
    parametric_profile,
    tiny_test_machine,
)
from .serialization import (
    hierarchy_from_dict,
    hierarchy_to_dict,
    load_hierarchy,
    profile_fingerprint,
    save_hierarchy,
)

__all__ = [
    "CacheLevel",
    "FULLY_ASSOCIATIVE",
    "MemoryHierarchy",
    "origin2000",
    "origin2000_scaled",
    "modern_x86",
    "disk_extended",
    "disk_extended_scaled",
    "parametric_profile",
    "tiny_test_machine",
    "hierarchy_to_dict",
    "hierarchy_from_dict",
    "save_hierarchy",
    "load_hierarchy",
    "profile_fingerprint",
]
