"""Characteristic parameters of one cache level (paper Table 1).

The unified hardware model of Section 2.3 describes a machine as a cascade
of ``N`` cache levels.  Each level ``i`` is characterised by its capacity
``C_i``, line (block) size ``Z_i``, associativity ``A_i``, and by the
latency/bandwidth of *misses* on that level, split into a sequential and a
random variant.  A miss on level ``i`` is served by level ``i+1``, so the
paper's dualism ``l_i = lambda_{i+1}`` (miss latency of level ``i`` equals
access latency of level ``i+1``) is already folded into these parameters.

TLBs are modelled as cache levels whose line size is the memory page size
and whose capacity is ``entries * page_size`` (Section 2.2); they are fully
associative and their misses carry no bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheLevel"]

#: Sentinel associativity meaning "fully associative".
FULLY_ASSOCIATIVE = 0


@dataclass(frozen=True)
class CacheLevel:
    """One level of the memory hierarchy (paper Table 1).

    Parameters
    ----------
    name:
        Human-readable level name, e.g. ``"L1"``, ``"L2"``, ``"TLB"``.
    capacity:
        Total size ``C`` in bytes.  For a TLB this is
        ``entries * page_size`` (its *virtual* capacity).
    line_size:
        Cache line / block size ``Z`` in bytes.  For a TLB this is the
        memory page size.
    associativity:
        Number of ways ``A``.  ``1`` means direct-mapped;
        ``0`` (:data:`FULLY_ASSOCIATIVE`) means fully associative.
    seq_miss_latency_ns:
        Latency ``l_s`` of a *sequential* miss on this level, in
        nanoseconds (the EDO / prefetch-friendly case of Section 2.2).
    rand_miss_latency_ns:
        Latency ``l_r`` of a *random* miss on this level, in nanoseconds.
    is_tlb:
        Whether this level is an address-translation cache.  TLB misses
        transfer no data, and sequential and random TLB latency coincide
        (Section 2.2).
    is_pool:
        Whether this level is a DBMS buffer pool caching disk pages
        (paper Section 7): its line size is the page size, a sequential
        miss is a page transfer and a random miss additionally carries
        the seek.  The flag marks the level so the simulator can track
        page residency/write-backs and so budget-aware planning can
        find the pool; the cost formulas treat it like any other level.
    """

    name: str
    capacity: int
    line_size: int
    associativity: int = FULLY_ASSOCIATIVE
    seq_miss_latency_ns: float = 0.0
    rand_miss_latency_ns: float = 0.0
    is_tlb: bool = False
    is_pool: bool = False

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"{self.name}: capacity must be positive, got {self.capacity}")
        if self.line_size <= 0:
            raise ValueError(f"{self.name}: line size must be positive, got {self.line_size}")
        if self.capacity % self.line_size != 0:
            raise ValueError(
                f"{self.name}: capacity {self.capacity} is not a multiple of "
                f"line size {self.line_size}"
            )
        if self.associativity < 0:
            raise ValueError(f"{self.name}: associativity must be >= 0, got {self.associativity}")
        if self.associativity > self.num_lines:
            raise ValueError(
                f"{self.name}: associativity {self.associativity} exceeds the "
                f"number of lines {self.num_lines}"
            )
        if self.seq_miss_latency_ns < 0 or self.rand_miss_latency_ns < 0:
            raise ValueError(f"{self.name}: latencies must be non-negative")
        if self.rand_miss_latency_ns < self.seq_miss_latency_ns:
            raise ValueError(
                f"{self.name}: random miss latency ({self.rand_miss_latency_ns} ns) "
                f"must not be below sequential miss latency "
                f"({self.seq_miss_latency_ns} ns)"
            )
        if self.is_tlb and self.associativity != FULLY_ASSOCIATIVE:
            raise ValueError(f"{self.name}: TLBs are fully associative in this model")
        if self.is_pool and self.is_tlb:
            raise ValueError(f"{self.name}: a buffer pool is a data level, not a TLB")

    # ------------------------------------------------------------------
    # Derived quantities of Table 1.
    # ------------------------------------------------------------------
    @property
    def num_lines(self) -> int:
        """Number of cache lines ``# = C / Z``."""
        return self.capacity // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of associativity sets (1 when fully associative)."""
        ways = self.effective_associativity
        return self.num_lines // ways

    @property
    def effective_associativity(self) -> int:
        """Associativity with the fully-associative sentinel resolved."""
        if self.associativity == FULLY_ASSOCIATIVE:
            return self.num_lines
        return self.associativity

    @property
    def seq_miss_bandwidth(self) -> float:
        """Sequential miss bandwidth ``b_s = Z / l_s`` in bytes/ns (0 for TLBs)."""
        if self.is_tlb or self.seq_miss_latency_ns == 0:
            return 0.0
        return self.line_size / self.seq_miss_latency_ns

    @property
    def rand_miss_bandwidth(self) -> float:
        """Random miss bandwidth ``b_r = Z / l_r`` in bytes/ns (0 for TLBs)."""
        if self.is_tlb or self.rand_miss_latency_ns == 0:
            return 0.0
        return self.line_size / self.rand_miss_latency_ns

    def miss_latency_ns(self, sequential: bool) -> float:
        """Latency of one miss of the given kind, in nanoseconds."""
        if sequential:
            return self.seq_miss_latency_ns
        return self.rand_miss_latency_ns

    def scaled(self, fraction: float) -> "CacheLevel":
        """A copy of this level with only ``fraction`` of the capacity.

        Used by the concurrent-execution rule (Eq. 5.3), which divides the
        cache among competing patterns proportionally to their footprints.
        The scaled capacity is kept a positive multiple of the line size.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        lines = max(1, int(self.num_lines * fraction))
        ways = self.associativity
        if ways != FULLY_ASSOCIATIVE:
            ways = min(ways, lines)
        return CacheLevel(
            name=self.name,
            capacity=lines * self.line_size,
            line_size=self.line_size,
            associativity=ways,
            seq_miss_latency_ns=self.seq_miss_latency_ns,
            rand_miss_latency_ns=self.rand_miss_latency_ns,
            is_tlb=self.is_tlb,
            is_pool=self.is_pool,
        )

    def describe(self) -> dict[str, object]:
        """The characteristic-parameter row of paper Table 1 for this level."""
        return {
            "name": self.name,
            "capacity_bytes": self.capacity,
            "line_size_bytes": self.line_size,
            "num_lines": self.num_lines,
            "associativity": "full" if self.associativity == FULLY_ASSOCIATIVE else self.associativity,
            "seq_miss_latency_ns": self.seq_miss_latency_ns,
            "rand_miss_latency_ns": self.rand_miss_latency_ns,
            "seq_miss_bandwidth_bytes_per_ns": round(self.seq_miss_bandwidth, 4),
            "rand_miss_bandwidth_bytes_per_ns": round(self.rand_miss_bandwidth, 4),
            "is_tlb": self.is_tlb,
        }
