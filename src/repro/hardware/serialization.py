"""Loading and saving machine profiles.

The paper's workflow instantiates the model per machine from calibrated
parameters; persisting profiles as JSON lets a calibration run on one
machine drive cost estimation anywhere.  The schema mirrors Table 1.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .cache_level import CacheLevel
from .hierarchy import MemoryHierarchy

__all__ = [
    "hierarchy_to_dict",
    "hierarchy_from_dict",
    "save_hierarchy",
    "load_hierarchy",
    "profile_fingerprint",
]

_SCHEMA_VERSION = 1


def _level_to_dict(level: CacheLevel) -> dict:
    return {
        "name": level.name,
        "capacity": level.capacity,
        "line_size": level.line_size,
        "associativity": level.associativity,
        "seq_miss_latency_ns": level.seq_miss_latency_ns,
        "rand_miss_latency_ns": level.rand_miss_latency_ns,
        "is_tlb": level.is_tlb,
        "is_pool": level.is_pool,
    }


def _level_from_dict(data: dict) -> CacheLevel:
    try:
        return CacheLevel(
            name=data["name"],
            capacity=int(data["capacity"]),
            line_size=int(data["line_size"]),
            associativity=int(data.get("associativity", 0)),
            seq_miss_latency_ns=float(data["seq_miss_latency_ns"]),
            rand_miss_latency_ns=float(data["rand_miss_latency_ns"]),
            is_tlb=bool(data.get("is_tlb", False)),
            is_pool=bool(data.get("is_pool", False)),
        )
    except KeyError as missing:
        raise ValueError(f"cache level entry missing field {missing}") from None


def hierarchy_to_dict(hierarchy: MemoryHierarchy) -> dict:
    """A JSON-ready description of a machine profile."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "name": hierarchy.name,
        "cpu_speed_mhz": hierarchy.cpu_speed_mhz,
        "levels": [_level_to_dict(l) for l in hierarchy.levels],
        "tlbs": [_level_to_dict(t) for t in hierarchy.tlbs],
    }


def hierarchy_from_dict(data: dict) -> MemoryHierarchy:
    """Rebuild a profile (validating all Table 1 constraints)."""
    version = data.get("schema_version", _SCHEMA_VERSION)
    if version != _SCHEMA_VERSION:
        raise ValueError(f"unsupported profile schema version {version}")
    if "levels" not in data or not data["levels"]:
        raise ValueError("profile has no cache levels")
    return MemoryHierarchy(
        name=data.get("name", "unnamed machine"),
        levels=tuple(_level_from_dict(l) for l in data["levels"]),
        tlbs=tuple(_level_from_dict(t) for t in data.get("tlbs", [])),
        cpu_speed_mhz=float(data.get("cpu_speed_mhz", 1000.0)),
    )


def profile_fingerprint(hierarchy: MemoryHierarchy) -> str:
    """A stable content fingerprint of a machine profile.

    Hashes the canonical JSON form of the profile (every Table 1
    parameter, the TLBs, and the clock speed), so two profiles have
    equal fingerprints exactly when the cost model would price every
    plan identically on them.  The display name is deliberately
    excluded: a :func:`~repro.hardware.parametric_profile` twin of a
    named stock profile prices identically, so it fingerprints
    identically — which is what lets what-if candidates join the
    serving reports they predict.  Plan caches use this as the profile
    component of their keys: recalibrating a machine changes the
    fingerprint, which silently retires every cached plan.
    """
    content = hierarchy_to_dict(hierarchy)
    del content["name"]
    payload = json.dumps(content, sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def save_hierarchy(hierarchy: MemoryHierarchy, path: str | Path) -> None:
    """Write a profile to a JSON file."""
    Path(path).write_text(
        json.dumps(hierarchy_to_dict(hierarchy), indent=2) + "\n"
    )


def load_hierarchy(path: str | Path) -> MemoryHierarchy:
    """Read a profile from a JSON file."""
    return hierarchy_from_dict(json.loads(Path(path).read_text()))
