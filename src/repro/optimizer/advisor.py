"""Cost-based algorithm selection (the paper's motivating use-case).

"The query optimizer uses this information to choose the most suitable
algorithm and/or implementation for each operator" (Section 1).  An
*operator advisor* enumerates the implementations of one operator kind,
derives each one's cost with the automatically combined cost functions,
and returns the ranking; the :class:`AdvisorRegistry` collects one
advisor per operator kind (join, sort, aggregate) for the plan
enumerator (:mod:`repro.query.optimizer`) to look up.  Each kind has
its own consultation surface — the enumerator calls
``JoinAdvisor.candidate_specs(U, V, ...)``,
``SortAdvisor.stop_bytes()`` and
``AggregateAdvisor.candidate_specs(composite_input=...)`` — so a
replacement advisor registered for a kind must match that kind's
signatures.  The logical component (cardinalities) is assumed perfect,
as in the paper ("we assume a perfect oracle to predict the data
volumes").

Pure CPU cost is modelled per algorithm as calibrated cycles-per-item
constants (Eq. 6.1), shared with the plan layer via
:mod:`repro.core.cpu`; the defaults are deliberately coarse — the
interesting crossovers are driven by the memory term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.algorithms import (
    DEFAULT_HASH_MAX_LOAD,
    external_merge_sort_pattern,
    grace_hash_join_pattern,
    hash_aggregate_pattern,
    hash_join_pattern,
    hash_table_region,
    merge_join_pattern,
    nested_loop_join_pattern,
    partition_pattern,
    partitioned_hash_join_pattern,
    quick_sort_pattern,
    sort_aggregate_pattern,
    spill_partition_count,
    spill_run_count,
    spilling_hash_aggregate_pattern,
)
from ..core.cost import CostEstimate, CostModel
from ..core.cpu import CPU_CYCLES_PER_ITEM, cpu_ns, sort_depth
from ..core.regions import DataRegion
from ..hardware.hierarchy import MemoryHierarchy

__all__ = [
    "OperatorAdvisor",
    "OperatorChoice",
    "JoinChoice",
    "JoinSpec",
    "JoinAdvisor",
    "SortAdvisor",
    "AggregateAdvisor",
    "AdvisorRegistry",
    "default_registry",
    "CPU_CYCLES_PER_ITEM",
]


@dataclass(frozen=True)
class OperatorChoice:
    """One scored implementation of some operator."""

    operator: str
    algorithm: str
    estimate: CostEstimate

    @property
    def total_ns(self) -> float:
        return self.estimate.total_ns


@dataclass(frozen=True)
class JoinChoice:
    """One scored join implementation."""

    algorithm: str
    estimate: CostEstimate

    @property
    def total_ns(self) -> float:
        return self.estimate.total_ns


@dataclass(frozen=True)
class JoinSpec:
    """A join implementation candidate the plan enumerator can build:
    the algorithm name plus injected parameters (partition count)."""

    algorithm: str
    partitions: int | None = None


class OperatorAdvisor:
    """Base class: scores the implementations of one operator kind.

    Parameters
    ----------
    hierarchy:
        Machine profile used for cost derivation.
    memory_budget:
        Working-memory bound in bytes (sort area, hash table, group
        table), or ``None`` for unbounded (pure in-memory planning).
        When an implementation's working structure exceeds the budget,
        the in-memory variant is *inadmissible* — the engine could not
        hold it — and the advisor offers the spilling variant instead,
        which is how enumeration picks spilling implementations exactly
        when footprints exceed the budget.
    """

    #: Operator kind this advisor covers (registry key).
    operator: str = "?"

    def __init__(self, hierarchy: MemoryHierarchy,
                 memory_budget: int | None = None) -> None:
        if memory_budget is not None and memory_budget < 1:
            raise ValueError("memory_budget must be positive (or None)")
        self.hierarchy = hierarchy
        self.memory_budget = memory_budget
        self.model = CostModel(hierarchy)

    def _min_cache_bytes(self) -> int:
        return min(l.capacity for l in self.hierarchy.all_levels)

    def _exceeds_budget(self, nbytes: int) -> bool:
        return self.memory_budget is not None and nbytes > self.memory_budget


class JoinAdvisor(OperatorAdvisor):
    """Scores join implementations with the cost model.

    Parameters
    ----------
    hierarchy:
        Machine profile used for cost derivation.
    inputs_sorted:
        Whether both operands are already sorted.  If not, merge join is
        charged two quick-sorts in addition to the merge.
    """

    operator = "join"

    def __init__(self, hierarchy: MemoryHierarchy,
                 inputs_sorted: bool = False,
                 memory_budget: int | None = None) -> None:
        super().__init__(hierarchy, memory_budget=memory_budget)
        self.inputs_sorted = inputs_sorted
        self._min_capacity = self._min_cache_bytes()

    # ------------------------------------------------------------------
    def merge_join_choice(self, U: DataRegion, V: DataRegion,
                          W: DataRegion) -> JoinChoice:
        pattern = merge_join_pattern(U, V, W)
        cpu = cpu_ns(self.hierarchy, "merge_join", U.n + V.n)
        if not self.inputs_sorted:
            pattern = (quick_sort_pattern(U, self._min_capacity)
                       + quick_sort_pattern(V, self._min_capacity)
                       + pattern)
            depth = math.ceil(math.log2(max(2, max(U.n, V.n))))
            cpu += cpu_ns(self.hierarchy, "sort", (U.n + V.n) * depth)
        return JoinChoice("merge_join", self.model.estimate(pattern, cpu_ns=cpu))

    def hash_join_choice(self, U: DataRegion, V: DataRegion,
                         W: DataRegion) -> JoinChoice:
        # Price the capacity-rounded table the engine actually builds,
        # consistent with recommend_partitions and the plan layer.
        H = hash_table_region(V, max_load=DEFAULT_HASH_MAX_LOAD)
        pattern = hash_join_pattern(U, V, W, H=H)
        cpu = cpu_ns(self.hierarchy, "hash_join", U.n + V.n)
        return JoinChoice("hash_join", self.model.estimate(pattern, cpu_ns=cpu))

    def partitioned_hash_join_choice(self, U: DataRegion, V: DataRegion,
                                     W: DataRegion,
                                     m: int | None = None) -> JoinChoice:
        m = m or self.recommend_partitions(V)
        out_U = DataRegion(f"P({U.name})", n=U.n, w=U.w)
        out_V = DataRegion(f"P({V.name})", n=V.n, w=V.w)
        V_parts = out_V.split(m)
        H_regions = tuple(
            hash_table_region(v, max_load=DEFAULT_HASH_MAX_LOAD)
            for v in V_parts
        )
        pattern = (partition_pattern(U, out_U, m)
                   + partition_pattern(V, out_V, m)
                   + partitioned_hash_join_pattern(
                       out_U.split(m), V_parts, W.split(m),
                       H_regions=H_regions))
        cpu = cpu_ns(self.hierarchy, "partitioned_hash_join", U.n + V.n)
        return JoinChoice("partitioned_hash_join",
                          self.model.estimate(pattern, cpu_ns=cpu))

    def nested_loop_join_choice(self, U: DataRegion, V: DataRegion,
                                W: DataRegion) -> JoinChoice:
        pattern = nested_loop_join_pattern(U, V, W)
        cpu = cpu_ns(self.hierarchy, "nested_loop_join", U.n * V.n)
        return JoinChoice("nested_loop_join",
                          self.model.estimate(pattern, cpu_ns=cpu))

    def grace_hash_join_choice(self, U: DataRegion, V: DataRegion,
                               W: DataRegion,
                               memory_budget: int | None = None
                               ) -> JoinChoice:
        """The spilling partitioned hash join under ``memory_budget``
        (defaults to the advisor's budget, which must then be set)."""
        budget = self.memory_budget if memory_budget is None else memory_budget
        if budget is None:
            raise ValueError("grace hash join needs a memory budget")
        pattern = grace_hash_join_pattern(U, V, W, budget)
        cpu = cpu_ns(self.hierarchy, "partitioned_hash_join", U.n + V.n)
        return JoinChoice("grace_hash_join",
                          self.model.estimate(pattern, cpu_ns=cpu))

    # ------------------------------------------------------------------
    def recommend_partitions(self, V: DataRegion,
                             target_level: str | None = None) -> int:
        """Smallest partition count that makes each per-partition hash
        table cache-resident (the paper's partitioned-hash-join design
        rule), bounded by the number of cache lines so partitioning
        itself stays cheap (Figure 7d's constraint).

        Sized from the capacity-rounded table the engine actually
        allocates (one shared :func:`~repro.core.hash_capacity` policy),
        not the abstract one-entry-per-item region."""
        levels = self.hierarchy.levels
        level = levels[-1] if target_level is None else self.hierarchy.level(target_level)
        table_bytes = hash_table_region(
            V, max_load=DEFAULT_HASH_MAX_LOAD).size
        m = 1
        while table_bytes / m > level.capacity:
            m *= 2
        max_m = max(1, min(lvl.num_lines for lvl in self.hierarchy.all_levels))
        return min(m, max_m)

    def candidate_specs(self, U: DataRegion, V: DataRegion,
                        include_nested_loop: bool = False) -> list[JoinSpec]:
        """The implementation candidates a plan enumerator should try
        for these operands, with parameters (partition count) injected.
        Partitioning is offered only when the un-partitioned hash table
        would not be cache-resident (``m > 1``).

        With a memory budget set and the build table exceeding it, the
        in-memory hash variants are inadmissible (the engine cannot
        hold the table): the grace hash join replaces them, its
        fan-out injected from the shared spill policy.  Merge join
        stays admissible — its merge phase streams; the budget applies
        to any sort-ahead through the sort advisor instead."""
        table_bytes = hash_table_region(
            V, max_load=DEFAULT_HASH_MAX_LOAD).size
        if self._exceeds_budget(table_bytes):
            m = spill_partition_count(table_bytes, self.memory_budget)
            m = min(m, U.n, V.n)
            specs = [JoinSpec("merge_join")]
            if m > 1:
                specs.append(JoinSpec("grace_hash_join", partitions=m))
            if include_nested_loop:
                specs.append(JoinSpec("nested_loop_join"))
            return specs
        specs = [JoinSpec("merge_join"), JoinSpec("hash_join")]
        m = self.recommend_partitions(V)
        if m > 1:
            specs.append(JoinSpec("partitioned_hash_join", partitions=m))
        if include_nested_loop:
            specs.append(JoinSpec("nested_loop_join"))
        return specs

    def rank(self, U: DataRegion, V: DataRegion, W: DataRegion,
             include_nested_loop: bool = False) -> list[JoinChoice]:
        """All admissible implementations, cheapest first (the choice
        set mirrors :meth:`candidate_specs`)."""
        table_bytes = hash_table_region(
            V, max_load=DEFAULT_HASH_MAX_LOAD).size
        if self._exceeds_budget(table_bytes):
            choices = [self.merge_join_choice(U, V, W)]
            m = min(spill_partition_count(table_bytes, self.memory_budget),
                    U.n, V.n)
            if m > 1:
                choices.append(self.grace_hash_join_choice(U, V, W))
        else:
            choices = [
                self.merge_join_choice(U, V, W),
                self.hash_join_choice(U, V, W),
                self.partitioned_hash_join_choice(U, V, W),
            ]
        if include_nested_loop:
            choices.append(self.nested_loop_join_choice(U, V, W))
        return sorted(choices, key=lambda c: c.total_ns)

    def best(self, U: DataRegion, V: DataRegion, W: DataRegion,
             include_nested_loop: bool = False) -> JoinChoice:
        """The cheapest implementation."""
        return self.rank(U, V, W, include_nested_loop)[0]


class SortAdvisor(OperatorAdvisor):
    """Scores sorting (in-place quick-sort, or external merge sort once
    the input exceeds the memory budget) and supplies the cache-pruning
    bound the plan layer injects into quick-sort patterns."""

    operator = "sort"

    def stop_bytes(self) -> int:
        """Sub-tables at or below this size are fully cache-resident on
        the smallest cache; deeper quick-sort passes are free."""
        return self._min_cache_bytes()

    def needs_external(self, U: DataRegion) -> bool:
        """Whether sorting ``U`` in place exceeds the memory budget
        (quick-sort's working set is the whole array), forcing the
        external merge sort."""
        return self._exceeds_budget(U.size)

    def quick_sort_choice(self, U: DataRegion) -> OperatorChoice:
        pattern = quick_sort_pattern(U, stop_bytes=self.stop_bytes())
        cpu = cpu_ns(self.hierarchy, "sort", U.n * sort_depth(U.n))
        return OperatorChoice("sort", "quick_sort",
                              self.model.estimate(pattern, cpu_ns=cpu))

    def external_sort_choice(self, U: DataRegion,
                             memory_budget: int | None = None
                             ) -> OperatorChoice:
        budget = self.memory_budget if memory_budget is None else memory_budget
        if budget is None:
            raise ValueError("external merge sort needs a memory budget")
        W = DataRegion(f"sort({U.name})", n=U.n, w=U.w)
        pattern = external_merge_sort_pattern(U, W, budget,
                                              stop_bytes=self.stop_bytes())
        r = spill_run_count(U, budget)
        run_n = -(-U.n // r)
        cpu = cpu_ns(self.hierarchy, "sort", U.n * sort_depth(run_n))
        if r > 1:
            cpu += cpu_ns(self.hierarchy, "merge_pass", U.n)
        return OperatorChoice("sort", "external_merge_sort",
                              self.model.estimate(pattern, cpu_ns=cpu))

    def rank(self, U: DataRegion) -> list[OperatorChoice]:
        if self.needs_external(U):
            return [self.external_sort_choice(U)]
        return [self.quick_sort_choice(U)]

    def best(self, U: DataRegion) -> OperatorChoice:
        return self.rank(U)[0]


class AggregateAdvisor(OperatorAdvisor):
    """Scores aggregation implementations (hash vs. sort-based)."""

    operator = "aggregate"

    def _output_region(self, groups: int) -> DataRegion:
        return DataRegion("agg", n=max(1, groups), w=16)

    def hash_choice(self, U: DataRegion, groups: int) -> OperatorChoice:
        G = hash_table_region(DataRegion("G", n=max(1, groups), w=16),
                              max_load=DEFAULT_HASH_MAX_LOAD, name="G")
        pattern = hash_aggregate_pattern(U, G, self._output_region(groups))
        cpu = cpu_ns(self.hierarchy, "hash_aggregate", U.n)
        return OperatorChoice("aggregate", "hash_aggregate",
                              self.model.estimate(pattern, cpu_ns=cpu))

    def sort_choice(self, U: DataRegion, groups: int) -> OperatorChoice:
        pattern = sort_aggregate_pattern(U, self._output_region(groups),
                                         stop_bytes=self._min_cache_bytes())
        cpu = (cpu_ns(self.hierarchy, "sort", U.n * sort_depth(U.n))
               + cpu_ns(self.hierarchy, "aggregate_pass", U.n))
        return OperatorChoice("aggregate", "sort_aggregate",
                              self.model.estimate(pattern, cpu_ns=cpu))

    def spilling_choice(self, U: DataRegion, groups: int,
                        memory_budget: int | None = None) -> OperatorChoice:
        """The partitioned (spilling) hash aggregate under
        ``memory_budget`` (defaults to the advisor's budget)."""
        budget = self.memory_budget if memory_budget is None else memory_budget
        if budget is None:
            raise ValueError("a spilling aggregate needs a memory budget")
        pattern = spilling_hash_aggregate_pattern(
            U, self._output_region(groups), groups, budget)
        cpu = cpu_ns(self.hierarchy, "hash_aggregate", U.n) + cpu_ns(
            self.hierarchy, "partition_pass", U.n)
        return OperatorChoice("aggregate", "spilling_hash_aggregate",
                              self.model.estimate(pattern, cpu_ns=cpu))

    def _group_table_bytes(self, groups: int) -> int:
        return hash_table_region(
            DataRegion("G", n=max(1, groups), w=16),
            max_load=DEFAULT_HASH_MAX_LOAD, name="G").size

    def candidate_specs(self, composite_input: bool = False,
                        U: DataRegion | None = None,
                        groups: int | None = None) -> list[str]:
        """Implementation names to try.  Sort-based aggregation groups
        on the raw stored values, so it is not applicable to composite
        (join-pair) inputs.

        With a memory budget set and ``groups`` given, a group table
        beyond the budget makes the in-memory hash aggregate
        inadmissible and offers the spilling variant; sort-based
        aggregation is likewise inadmissible once the (materialized)
        input it sorts in place exceeds the budget (``U`` given)."""
        if (groups is not None
                and self._exceeds_budget(self._group_table_bytes(groups))):
            specs = ["spilling_hash_aggregate"]
        else:
            specs = ["hash_aggregate"]
        if not composite_input and not (
                U is not None and self._exceeds_budget(U.size)):
            specs.append("sort_aggregate")
        return specs

    def rank(self, U: DataRegion, groups: int,
             composite_input: bool = False) -> list[OperatorChoice]:
        """All admissible implementations, cheapest first."""
        if self._exceeds_budget(self._group_table_bytes(groups)):
            choices = [self.spilling_choice(U, groups)]
        else:
            choices = [self.hash_choice(U, groups)]
        if not composite_input and not self._exceeds_budget(U.size):
            choices.append(self.sort_choice(U, groups))
        return sorted(choices, key=lambda c: c.total_ns)

    def best(self, U: DataRegion, groups: int,
             composite_input: bool = False) -> OperatorChoice:
        return self.rank(U, groups, composite_input)[0]


class AdvisorRegistry:
    """Per-operator-kind advisor lookup, consulted by the plan
    enumerator for implementation candidates and their parameters."""

    def __init__(self, advisors: tuple[OperatorAdvisor, ...] = ()) -> None:
        self._by_operator: dict[str, OperatorAdvisor] = {}
        for advisor in advisors:
            self.register(advisor)

    def register(self, advisor: OperatorAdvisor) -> "AdvisorRegistry":
        self._by_operator[advisor.operator] = advisor
        return self

    def advisor(self, operator: str) -> OperatorAdvisor:
        try:
            return self._by_operator[operator]
        except KeyError:
            raise KeyError(
                f"no advisor registered for operator {operator!r} "
                f"(have: {sorted(self._by_operator)})"
            ) from None

    def operators(self) -> list[str]:
        return sorted(self._by_operator)

    def __contains__(self, operator: str) -> bool:
        return operator in self._by_operator


def default_registry(hierarchy: MemoryHierarchy,
                     inputs_sorted: bool = False,
                     memory_budget: int | None = None) -> AdvisorRegistry:
    """The standard advisor set: join, sort and aggregate.

    ``memory_budget`` (bytes of working memory per operator, ``None``
    for unbounded) makes every advisor rule out in-memory variants
    whose working structures cannot be held, offering the spilling
    implementations instead."""
    return AdvisorRegistry((
        JoinAdvisor(hierarchy, inputs_sorted=inputs_sorted,
                    memory_budget=memory_budget),
        SortAdvisor(hierarchy, memory_budget=memory_budget),
        AggregateAdvisor(hierarchy, memory_budget=memory_budget),
    ))
