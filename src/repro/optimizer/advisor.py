"""Cost-based algorithm selection (the paper's motivating use-case).

"The query optimizer uses this information to choose the most suitable
algorithm and/or implementation for each operator" (Section 1).  The
advisor enumerates the implementations of an operator, derives each one's
cost with the automatically combined cost functions, and returns the
ranking.  The logical component (cardinalities) is assumed perfect, as in
the paper ("we assume a perfect oracle to predict the data volumes").

Pure CPU cost is modelled per algorithm as calibrated
cycles-per-item constants (Eq. 6.1); the defaults are deliberately
coarse — the interesting crossovers are driven by the memory term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.algorithms import (
    hash_join_pattern,
    hash_table_region,
    merge_join_pattern,
    nested_loop_join_pattern,
    partition_pattern,
    partitioned_hash_join_pattern,
    quick_sort_pattern,
)
from ..core.cost import CostEstimate, CostModel
from ..core.regions import DataRegion
from ..hardware.hierarchy import MemoryHierarchy

__all__ = ["JoinChoice", "JoinAdvisor", "CPU_CYCLES_PER_ITEM"]

#: Calibrated pure-CPU cost constants (cycles per processed item).
CPU_CYCLES_PER_ITEM = {
    "merge_join": 8.0,
    "hash_join": 30.0,
    "partitioned_hash_join": 40.0,
    "nested_loop_join": 4.0,   # per inner comparison
    "sort": 12.0,              # per item per recursion level
}


@dataclass(frozen=True)
class JoinChoice:
    """One scored join implementation."""

    algorithm: str
    estimate: CostEstimate

    @property
    def total_ns(self) -> float:
        return self.estimate.total_ns


class JoinAdvisor:
    """Scores join implementations with the cost model.

    Parameters
    ----------
    hierarchy:
        Machine profile used for cost derivation.
    inputs_sorted:
        Whether both operands are already sorted.  If not, merge join is
        charged two quick-sorts in addition to the merge.
    """

    def __init__(self, hierarchy: MemoryHierarchy,
                 inputs_sorted: bool = False) -> None:
        self.hierarchy = hierarchy
        self.model = CostModel(hierarchy)
        self.inputs_sorted = inputs_sorted
        self._min_capacity = min(l.capacity for l in hierarchy.all_levels)

    # ------------------------------------------------------------------
    def _cycles_ns(self, cycles: float) -> float:
        return self.hierarchy.nanoseconds(cycles)

    def merge_join_choice(self, U: DataRegion, V: DataRegion,
                          W: DataRegion) -> JoinChoice:
        pattern = merge_join_pattern(U, V, W)
        cpu = self._cycles_ns(CPU_CYCLES_PER_ITEM["merge_join"] * (U.n + V.n))
        if not self.inputs_sorted:
            pattern = (quick_sort_pattern(U, self._min_capacity)
                       + quick_sort_pattern(V, self._min_capacity)
                       + pattern)
            depth = math.ceil(math.log2(max(2, max(U.n, V.n))))
            cpu += self._cycles_ns(
                CPU_CYCLES_PER_ITEM["sort"] * (U.n + V.n) * depth
            )
        return JoinChoice("merge_join", self.model.estimate(pattern, cpu_ns=cpu))

    def hash_join_choice(self, U: DataRegion, V: DataRegion,
                         W: DataRegion) -> JoinChoice:
        pattern = hash_join_pattern(U, V, W)
        cpu = self._cycles_ns(CPU_CYCLES_PER_ITEM["hash_join"] * (U.n + V.n))
        return JoinChoice("hash_join", self.model.estimate(pattern, cpu_ns=cpu))

    def partitioned_hash_join_choice(self, U: DataRegion, V: DataRegion,
                                     W: DataRegion,
                                     m: int | None = None) -> JoinChoice:
        m = m or self.recommend_partitions(V)
        out_U = DataRegion(f"P({U.name})", n=U.n, w=U.w)
        out_V = DataRegion(f"P({V.name})", n=V.n, w=V.w)
        pattern = (partition_pattern(U, out_U, m)
                   + partition_pattern(V, out_V, m)
                   + partitioned_hash_join_pattern(
                       out_U.split(m), out_V.split(m), W.split(m)))
        cpu = self._cycles_ns(
            CPU_CYCLES_PER_ITEM["partitioned_hash_join"] * (U.n + V.n)
        )
        return JoinChoice("partitioned_hash_join",
                          self.model.estimate(pattern, cpu_ns=cpu))

    def nested_loop_join_choice(self, U: DataRegion, V: DataRegion,
                                W: DataRegion) -> JoinChoice:
        pattern = nested_loop_join_pattern(U, V, W)
        cpu = self._cycles_ns(
            CPU_CYCLES_PER_ITEM["nested_loop_join"] * U.n * V.n
        )
        return JoinChoice("nested_loop_join",
                          self.model.estimate(pattern, cpu_ns=cpu))

    # ------------------------------------------------------------------
    def recommend_partitions(self, V: DataRegion,
                             target_level: str | None = None) -> int:
        """Smallest partition count that makes each per-partition hash
        table cache-resident (the paper's partitioned-hash-join design
        rule), bounded by the number of cache lines so partitioning
        itself stays cheap (Figure 7d's constraint)."""
        levels = self.hierarchy.levels
        level = levels[-1] if target_level is None else self.hierarchy.level(target_level)
        table_bytes = hash_table_region(V).size
        m = 1
        while table_bytes / m > level.capacity:
            m *= 2
        max_m = max(1, min(lvl.num_lines for lvl in self.hierarchy.all_levels))
        return min(m, max_m)

    def rank(self, U: DataRegion, V: DataRegion, W: DataRegion,
             include_nested_loop: bool = False) -> list[JoinChoice]:
        """All candidate implementations, cheapest first."""
        choices = [
            self.merge_join_choice(U, V, W),
            self.hash_join_choice(U, V, W),
            self.partitioned_hash_join_choice(U, V, W),
        ]
        if include_nested_loop:
            choices.append(self.nested_loop_join_choice(U, V, W))
        return sorted(choices, key=lambda c: c.total_ns)

    def best(self, U: DataRegion, V: DataRegion, W: DataRegion,
             include_nested_loop: bool = False) -> JoinChoice:
        """The cheapest implementation."""
        return self.rank(U, V, W, include_nested_loop)[0]
