"""Cost-based algorithm selection built on the derived cost functions."""

from .advisor import (
    CPU_CYCLES_PER_ITEM,
    AdvisorRegistry,
    AggregateAdvisor,
    JoinAdvisor,
    JoinChoice,
    JoinSpec,
    OperatorAdvisor,
    OperatorChoice,
    SortAdvisor,
    default_registry,
)

__all__ = [
    "OperatorAdvisor",
    "OperatorChoice",
    "JoinAdvisor",
    "JoinChoice",
    "JoinSpec",
    "SortAdvisor",
    "AggregateAdvisor",
    "AdvisorRegistry",
    "default_registry",
    "CPU_CYCLES_PER_ITEM",
]
