"""Cost-based algorithm selection built on the derived cost functions."""

from .advisor import CPU_CYCLES_PER_ITEM, JoinAdvisor, JoinChoice

__all__ = ["JoinAdvisor", "JoinChoice", "CPU_CYCLES_PER_ITEM"]
