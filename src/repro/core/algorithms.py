"""Pattern descriptions of database algorithms (paper Table 2 & Section 6.2).

Building a physical cost function for an operator "boils down to
describing the algorithm's data access in a pattern language"
(Section 7).  This module is that pattern library: one factory per
operator, returning the compound pattern whose cost function the
:class:`~repro.core.cost.CostModel` then derives automatically.

Conventions (matching the paper's Table 2):

* ``U`` — (left/outer) input region, ``V`` — right/inner input region,
* ``W`` — output region,
* ``H`` — hash-table region (``H.n`` entries of ``H.w`` bytes),
* ``G`` — aggregate/group table region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from .patterns import (
    BI,
    RANDOM,
    SEQUENTIAL,
    UNI,
    Conc,
    Nest,
    Pattern,
    RAcc,
    RSTrav,
    RTrav,
    Seq,
    STrav,
)
from .regions import DataRegion

__all__ = [
    "scan_pattern",
    "select_pattern",
    "project_pattern",
    "hash_table_region",
    "hash_capacity",
    "hash_build_pattern",
    "hash_probe_pattern",
    "hash_join_pattern",
    "merge_join_pattern",
    "nested_loop_join_pattern",
    "partition_pattern",
    "partitioned_hash_join_pattern",
    "quick_sort_pattern",
    "sort_aggregate_pattern",
    "hash_aggregate_pattern",
    "hash_aggregate_phases",
    "duplicate_elimination_pattern",
    "merge_union_pattern",
    "spill_run_count",
    "spill_partition_count",
    "partition_capacity",
    "external_merge_sort_phases",
    "external_merge_sort_pattern",
    "grace_hash_join_phases",
    "grace_hash_join_pattern",
    "spilling_hash_aggregate_phases",
    "spilling_hash_aggregate_pattern",
    "TABLE2",
    "Table2Row",
    "DEFAULT_HASH_MAX_LOAD",
]

#: Default bytes per hash-table entry (key + payload/oid).
DEFAULT_HASH_ENTRY_WIDTH = 16

#: Default load-factor bound for hash structures.  The engine's
#: open-addressing tables (``db.hashtable``, ``db.aggregate``) size their
#: slot arrays to the smallest power of two keeping the load at or below
#: this bound; cost descriptions that should match those executions round
#: the same way (pass ``max_load=DEFAULT_HASH_MAX_LOAD`` to
#: :func:`hash_table_region`).
DEFAULT_HASH_MAX_LOAD = 0.5


def hash_capacity(n: int, max_load: float = DEFAULT_HASH_MAX_LOAD) -> int:
    """The engine's capacity-rounding policy for hash structures.

    The smallest power of two ``c`` with ``c * max_load >= n`` — i.e. the
    slot count that keeps the load factor at or below ``max_load``.  This
    is the single source of truth used by the simulated hash table, the
    hash aggregate's group table, and the plan nodes' hash regions.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 < max_load <= 1.0:
        raise ValueError("max_load must be in (0, 1]")
    capacity = 1
    while capacity * max_load < n:
        capacity *= 2
    return capacity


# ----------------------------------------------------------------------
# Unary operators.
# ----------------------------------------------------------------------

def scan_pattern(U: DataRegion, u: int | None = None) -> Pattern:
    """Table scan: one sequential sweep over the input."""
    return STrav(U, u)


def select_pattern(U: DataRegion, W: DataRegion, u: int | None = None) -> Pattern:
    """Selection: sequential input cursor, sequential output cursor."""
    return STrav(U, u) * STrav(W)


def project_pattern(U: DataRegion, W: DataRegion, u: int | None = None) -> Pattern:
    """Projection: like selection, but reading only ``u`` bytes per item."""
    return STrav(U, u) * STrav(W)


def quick_sort_pattern(U: DataRegion, stop_bytes: int | None = None) -> Pattern:
    """In-place quick-sort (Section 6.2).

    Each partitioning pass runs two cursors concurrently towards each
    other, one over each half of the sub-table
    (``s_trav+(sub.L) ⊙ s_trav+(sub.R)``); recursion then descends
    depth-first into both halves, ``⊕``-sequencing the passes.  Recursion
    depth is ``ceil(log2 R.n)``.

    ``stop_bytes`` prunes the generated tree: once a sub-table is no
    larger than ``stop_bytes`` (use the *smallest* cache capacity of the
    target machine), every deeper pass operates on fully cached data and
    contributes zero misses at every level, so the pruned sub-trees are
    exactly the free ones.  Without a bound the tree is generated down to
    two-item sub-tables (fine for small regions only).
    """
    stop = 0 if stop_bytes is None else stop_bytes

    def recurse(sub: DataRegion, depth: int) -> Pattern:
        left, right = sub.halves(suffix=f"@{depth}")
        pass_pattern: Pattern = STrav(left) * STrav(right)
        if sub.n <= 2 or sub.size <= stop or left.n < 2 or right.n < 2:
            return pass_pattern
        return Seq.of(
            pass_pattern,
            recurse(left, depth + 1),
            recurse(right, depth + 1),
        )

    return recurse(U, 0)


# ----------------------------------------------------------------------
# Hash-based building blocks.
# ----------------------------------------------------------------------

def hash_table_region(V: DataRegion,
                      entry_width: int = DEFAULT_HASH_ENTRY_WIDTH,
                      max_load: float | None = None,
                      name: str | None = None) -> DataRegion:
    """The hash-table region ``H`` for an input ``V``.

    With the default ``max_load=None`` the region has one entry per item
    (the paper's abstract description).  Passing a load bound applies the
    engine's explicit capacity-rounding policy (:func:`hash_capacity`):
    slot count is the smallest power of two keeping the load at or below
    the bound, matching what ``db.SimHashTable`` actually allocates.
    """
    n = V.n if max_load is None else hash_capacity(V.n, max_load)
    return DataRegion(name=name or f"H({V.name})", n=n, w=entry_width)


def hash_build_pattern(V: DataRegion, H: DataRegion) -> Pattern:
    """Hash-table build: sequential input, random writes into ``H``.

    A good hash function destroys any order, so the output cursor's hops
    are modelled as a random traversal (Section 3.2).
    """
    return STrav(V) * RTrav(H)


def hash_probe_pattern(U: DataRegion, H: DataRegion, W: DataRegion) -> Pattern:
    """Hash-table probe: sequential outer input, ``U.n`` random hits into
    ``H``, sequential output."""
    return STrav(U) * RAcc(H, r=U.n) * STrav(W)


def hash_join_pattern(U: DataRegion, V: DataRegion, W: DataRegion,
                      entry_width: int = DEFAULT_HASH_ENTRY_WIDTH,
                      H: DataRegion | None = None) -> Pattern:
    """Hash join (Section 6.2)::

        hash_join(U,V,W) = s_trav(V) ⊙ r_trav(H)
                         ⊕ s_trav(U) ⊙ r_acc(U.n, H) ⊙ s_trav(W)

    builds a hash table on the inner input ``V``, then probes it with the
    outer input ``U``.
    """
    H = H or hash_table_region(V, entry_width)
    return hash_build_pattern(V, H) + hash_probe_pattern(U, H, W)


# ----------------------------------------------------------------------
# Other joins.
# ----------------------------------------------------------------------

def merge_join_pattern(U: DataRegion, V: DataRegion, W: DataRegion) -> Pattern:
    """Merge join of sorted operands: three concurrent sequential sweeps
    (Section 6.2)."""
    return STrav(U) * STrav(V) * STrav(W)


def nested_loop_join_pattern(U: DataRegion, V: DataRegion, W: DataRegion) -> Pattern:
    """Nested-loop join: for every outer item, a full sequential traversal
    of the inner input (Section 3.2)."""
    return STrav(U) * RSTrav(V, r=U.n, direction=UNI) * STrav(W)


# ----------------------------------------------------------------------
# Partitioning (Section 6.2).
# ----------------------------------------------------------------------

def partition_pattern(U: DataRegion, H: DataRegion, m: int) -> Pattern:
    """Partition ``U`` into ``m`` clusters::

        partition(U,H,m) = s_trav(U) ⊙ nest(H, m, s_trav, rand)

    The input is read sequentially; the output region holds one
    sequential local cursor per cluster, picked in (hash-)random order by
    the global cursor.
    """
    return STrav(U) * Nest(H, m=m, local="s_trav", order=RANDOM)


def partitioned_hash_join_pattern(
        U_parts: tuple[DataRegion, ...],
        V_parts: tuple[DataRegion, ...],
        W_parts: tuple[DataRegion, ...],
        entry_width: int = DEFAULT_HASH_ENTRY_WIDTH,
        H_regions: tuple[DataRegion, ...] | None = None) -> Pattern:
    """Partitioned hash join: a hash join per matching cluster pair::

        part_hash_join = ⊕_{j=1..m} hash_join(U_j, V_j, W_j)

    ``H_regions`` optionally overrides the default per-pair hash-table
    regions (e.g. with the capacities an actual implementation chose).
    """
    if not (len(U_parts) == len(V_parts) == len(W_parts)):
        raise ValueError("operand partition counts differ")
    if H_regions is not None and len(H_regions) != len(U_parts):
        raise ValueError("H_regions count differs from partition count")
    joins = [
        hash_join_pattern(u, v, w, entry_width,
                          H=H_regions[j] if H_regions else None)
        for j, (u, v, w) in enumerate(zip(U_parts, V_parts, W_parts))
    ]
    return Seq.of(*joins)


# ----------------------------------------------------------------------
# Out-of-core (spilling) variants — paper Section 7.
#
# With the buffer pool modelled as one more cache level, operators whose
# auxiliary structure (sort area, hash table, group table) exceeds an
# explicit *memory budget* must run their disk-era variants: external
# merge sort, grace hash join, partitioned aggregation.  Their patterns
# compose from exactly the same basic vocabulary — runs are sequential
# traversals of sub-regions, spilled tables are RAcc over per-partition
# regions small enough to stay pool-resident.
# ----------------------------------------------------------------------

def spill_run_count(U: DataRegion, memory_budget: int) -> int:
    """How many sorted runs external merge sort produces for ``U`` under
    ``memory_budget`` bytes of sort area: ``ceil(||U|| / M)``, clamped
    so a run holds at least one item.  ``1`` means the whole input fits
    — no spill."""
    if memory_budget < 1:
        raise ValueError("memory_budget must be positive")
    return min(U.n, max(1, math.ceil(U.size / memory_budget)))


def partition_capacity(n: int, m: int, slack_sigmas: float = 6.0) -> int:
    """Items allocated per partition buffer when splitting ``n`` items
    ``m`` ways: the expected fill ``n/m`` plus ``slack_sigmas`` binomial
    standard deviations (uniform keys make cluster sizes
    Binomial(n, 1/m)).  The single capacity policy shared by the engine
    (:func:`repro.db.partition`) and the pattern builders, so the model
    prices the buffers the engine actually allocates."""
    if m < 1:
        raise ValueError("m must be positive")
    expected = n / m
    return int(expected + slack_sigmas * math.sqrt(expected) + 8)


def spill_partition_count(table_bytes: int, memory_budget: int) -> int:
    """The spill fan-out: smallest power of two ``m`` bringing a
    ``table_bytes`` structure to at most ``memory_budget`` per
    partition.  The budget analogue of
    :meth:`~repro.optimizer.JoinAdvisor.recommend_partitions` (which
    targets a cache level instead)."""
    if memory_budget < 1:
        raise ValueError("memory_budget must be positive")
    m = 1
    while table_bytes / m > memory_budget:
        m *= 2
    return m


def _output_parts(W: DataRegion, m: int) -> tuple[DataRegion, ...]:
    """``m`` per-partition output sub-regions of ``W``.  Identical to
    ``W.split(m)`` when the output has at least ``m`` items; a smaller
    output (selective join) still gets ``m`` one-item regions — the
    fan-out follows the *inputs*, never the output cardinality."""
    if m <= W.n:
        return W.split(m)
    return tuple(W.subregion(f"{W.name}[{j}]", n=1) for j in range(m))


def external_merge_sort_phases(
        U: DataRegion, W: DataRegion, memory_budget: int,
        stop_bytes: int | None = None) -> tuple[tuple[Pattern, ...], Pattern]:
    """The two phases of external merge sort, separately.

    Phase 1 quick-sorts each budget-sized run of ``U`` in place; phase 2
    merges the ``r`` sorted runs into ``W`` with ``r + 1`` concurrent
    sequential cursors — the :func:`merge_join_pattern` shape
    generalized to ``r`` inputs, which is why external sort's I/O stays
    sequential (the classic reason it wins out of core).
    """
    r = spill_run_count(U, memory_budget)
    runs = U.split(r) if r > 1 else (U,)
    run_sorts = tuple(quick_sort_pattern(run, stop_bytes) for run in runs)
    merge = Conc.of(*(STrav(run) for run in runs), STrav(W))
    return run_sorts, merge


def external_merge_sort_pattern(U: DataRegion, W: DataRegion,
                                memory_budget: int,
                                stop_bytes: int | None = None) -> Pattern:
    """External merge sort under a sort-area budget::

        ext_sort(U,W,M) = ⊕_{j=1..r} quick_sort(U_j) ⊕ (⊙_j s_trav+(U_j) ⊙ s_trav+(W))

    with ``r = ceil(||U|| / M)`` runs.  Degenerates to plain
    :func:`quick_sort_pattern` when ``U`` fits the budget.
    """
    run_sorts, merge = external_merge_sort_phases(U, W, memory_budget,
                                                 stop_bytes)
    if len(run_sorts) == 1:
        return run_sorts[0]
    return Seq.of(*run_sorts, merge)


def grace_hash_join_phases(U: DataRegion, V: DataRegion, W: DataRegion,
                           memory_budget: int,
                           entry_width: int = DEFAULT_HASH_ENTRY_WIDTH
                           ) -> "tuple[Pattern, Pattern, Pattern] | None":
    """The three phases of a grace hash join — (partition ``U``,
    partition ``V``, per-partition joins) — or ``None`` when the build
    table already fits ``memory_budget`` (no spill).  Exposed separately
    so pipelined plan composition can ``⊙``-overlap each input with its
    partition pass only."""
    H_full = hash_table_region(V, entry_width, max_load=DEFAULT_HASH_MAX_LOAD)
    m = spill_partition_count(H_full.size, memory_budget)
    # Clamped by the *input* sizes only, exactly like the engine — a
    # selective join's small output must not collapse the fan-out.
    m = min(m, U.n, V.n)
    if m <= 1:
        return None
    # Price what the engine allocates: partition buffers carry binomial
    # slack (partition_capacity), and every per-partition hash table is
    # sized uniformly from that *planned* capacity — not the actual
    # cluster fill, whose binomial variance would double the table
    # whenever a cluster crosses a power-of-two boundary and decouple
    # the prediction from the execution.
    cap_U = partition_capacity(U.n, m)
    cap_V = partition_capacity(V.n, m)
    PU = DataRegion(f"P({U.name})", n=m * cap_U, w=U.w)
    PV = DataRegion(f"P({V.name})", n=m * cap_V, w=V.w)
    # The join phases traverse the expected fills, not the slack.
    U_parts = tuple(PU.subregion(f"P({U.name})[{j}]", n=max(1, U.n // m))
                    for j in range(m))
    V_parts = tuple(PV.subregion(f"P({V.name})[{j}]", n=max(1, V.n // m))
                    for j in range(m))
    H_regions = tuple(
        hash_table_region(DataRegion(f"V[{j}]", n=cap_V, w=V.w),
                          entry_width, max_load=DEFAULT_HASH_MAX_LOAD,
                          name=f"H[{j}]")
        for j in range(m)
    )
    joins = partitioned_hash_join_pattern(U_parts, V_parts,
                                          _output_parts(W, m),
                                          entry_width, H_regions=H_regions)
    return (partition_pattern(U, PU, m), partition_pattern(V, PV, m), joins)


def grace_hash_join_pattern(U: DataRegion, V: DataRegion, W: DataRegion,
                            memory_budget: int,
                            entry_width: int = DEFAULT_HASH_ENTRY_WIDTH
                            ) -> Pattern:
    """Grace (spilling partitioned) hash join under a build-table
    budget: partition both inputs until each per-partition hash table
    fits in ``memory_budget``, then hash-join matching partition pairs —
    structurally :func:`partitioned_hash_join_pattern` with the fan-out
    chosen by the budget rather than a cache capacity.  Degenerates to
    plain :func:`hash_join_pattern` when the whole table fits.
    """
    phases = grace_hash_join_phases(U, V, W, memory_budget, entry_width)
    if phases is None:
        H = hash_table_region(V, entry_width, max_load=DEFAULT_HASH_MAX_LOAD)
        return hash_join_pattern(U, V, W, entry_width, H=H)
    part_U, part_V, joins = phases
    return part_U + part_V + joins


def spilling_hash_aggregate_phases(
        U: DataRegion, W: DataRegion, groups: int, memory_budget: int,
        entry_width: int = DEFAULT_HASH_ENTRY_WIDTH
        ) -> "tuple[Pattern, Pattern] | None":
    """The two phases of a spilling hash aggregate — (partition the
    input by key, ``⊕`` of the per-partition aggregates) — or ``None``
    when the group table fits ``memory_budget`` (no spill).  Like the
    engine, the partition buffers carry the shared
    :func:`partition_capacity` slack."""
    groups = max(1, groups)
    G_full = hash_table_region(DataRegion("G", n=groups, w=entry_width),
                               entry_width, max_load=DEFAULT_HASH_MAX_LOAD,
                               name="G")
    m = spill_partition_count(G_full.size, memory_budget)
    m = min(m, U.n, groups, W.n)
    if m <= 1:
        return None
    cap = partition_capacity(U.n, m)
    PU = DataRegion(f"P({U.name})", n=m * cap, w=U.w)
    U_parts = tuple(PU.subregion(f"P({U.name})[{j}]", n=max(1, U.n // m))
                    for j in range(m))
    per_part_groups = max(1, math.ceil(groups / m))
    passes = []
    for j, (part, w_part) in enumerate(zip(U_parts, W.split(m))):
        G_j = hash_table_region(
            DataRegion(f"G[{j}]", n=per_part_groups, w=entry_width),
            entry_width, max_load=DEFAULT_HASH_MAX_LOAD, name=f"G[{j}]")
        passes.append(hash_aggregate_pattern(part, G_j, w_part))
    return partition_pattern(U, PU, m), Seq.of(*passes)


def spilling_hash_aggregate_pattern(U: DataRegion, W: DataRegion,
                                    groups: int, memory_budget: int,
                                    entry_width: int = DEFAULT_HASH_ENTRY_WIDTH
                                    ) -> Pattern:
    """Hash aggregation under a group-table budget: partition the input
    by grouping key until each per-partition group table fits in
    ``memory_budget``, then hash-aggregate every partition —
    ``partition(U,P,m) ⊕ ⊕_j hash_aggr(P_j, G_j, W_j)``.  Degenerates
    to plain :func:`hash_aggregate_pattern` when the table fits.
    """
    phases = spilling_hash_aggregate_phases(U, W, groups, memory_budget,
                                            entry_width)
    if phases is None:
        G_full = hash_table_region(
            DataRegion("G", n=max(1, groups), w=entry_width),
            entry_width, max_load=DEFAULT_HASH_MAX_LOAD, name="G")
        return hash_aggregate_pattern(U, G_full, W)
    partition_pass, aggregates = phases
    return partition_pass + aggregates


# ----------------------------------------------------------------------
# Aggregation / duplicate elimination / set operations.
# ----------------------------------------------------------------------

def sort_aggregate_pattern(U: DataRegion, W: DataRegion,
                           stop_bytes: int | None = None) -> Pattern:
    """Sort-based aggregation: quick-sort the input, then one sequential
    pass emitting group results."""
    return quick_sort_pattern(U, stop_bytes) + (STrav(U) * STrav(W))


def hash_aggregate_phases(U: DataRegion, G: DataRegion,
                          W: DataRegion) -> tuple[Pattern, Pattern]:
    """The two phases of hash aggregation, separately.

    Phase 1 consumes the input (sequential input cursor, one random
    group-table hit per item); phase 2 emits the group results.  Exposed
    separately so pipeline-aware plan composition can ``⊙``-combine a
    producer's stream with phase 1 only (phase 2 cannot start before the
    last input item arrived).
    """
    return (STrav(U) * RAcc(G, r=U.n), STrav(G) * STrav(W))


def hash_aggregate_pattern(U: DataRegion, G: DataRegion, W: DataRegion) -> Pattern:
    """Hash-based aggregation: sequential input, one random hit into the
    group table per item, sequential output of group results."""
    consume, emit = hash_aggregate_phases(U, G, W)
    return consume + emit


def duplicate_elimination_pattern(U: DataRegion, H: DataRegion,
                                  W: DataRegion) -> Pattern:
    """Hash-based duplicate elimination (the paper notes aggregation and
    duplicate elimination perform the sorting or hashing patterns)."""
    return STrav(U) * RAcc(H, r=U.n) * STrav(W)


def merge_union_pattern(U: DataRegion, V: DataRegion, W: DataRegion) -> Pattern:
    """Union (and, structurally, intersection/difference) of sorted
    inputs: derived from merge join, three concurrent sweeps."""
    return STrav(U) * STrav(V) * STrav(W)


# ----------------------------------------------------------------------
# Table 2 registry (for rendering the paper's table).
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    """One row of paper Table 2: an algorithm and its pattern description."""

    algorithm: str
    description: str
    example: Callable[[], Pattern]


def _demo_regions() -> dict[str, DataRegion]:
    U = DataRegion("U", n=1000, w=8)
    V = DataRegion("V", n=1000, w=8)
    W = DataRegion("W", n=1000, w=16)
    return {
        "U": U, "V": V, "W": W,
        "H": hash_table_region(V),
        "G": DataRegion("G", n=64, w=16),
    }


def _table2() -> tuple[Table2Row, ...]:
    r = _demo_regions()
    return (
        Table2Row("scan(U)", "s_trav+(U)",
                  lambda: scan_pattern(r["U"])),
        Table2Row("select(U,W)", "s_trav+(U) ⊙ s_trav+(W)",
                  lambda: select_pattern(r["U"], r["W"])),
        Table2Row("project(U,W,u)", "s_trav+(U,u) ⊙ s_trav+(W)",
                  lambda: project_pattern(r["U"], r["W"], u=4)),
        Table2Row("sort(U)", "⊕_levels (s_trav+(U.L) ⊙ s_trav+(U.R)) — quick-sort",
                  lambda: quick_sort_pattern(r["U"], stop_bytes=r["U"].size // 4)),
        Table2Row("build(V,H)", "s_trav+(V) ⊙ r_trav(H)",
                  lambda: hash_build_pattern(r["V"], r["H"])),
        Table2Row("probe(U,H,W)", "s_trav+(U) ⊙ r_acc(U.n,H) ⊙ s_trav+(W)",
                  lambda: hash_probe_pattern(r["U"], r["H"], r["W"])),
        Table2Row("hash_join(U,V,W)",
                  "build(V,H) ⊕ probe(U,H,W)",
                  lambda: hash_join_pattern(r["U"], r["V"], r["W"])),
        Table2Row("merge_join(U,V,W)", "s_trav+(U) ⊙ s_trav+(V) ⊙ s_trav+(W)",
                  lambda: merge_join_pattern(r["U"], r["V"], r["W"])),
        Table2Row("nl_join(U,V,W)",
                  "s_trav+(U) ⊙ rs_trav(U.n, uni, V) ⊙ s_trav+(W)",
                  lambda: nested_loop_join_pattern(r["U"], r["V"], r["W"])),
        Table2Row("partition(U,H,m)", "s_trav+(U) ⊙ nest(H, m, s_trav, rand)",
                  lambda: partition_pattern(r["U"], DataRegion("Hp", 1000, 8), 16)),
        Table2Row("part_hash_join", "⊕_j hash_join(U_j, V_j, W_j)",
                  lambda: partitioned_hash_join_pattern(
                      r["U"].split(4), r["V"].split(4),
                      tuple(DataRegion(f"W[{j}]", 250, 16) for j in range(4)))),
        Table2Row("hash_aggr(U,G,W)", "s_trav+(U) ⊙ r_acc(U.n,G) ⊕ s_trav+(G) ⊙ s_trav+(W)",
                  lambda: hash_aggregate_pattern(r["U"], r["G"], r["W"])),
    )


#: The rendered rows of paper Table 2 (algorithm, description, example).
TABLE2: tuple[Table2Row, ...] = _table2()
