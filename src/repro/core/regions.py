"""Data regions: the paper's unified description of data structures.

A data region ``R`` (Section 3.1) consists of ``R.n`` data items of width
``R.w`` bytes; its size is ``||R|| = R.n * R.w``.  A relational table is a
region whose length is the cardinality and whose width is the tuple size;
a tree is a region of nodes, a hash table a region of buckets, and so on.

Regions may be *sub-regions* of other regions (``parent``).  Sub-regions
are how we express quick-sort's recursion (each recursion level operates
on halves of the level above) and partitioning's output clusters; the
cache-state rules of Section 5.1 exploit the parent chain: data cached for
an enclosing region also serves its sub-regions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["DataRegion"]


@dataclass(frozen=True)
class DataRegion:
    """A region of ``n`` items of ``w`` bytes each.

    Parameters
    ----------
    name:
        Identifier used in pattern renderings and state tracking.
    n:
        Number of data items ``R.n`` (must be positive).
    w:
        Width of one item ``R.w`` in bytes (must be positive).
    parent:
        Enclosing region, if this region is a part of a larger one.
    """

    name: str
    n: int
    w: int
    parent: "DataRegion | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"region {self.name}: n must be positive, got {self.n}")
        if self.w <= 0:
            raise ValueError(f"region {self.name}: w must be positive, got {self.w}")
        if self.parent is not None and self.size > self.parent.size:
            raise ValueError(
                f"region {self.name}: size {self.size} exceeds parent "
                f"{self.parent.name} size {self.parent.size}"
            )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``||R|| = R.n * R.w`` in bytes."""
        return self.n * self.w

    def lines(self, line_size: int) -> int:
        """Number of cache lines covered: ``|R|_i = ceil(||R|| / Z_i)``."""
        if line_size <= 0:
            raise ValueError("line_size must be positive")
        return math.ceil(self.size / line_size)

    def items_fitting(self, capacity: int) -> int:
        """Number of items that fit in a cache: ``||C_i||_R = C_i / R.w``."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        return capacity // self.w

    # ------------------------------------------------------------------
    def subregion(self, name: str, n: int, w: int | None = None) -> "DataRegion":
        """A sub-region of this region with ``n`` items of width ``w``.

        ``w`` defaults to this region's item width.  The sub-region's
        parent pointer is set so the cost model's cache-state rules can
        recognise containment.
        """
        return DataRegion(name=name, n=n, w=self.w if w is None else w, parent=self)

    def halves(self, suffix: str = "") -> "tuple[DataRegion, DataRegion]":
        """The two (nearly equal) halves of this region, as sub-regions.

        Used by the quick-sort pattern of Section 6.2, whose two cursors
        concurrently sweep one half each.
        """
        left_n = max(1, self.n // 2)
        right_n = max(1, self.n - left_n)
        return (
            self.subregion(f"{self.name}.L{suffix}", left_n),
            self.subregion(f"{self.name}.R{suffix}", right_n),
        )

    def split(self, m: int) -> "tuple[DataRegion, ...]":
        """``m`` equal-sized sub-regions (the paper's nested access setup)."""
        if m <= 0:
            raise ValueError("m must be positive")
        if m > self.n:
            raise ValueError(f"cannot split {self.n} items into {m} sub-regions")
        base = self.n // m
        remainder = self.n % m
        parts = []
        for j in range(m):
            parts.append(self.subregion(f"{self.name}[{j}]", base + (1 if j < remainder else 0)))
        return tuple(parts)

    # ------------------------------------------------------------------
    def ancestors(self) -> "list[DataRegion]":
        """This region followed by its ancestors, innermost first."""
        chain = [self]
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def root(self) -> "DataRegion":
        """The outermost enclosing region."""
        return self.ancestors()[-1]

    def is_within(self, other: "DataRegion") -> bool:
        """Whether ``other`` appears on this region's parent chain."""
        return any(a is other or a == other for a in self.ancestors())

    def __repr__(self) -> str:
        return f"DataRegion({self.name}, n={self.n}, w={self.w})"
