"""The access-pattern language of Section 3.

Basic patterns (Section 3.2)::

    s_trav  — single sequential traversal        STrav(R, u)
    r_trav  — single random traversal            RTrav(R, u)
    rs_trav — repetitive sequential traversal    RSTrav(r, direction, R, u)
    rr_trav — repetitive random traversal        RRTrav(r, R, u)
    r_acc   — random access (r hits)             RAcc(r, R, u)
    nest    — interleaved multi-cursor access    Nest(R, m, local, order, ...)

Sequential traversals come in two latency variants (Section 4.1): the
``seq_latency=True`` variant (written ``s_trav+``) models code that can
exploit the EDO/prefetch stream and incurs *sequential* misses; the
``seq_latency=False`` variant (``s_trav-``) incurs the same *number* of
misses but at random latency (data dependencies defeat overlapping).

Compound patterns (Section 3.3) combine children with sequential
execution ``⊕`` (:class:`Seq`) or concurrent execution ``⊙``
(:class:`Conc`).  Python operators mirror the paper's precedence (``⊙``
binds tighter than ``⊕``): ``a * b`` is concurrent, ``a + b`` is
sequential, and ``*`` binds tighter than ``+`` in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal

from .regions import DataRegion

__all__ = [
    "Pattern",
    "BasicPattern",
    "STrav",
    "RTrav",
    "RSTrav",
    "RRTrav",
    "RAcc",
    "Nest",
    "Seq",
    "Conc",
    "seq",
    "conc",
    "UNI",
    "BI",
    "SEQUENTIAL",
    "RANDOM",
]

#: Traversal directions (parameter ``d`` of the paper).
UNI: Literal["uni"] = "uni"
BI: Literal["bi"] = "bi"

#: Global cursor orders of ``nest`` (parameter ``o`` of the paper).
SEQUENTIAL: Literal["seq"] = "seq"
RANDOM: Literal["rand"] = "rand"


class Pattern:
    """Base class of all access patterns (basic and compound)."""

    def __add__(self, other: "Pattern") -> "Seq":
        """Sequential execution ``self ⊕ other`` (paper operator ⊕)."""
        if not isinstance(other, Pattern):
            return NotImplemented
        return Seq.of(self, other)

    def __mul__(self, other: "Pattern") -> "Conc":
        """Concurrent execution ``self ⊙ other`` (paper operator ⊙)."""
        if not isinstance(other, Pattern):
            return NotImplemented
        return Conc.of(self, other)

    def regions(self) -> list[DataRegion]:
        """All data regions referenced by this pattern, in order."""
        raise NotImplementedError

    def notation(self) -> str:
        """Rendering in the paper's pattern notation."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.notation()


@dataclass(frozen=True, repr=False)
class BasicPattern(Pattern):
    """A basic pattern over one data region.

    ``u`` is the number of bytes actually used of each data item
    (Section 3.2); it defaults to the full item width and must satisfy
    ``1 <= u <= R.w``.
    """

    region: DataRegion
    u: int | None = None

    def __post_init__(self) -> None:
        if self.u is not None:
            if self.u < 1:
                raise ValueError(f"u must be >= 1, got {self.u}")
            if self.u > self.region.w:
                raise ValueError(
                    f"u ({self.u}) exceeds item width {self.region.w} "
                    f"of region {self.region.name}"
                )

    @property
    def used_bytes(self) -> int:
        """``u`` with the default (full item width) resolved."""
        return self.region.w if self.u is None else self.u

    @property
    def is_random(self) -> bool:
        """Whether this is a random pattern (only random misses)."""
        raise NotImplementedError

    def regions(self) -> list[DataRegion]:
        return [self.region]

    def _u_suffix(self) -> str:
        return "" if self.u is None else f", {self.u}"


@dataclass(frozen=True, repr=False)
class STrav(BasicPattern):
    """Single sequential traversal ``s_trav(R[, u])``.

    ``seq_latency`` selects the ``s_trav+`` (True) or ``s_trav-`` (False)
    variant of Section 4.1.
    """

    seq_latency: bool = True

    @property
    def is_random(self) -> bool:
        return False

    def notation(self) -> str:
        sign = "+" if self.seq_latency else "-"
        return f"s_trav{sign}({self.region.name}{self._u_suffix()})"


@dataclass(frozen=True, repr=False)
class RTrav(BasicPattern):
    """Single random traversal ``r_trav(R[, u])``: every item exactly once,
    in random order."""

    @property
    def is_random(self) -> bool:
        return True

    def notation(self) -> str:
        return f"r_trav({self.region.name}{self._u_suffix()})"


@dataclass(frozen=True, repr=False)
class RSTrav(BasicPattern):
    """Repetitive sequential traversal ``rs_trav(r, d, R[, u])``.

    ``r`` traversals, each a full sequential sweep; ``direction`` says
    whether subsequent sweeps run in the same (:data:`UNI`) or alternating
    (:data:`BI`) direction — only bi-directional sweeps can re-use the
    cache tail left by their predecessor (Section 4.5.1).
    """

    r: int = 1
    direction: str = UNI
    seq_latency: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.r < 1:
            raise ValueError(f"r must be >= 1, got {self.r}")
        if self.direction not in (UNI, BI):
            raise ValueError(f"direction must be 'uni' or 'bi', got {self.direction!r}")

    @property
    def is_random(self) -> bool:
        return False

    def notation(self) -> str:
        sign = "+" if self.seq_latency else "-"
        return (f"rs_trav{sign}({self.r}, {self.direction}, "
                f"{self.region.name}{self._u_suffix()})")


@dataclass(frozen=True, repr=False)
class RRTrav(BasicPattern):
    """Repetitive random traversal ``rr_trav(r, R[, u])``.

    Permutation orders of subsequent traversals are independent, so no
    direction parameter exists (Section 3.2).
    """

    r: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.r < 1:
            raise ValueError(f"r must be >= 1, got {self.r}")

    @property
    def is_random(self) -> bool:
        return True

    def notation(self) -> str:
        return f"rr_trav({self.r}, {self.region.name}{self._u_suffix()})"


@dataclass(frozen=True, repr=False)
class RAcc(BasicPattern):
    """Random access ``r_acc(r, R[, u])``: ``r`` independent uniform hits,
    items may repeat and need not all be touched."""

    r: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.r < 1:
            raise ValueError(f"r must be >= 1, got {self.r}")

    @property
    def is_random(self) -> bool:
        return True

    def notation(self) -> str:
        return f"r_acc({self.r}, {self.region.name}{self._u_suffix()})"


@dataclass(frozen=True, repr=False)
class Nest(BasicPattern):
    """Interleaved multi-cursor access ``nest(R, m, P, o[, d])``.

    ``R`` is divided into ``m`` equal sub-regions, each with a local
    cursor performing ``local`` (the name of a basic pattern class); a
    global cursor picks local cursors sequentially (``order=SEQUENTIAL``,
    optionally with direction ``direction``) or randomly
    (``order=RANDOM``).  This is the paper's model for partitioning
    output: one sequential cursor per output buffer, hopping between
    buffers in input-data order.
    """

    m: int = 1
    local: str = "s_trav"
    order: str = RANDOM
    direction: str = UNI
    seq_latency: bool = True
    #: For a local ``r_acc``: total number of accesses across all cursors.
    r: int | None = None

    _LOCALS = ("s_trav", "r_trav", "r_acc")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.m > self.region.n:
            raise ValueError(
                f"m ({self.m}) exceeds the region length {self.region.n}"
            )
        if self.local not in self._LOCALS:
            raise ValueError(f"local must be one of {self._LOCALS}, got {self.local!r}")
        if self.order not in (SEQUENTIAL, RANDOM):
            raise ValueError(f"order must be 'seq' or 'rand', got {self.order!r}")
        if self.direction not in (UNI, BI):
            raise ValueError(f"direction must be 'uni' or 'bi', got {self.direction!r}")
        if self.local == "r_acc" and self.r is None:
            raise ValueError("a local r_acc nest needs the total access count r")

    @property
    def is_random(self) -> bool:
        return self.local != "s_trav" or self.order == RANDOM

    def notation(self) -> str:
        return (f"nest({self.region.name}, {self.m}, {self.local}, "
                f"{self.order})")


class _Compound(Pattern):
    """Shared behaviour of ``Seq`` and ``Conc``."""

    _symbol = "?"

    def __init__(self, parts: Iterable[Pattern]) -> None:
        parts = tuple(parts)
        if len(parts) < 1:
            raise ValueError("a compound pattern needs at least one part")
        for part in parts:
            if not isinstance(part, Pattern):
                raise TypeError(f"not a pattern: {part!r}")
        self.parts = parts

    @classmethod
    def of(cls, *parts: Pattern) -> "_Compound":
        """Build, flattening nested compounds of the same kind
        (both ⊕ and ⊙ are associative; ⊙ is also commutative).

        Flattening is one level deep per call, which suffices for
        incremental composition: growing a compound one part at a time
        (``Conc.of(Conc.of(a, b), c)``, or equivalently ``a * b * c``)
        always yields the flat ``(a, b, c)``, because the inner compound
        was itself built flat.  Only the *direct constructor*
        (``Conc(Conc(...), c)``) preserves nesting — the cost evaluator
        divides the cache identically either way (⊙ sharing is
        proportional, hence associative), but canonical flat parts are
        what notation, equality and the schedulers rely on.
        """
        flat: list[Pattern] = []
        for part in parts:
            if type(part) is cls:
                flat.extend(part.parts)  # type: ignore[attr-defined]
            else:
                flat.append(part)
        return cls(flat)

    def regions(self) -> list[DataRegion]:
        out: list[DataRegion] = []
        for part in self.parts:
            out.extend(part.regions())
        return out

    def notation(self) -> str:
        inner = f" {self._symbol} ".join(
            f"({p.notation()})" if isinstance(p, _Compound) else p.notation()
            for p in self.parts
        )
        return inner

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.parts == other.parts  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.parts))


class Seq(_Compound):
    """Sequential execution ``P1 ⊕ P2 ⊕ ...``: parts run one after the
    other; later parts may re-use cache contents left by earlier ones
    (Section 5.1)."""

    _symbol = "⊕"


class Conc(_Compound):
    """Concurrent execution ``P1 ⊙ P2 ⊙ ...``: parts compete for the
    cache, which the model divides proportionally to the parts'
    footprints (Section 5.2)."""

    _symbol = "⊙"


def seq(*parts: Pattern | None) -> Pattern | None:
    """``⊕``-combine the non-``None`` parts.

    ``None`` parts (access-free plan stages, e.g. bare scans) are
    skipped; a single surviving part is returned unwrapped, and ``None``
    is returned when nothing remains.  This is the composition helper
    external layers (plan composition, the concurrent workload service)
    use to assemble patterns without special-casing emptiness.
    """
    present = [p for p in parts if p is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    return Seq.of(*present)


def conc(*parts: Pattern | None) -> Pattern | None:
    """``⊙``-combine the non-``None`` parts (same conventions as
    :func:`seq`).  Composing the whole patterns of queries that are to
    run *concurrently* under one ``conc`` is exactly the paper's
    Section 5.2 model of inter-query cache contention."""
    present = [p for p in parts if p is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    return Conc.of(*present)
