"""Cache state for sequential pattern combination (paper Section 5.1).

The state of one cache level is a set of pairs ``(R, rho)`` stating for
each data region the fraction ``rho`` of it available in the cache.  When
patterns execute sequentially (``⊕``), a pattern may benefit from the
state its predecessor left behind (Eq. 5.1):

* a region entirely in the cache costs nothing to traverse again;
* a partially cached region (fraction ``rho``) helps *random* patterns
  proportionally — any access hits the cached fraction with probability
  ``rho`` — but not sequential ones, which would need the cached fraction
  to be exactly the head of the region (the paper conservatively assumes
  it is not);
* after a pattern, the cache holds ``min(1, C/||R||)`` of its region
  (Eq. 5.1's state-transition rule).

Sub-region inheritance: a region is also considered cached to the extent
its ancestors or descendants are.  When a pattern's region fits entirely,
the state records the *highest ancestor that also fits* as resident —
under LRU, a recursive algorithm (quick-sort) whose working set stays
inside a cache-sized ancestor keeps that whole ancestor resident.  This
is the reconstruction that produces the paper's Figure 7a step (see
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .regions import DataRegion

__all__ = ["CacheState"]


@dataclass(frozen=True)
class CacheState:
    """Per-level cache state: mapping of regions to cached fractions."""

    entries: tuple[tuple[DataRegion, float], ...] = ()

    @classmethod
    def empty(cls) -> "CacheState":
        """The initially empty cache the paper assumes (Section 4.5)."""
        return cls(())

    @classmethod
    def of(cls, *pairs: tuple[DataRegion, float]) -> "CacheState":
        for region, rho in pairs:
            if not 0.0 <= rho <= 1.0:
                raise ValueError(f"fraction for {region.name} out of [0, 1]: {rho}")
        return cls(tuple(pairs))

    # ------------------------------------------------------------------
    def cached_fraction(self, region: DataRegion) -> float:
        """The fraction of ``region`` available in the cache.

        A direct entry counts fully.  An entry for an *ancestor* implies
        the same fraction of the sub-region (uniform-residency
        assumption); an entry for a *descendant* contributes its bytes
        scaled to the enclosing region's size.
        """
        best = 0.0
        for entry_region, rho in self.entries:
            if rho <= 0.0:
                continue
            if region is entry_region or region == entry_region:
                best = max(best, rho)
            elif region.is_within(entry_region):
                best = max(best, rho)
            elif entry_region.is_within(region):
                best = max(best, rho * entry_region.size / region.size)
        return min(1.0, best)

    def is_fully_cached(self, region: DataRegion) -> bool:
        return self.cached_fraction(region) >= 1.0

    # ------------------------------------------------------------------
    @staticmethod
    def after_pattern(region: DataRegion, capacity: float) -> "CacheState":
        """State left by a pattern over ``region`` on a cache of
        ``capacity`` bytes (Eq. 5.1 transition + ancestor promotion)."""
        rho = min(1.0, capacity / region.size)
        if rho >= 1.0:
            resident = region
            for ancestor in region.ancestors():
                if ancestor.size <= capacity:
                    resident = ancestor
            return CacheState(((resident, 1.0),))
        return CacheState(((region, rho),))

    def merged(self, other: "CacheState") -> "CacheState":
        """Union of two states; on conflicts the larger fraction wins
        (used to combine the per-part states of concurrent execution)."""
        combined: list[tuple[DataRegion, float]] = list(self.entries)
        for region, rho in other.entries:
            for idx, (existing, existing_rho) in enumerate(combined):
                if existing == region:
                    if rho > existing_rho:
                        combined[idx] = (region, rho)
                    break
            else:
                combined.append((region, rho))
        return CacheState(tuple(combined))

    def __repr__(self) -> str:
        inner = ", ".join(f"({r.name}, {rho:.3f})" for r, rho in self.entries)
        return f"CacheState({{{inner}}})"
