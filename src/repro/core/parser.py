"""Parser for the paper's textual pattern language.

Cost functions "boil down to describing the algorithms' data access in
a kind of pattern language" (Section 7).  This module makes the language
executable as text, so pattern descriptions can live in configuration or
documentation and be parsed against a set of named regions::

    parse_pattern("s_trav+(U) ⊙ r_trav(H) ⊕ s_trav+(V) ⊙ r_acc(1000, H)",
                  {"U": U, "H": H, "V": V})

Grammar (whitespace-insensitive)::

    pattern   := concurrent (("⊕" | "+") concurrent)*
    concurrent:= atom (("⊙" | "*") atom)*
    atom      := basic | "(" pattern ")"
    basic     := name "(" args ")"
    name      := s_trav[+|-] | r_trav | rs_trav[+|-] | rr_trav
               | r_acc | nest

Arguments follow the paper's signatures: ``s_trav(R[, u])``,
``rs_trav(r, uni|bi, R[, u])``, ``rr_trav(r, R[, u])``,
``r_acc(r, R[, u])``, ``nest(R, m, local, seq|rand[, uni|bi])``.
``⊙`` binds tighter than ``⊕``, as in the paper.
"""

from __future__ import annotations

import re

from .patterns import (
    BI,
    RANDOM,
    SEQUENTIAL,
    UNI,
    Conc,
    Nest,
    Pattern,
    RAcc,
    RRTrav,
    RSTrav,
    RTrav,
    Seq,
    STrav,
)
from .regions import DataRegion

__all__ = ["parse_pattern", "PatternSyntaxError"]


class PatternSyntaxError(ValueError):
    """Raised for malformed pattern text."""


_TOKEN = re.compile(r"""
    (?P<seq>⊕|(?<![\w+])\+(?![\w+]))
  | (?P<conc>⊙|\*)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<word>[A-Za-z_][A-Za-z0-9_.\[\]]*[+-]?)
  | (?P<number>\d+)
  | (?P<space>\s+)
""", re.VERBOSE)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match:
            raise PatternSyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind != "space":
            tokens.append((kind, match.group()))
    tokens.append(("end", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]],
                 regions: dict[str, DataRegion]) -> None:
        self.tokens = tokens
        self.regions = regions
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def take(self, kind: str) -> str:
        actual_kind, value = self.tokens[self.pos]
        if actual_kind != kind:
            raise PatternSyntaxError(
                f"expected {kind}, found {value!r} (token {self.pos})")
        self.pos += 1
        return value

    # ------------------------------------------------------------------
    def parse(self) -> Pattern:
        pattern = self.sequence()
        if self.peek()[0] != "end":
            raise PatternSyntaxError(
                f"trailing input from token {self.pos}: {self.peek()[1]!r}")
        return pattern

    def sequence(self) -> Pattern:
        parts = [self.concurrent()]
        while self.peek()[0] == "seq":
            self.take("seq")
            parts.append(self.concurrent())
        return parts[0] if len(parts) == 1 else Seq.of(*parts)

    def concurrent(self) -> Pattern:
        parts = [self.atom()]
        while self.peek()[0] == "conc":
            self.take("conc")
            parts.append(self.atom())
        return parts[0] if len(parts) == 1 else Conc.of(*parts)

    def atom(self) -> Pattern:
        kind, value = self.peek()
        if kind == "lpar":
            self.take("lpar")
            inner = self.sequence()
            self.take("rpar")
            return inner
        if kind == "word":
            return self.basic()
        raise PatternSyntaxError(f"expected a pattern, found {value!r}")

    # ------------------------------------------------------------------
    def basic(self) -> Pattern:
        name = self.take("word")
        self.take("lpar")
        args = self.arguments()
        self.take("rpar")
        return self.build(name, args)

    def arguments(self) -> list[str]:
        args: list[str] = []
        while self.peek()[0] in ("word", "number"):
            args.append(self.tokens[self.pos][1])
            self.pos += 1
            if self.peek()[0] == "comma":
                self.take("comma")
        return args

    # ------------------------------------------------------------------
    def region(self, token: str) -> DataRegion:
        try:
            return self.regions[token]
        except KeyError:
            raise PatternSyntaxError(f"unknown region {token!r}") from None

    def number(self, token: str, what: str) -> int:
        if not token.isdigit():
            raise PatternSyntaxError(f"expected {what}, found {token!r}")
        return int(token)

    def build(self, name: str, args: list[str]) -> Pattern:
        base = name.rstrip("+-")
        seq_latency = not name.endswith("-")

        if base == "s_trav":
            if not 1 <= len(args) <= 2:
                raise PatternSyntaxError("s_trav takes (R[, u])")
            u = self.number(args[1], "u") if len(args) == 2 else None
            return STrav(self.region(args[0]), u=u, seq_latency=seq_latency)

        if base == "r_trav":
            if not 1 <= len(args) <= 2:
                raise PatternSyntaxError("r_trav takes (R[, u])")
            u = self.number(args[1], "u") if len(args) == 2 else None
            return RTrav(self.region(args[0]), u=u)

        if base == "rs_trav":
            if not 3 <= len(args) <= 4:
                raise PatternSyntaxError("rs_trav takes (r, uni|bi, R[, u])")
            direction = args[1]
            if direction not in (UNI, BI):
                raise PatternSyntaxError(
                    f"rs_trav direction must be uni or bi, got {direction!r}")
            u = self.number(args[3], "u") if len(args) == 4 else None
            return RSTrav(self.region(args[2]), u=u,
                          r=self.number(args[0], "r"),
                          direction=direction, seq_latency=seq_latency)

        if base == "rr_trav":
            if not 2 <= len(args) <= 3:
                raise PatternSyntaxError("rr_trav takes (r, R[, u])")
            u = self.number(args[2], "u") if len(args) == 3 else None
            return RRTrav(self.region(args[1]), u=u,
                          r=self.number(args[0], "r"))

        if base == "r_acc":
            if not 2 <= len(args) <= 3:
                raise PatternSyntaxError("r_acc takes (r, R[, u])")
            u = self.number(args[2], "u") if len(args) == 3 else None
            return RAcc(self.region(args[1]), u=u,
                        r=self.number(args[0], "r"))

        if base == "nest":
            if not 4 <= len(args) <= 5:
                raise PatternSyntaxError(
                    "nest takes (R, m, local, seq|rand[, uni|bi])")
            order = args[3]
            if order not in (SEQUENTIAL, RANDOM):
                raise PatternSyntaxError(
                    f"nest order must be seq or rand, got {order!r}")
            direction = args[4] if len(args) == 5 else UNI
            if direction not in (UNI, BI):
                raise PatternSyntaxError(
                    f"nest direction must be uni or bi, got {direction!r}")
            return Nest(self.region(args[0]),
                        m=self.number(args[1], "m"),
                        local=args[2], order=order, direction=direction)

        raise PatternSyntaxError(f"unknown basic pattern {name!r}")


def parse_pattern(text: str, regions: dict[str, DataRegion]) -> Pattern:
    """Parse a pattern in the paper's notation against named regions."""
    if not text.strip():
        raise PatternSyntaxError("empty pattern")
    return _Parser(_tokenize(text), regions).parse()
