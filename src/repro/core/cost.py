"""Automatic cost-function assembly (paper Sections 3.3, 5 and 6.1).

Given a (compound) access pattern and a machine profile, the
:class:`CostModel` derives the pattern's memory-access cost by

1. estimating, per cache level, the sequential/random miss pair of every
   basic pattern (Section 4, :mod:`repro.core.misses`),
2. threading cache state through sequential combinations ``⊕``
   (Eqs. 5.1 / 5.2),
3. dividing the cache among concurrent combinations ``⊙`` proportionally
   to the parts' footprints (Eq. 5.3), and
4. scoring misses with their latencies and summing over levels
   (Eq. 3.1), optionally adding calibrated pure CPU time (Eq. 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.cache_level import CacheLevel
from ..hardware.hierarchy import MemoryHierarchy
from .misses import LevelGeometry, MissPair, basic_pattern_misses
from .patterns import BasicPattern, Conc, Pattern, RTrav, Seq, STrav
from .state import CacheState

__all__ = ["CostModel", "CostEstimate", "LevelCost", "footprint_lines",
           "cache_shares"]


def footprint_lines(pattern: Pattern, line_size: int) -> float:
    """A pattern's footprint: the cache lines it potentially revisits
    (Section 5.2).

    Single sequential traversals never return to a line once past it, so
    their footprint is a single line; the same holds for single random
    traversals whose untouched gaps span at least a line.  Every other
    basic pattern may revisit any line covered by its region.  Sequential
    compounds occupy the maximum of their parts (one part runs at a
    time); concurrent compounds the sum (all parts compete at once).
    """
    if isinstance(pattern, STrav):
        return 1.0
    if isinstance(pattern, RTrav):
        if pattern.region.w - pattern.used_bytes >= line_size:
            return 1.0
        return float(pattern.region.lines(line_size))
    if isinstance(pattern, BasicPattern):
        return float(pattern.region.lines(line_size))
    if isinstance(pattern, Seq):
        return max(footprint_lines(p, line_size) for p in pattern.parts)
    if isinstance(pattern, Conc):
        return sum(footprint_lines(p, line_size) for p in pattern.parts)
    raise TypeError(f"not a pattern: {pattern!r}")


def cache_shares(parts: "list[Pattern] | tuple[Pattern, ...]",
                 line_size: int) -> list[float]:
    """The cache fraction each concurrent part receives under ⊙
    (Eq. 5.3): proportional to the parts' footprints, equal when every
    footprint is zero.  Exposed for external co-run composition — the
    workload scheduler uses it to reason about contention without
    re-deriving the division rule."""
    if not parts:
        raise ValueError("cache_shares needs at least one pattern")
    prints = [footprint_lines(p, line_size) for p in parts]
    total = sum(prints)
    if total <= 0:
        return [1.0 / len(prints)] * len(prints)
    return [fp / total for fp in prints]


@dataclass(frozen=True)
class LevelCost:
    """Predicted misses and time of one cache level (one Eq. 3.1 summand)."""

    level: CacheLevel
    misses: MissPair

    @property
    def name(self) -> str:
        return self.level.name

    @property
    def time_ns(self) -> float:
        return self.misses.time_ns(
            self.level.seq_miss_latency_ns, self.level.rand_miss_latency_ns
        )


@dataclass(frozen=True)
class CostEstimate:
    """The full cost prediction of one pattern on one machine."""

    levels: tuple[LevelCost, ...]
    cpu_ns: float = 0.0

    @property
    def memory_ns(self) -> float:
        """Memory-access time ``T_mem`` (Eq. 3.1)."""
        return sum(lc.time_ns for lc in self.levels)

    @property
    def total_ns(self) -> float:
        """Total execution time ``T = T_mem + T_cpu`` (Eq. 6.1)."""
        return self.memory_ns + self.cpu_ns

    def level(self, name: str) -> LevelCost:
        for lc in self.levels:
            if lc.name == name:
                return lc
        raise KeyError(f"no level named {name!r}")

    def misses(self, name: str) -> float:
        """Total predicted misses of the named level."""
        return self.level(name).misses.total

    def as_dict(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for lc in self.levels:
            out[lc.name] = {
                "seq_misses": lc.misses.seq,
                "rand_misses": lc.misses.rand,
                "time_ns": lc.time_ns,
            }
        out["total"] = {"memory_ns": self.memory_ns, "cpu_ns": self.cpu_ns,
                        "total_ns": self.total_ns}
        return out


class CostModel:
    """Derives cost functions from pattern descriptions automatically.

    Parameters
    ----------
    hierarchy:
        The machine profile (data caches and TLBs are all costed, each
        with its own geometry — the paper treats TLBs as caches whose
        line size is the page size).
    """

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy

    # ------------------------------------------------------------------
    def estimate(self, pattern: Pattern, cpu_ns: float = 0.0) -> CostEstimate:
        """Predict per-level misses and total time for ``pattern``.

        ``cpu_ns`` is the calibrated pure CPU time of the algorithm
        (Eq. 6.1); it defaults to zero, which predicts memory time only.
        """
        levels = tuple(
            LevelCost(level=level, misses=self.level_misses(pattern, level))
            for level in self.hierarchy.all_levels
        )
        return CostEstimate(levels=levels, cpu_ns=cpu_ns)

    def level_misses(self, pattern: Pattern, level: CacheLevel,
                     state: CacheState | None = None) -> MissPair:
        """Predicted misses of ``pattern`` on one level (Eq. 4.1 pair)."""
        geo = LevelGeometry(
            line_size=level.line_size,
            capacity=float(level.capacity),
            num_lines=float(level.num_lines),
        )
        pair, _ = self._evaluate(pattern, geo, state or CacheState.empty())
        return pair

    def misses(self, pattern: Pattern) -> dict[str, MissPair]:
        """Predicted misses of every level, keyed by level name."""
        return {
            level.name: self.level_misses(pattern, level)
            for level in self.hierarchy.all_levels
        }

    def sequential_estimates(self, parts: "list[Pattern | None] | tuple[Pattern | None, ...]"
                             ) -> tuple[CostEstimate, ...]:
        """Per-part cost of running ``parts`` one after another (⊕).

        Cache state is threaded left to right (Eqs. 5.1 / 5.2), so each
        part is priced with the residency its predecessors left behind —
        exactly how :meth:`estimate` prices the equivalent ``Seq``, which
        makes these the per-part *attribution* of a materialized
        execution: operator ``i`` runs after operators ``0..i-1``
        finished, starting from a cold cache overall.  ``None`` parts
        (access-free operators, e.g. bare scans) price as zero and leave
        the state unchanged.  This is the ⊕ dual of
        :meth:`concurrent_estimates`: that divides one instant among
        co-runners, this threads one cache through successors."""
        per_part_levels: list[list[LevelCost]] = [[] for _ in parts]
        for level in self.hierarchy.all_levels:
            geo = LevelGeometry(
                line_size=level.line_size,
                capacity=float(level.capacity),
                num_lines=float(level.num_lines),
            )
            state = CacheState.empty()
            for i, part in enumerate(parts):
                if part is None:
                    pair = MissPair()
                else:
                    pair, state = self._evaluate(part, geo, state)
                per_part_levels[i].append(LevelCost(level=level, misses=pair))
        return tuple(CostEstimate(levels=tuple(levels))
                     for levels in per_part_levels)

    def concurrent_estimates(self, parts: "list[Pattern] | tuple[Pattern, ...]"
                             ) -> tuple[CostEstimate, ...]:
        """Per-part cost of running ``parts`` concurrently (⊙).

        Each part is priced against its Eq. 5.3 share of every level —
        exactly the division :meth:`estimate` applies to
        ``Conc.of(*parts)``, so the per-part memory times sum to the
        compound's total.  This is the attribution the workload service
        needs: the compound estimate says what a co-run *batch* costs,
        these say what each *member* contributes (its inflated, not
        standalone, cost)."""
        per_part_levels: list[list[LevelCost]] = [[] for _ in parts]
        for level in self.hierarchy.all_levels:
            geo = LevelGeometry(
                line_size=level.line_size,
                capacity=float(level.capacity),
                num_lines=float(level.num_lines),
            )
            shares = cache_shares(parts, geo.line_size)
            for i, (part, share) in enumerate(zip(parts, shares)):
                part_geo = geo.scaled(max(share, 1e-9))
                pair, _ = self._evaluate(part, part_geo, CacheState.empty())
                per_part_levels[i].append(LevelCost(level=level, misses=pair))
        return tuple(CostEstimate(levels=tuple(levels))
                     for levels in per_part_levels)

    # ------------------------------------------------------------------
    def _evaluate(self, pattern: Pattern, geo: LevelGeometry,
                  state: CacheState) -> tuple[MissPair, CacheState]:
        """Recursive evaluator returning (misses, resulting cache state).

        ``geo`` already reflects any ⊙ cache-sharing scale-down.
        """
        if isinstance(pattern, BasicPattern):
            return self._evaluate_basic(pattern, geo, state)
        if isinstance(pattern, Seq):
            # Eq. 5.2: thread the state left by each part into the next.
            total = MissPair()
            current = state
            for part in pattern.parts:
                pair, current = self._evaluate(part, geo, current)
                total = total + pair
            return total, current
        if isinstance(pattern, Conc):
            return self._evaluate_concurrent(pattern, geo, state)
        raise TypeError(f"not a pattern: {pattern!r}")

    def _evaluate_basic(self, pattern: BasicPattern, geo: LevelGeometry,
                        state: CacheState) -> tuple[MissPair, CacheState]:
        """Eq. 5.1: initial-state benefit, then the Section 4 formulas."""
        rho = state.cached_fraction(pattern.region)
        if rho >= 1.0:
            pair = MissPair()
        else:
            pair = basic_pattern_misses(pattern, geo)
            if rho > 0.0 and pattern.is_random:
                # Random patterns benefit from a partially resident region
                # proportionally; sequential ones only from full residency.
                pair = pair.scaled(1.0 - rho)
        return pair, CacheState.after_pattern(pattern.region, geo.capacity)

    def _evaluate_concurrent(self, pattern: Conc, geo: LevelGeometry,
                             state: CacheState) -> tuple[MissPair, CacheState]:
        """Eq. 5.3: divide the cache among parts by footprint."""
        shares = cache_shares(pattern.parts, geo.line_size)
        total = MissPair()
        result_state = CacheState.empty()
        for part, fraction in zip(pattern.parts, shares):
            part_geo = geo.scaled(max(fraction, 1e-9))
            pair, part_state = self._evaluate(part, part_geo, state)
            total = total + pair
            result_state = result_state.merged(part_state)
        return total, result_state
