"""Shared pure-CPU cost calibration (paper Eq. 6.1).

The paper splits total execution time into ``T = T_mem + T_cpu``; the
memory term is derived automatically from access patterns, while the CPU
term is a calibrated cycles-per-item constant per algorithm.  This module
is the single home of those constants so the advisor layer
(:mod:`repro.optimizer`) and the plan layer (:mod:`repro.query`) price
CPU work identically instead of each keeping its own copy.

The defaults are deliberately coarse — the interesting crossovers are
driven by the memory term — but they matter for rankings that include
nested-loop joins, whose quadratic comparison count is pure CPU.
"""

from __future__ import annotations

import math

from ..hardware.hierarchy import MemoryHierarchy

__all__ = [
    "CPU_CYCLES_PER_ITEM",
    "cpu_cycles",
    "cpu_ns",
    "sort_depth",
]

#: Calibrated pure-CPU cost constants (cycles per processed item).
CPU_CYCLES_PER_ITEM = {
    # joins (per input item unless noted)
    "merge_join": 8.0,
    "hash_join": 30.0,
    "partitioned_hash_join": 40.0,   # includes the partitioning passes
    "nested_loop_join": 4.0,         # per inner comparison
    # unary operators (a bare scan is folded into its consumer's input
    # sweep, so it carries no constant of its own)
    "sort": 12.0,                    # per item per recursion level
    "select": 6.0,                   # predicate evaluation + copy
    "project": 4.0,
    # aggregation
    "hash_aggregate": 24.0,          # hash + group update, per input item
    "aggregate_pass": 4.0,           # post-sort sequential grouping pass
    # out-of-core building blocks
    "partition_pass": 6.0,           # hash + append, per partitioned item
    "merge_pass": 10.0,              # k-way run merge, per output item
}


def sort_depth(n: int) -> int:
    """Expected quick-sort recursion depth for ``n`` items."""
    return math.ceil(math.log2(max(2, n)))


def cpu_cycles(algorithm: str, items: float) -> float:
    """Calibrated CPU cycles for processing ``items`` items."""
    return CPU_CYCLES_PER_ITEM[algorithm] * items


def cpu_ns(hierarchy: MemoryHierarchy, algorithm: str, items: float) -> float:
    """Calibrated CPU time in nanoseconds on ``hierarchy``'s clock."""
    return hierarchy.nanoseconds(cpu_cycles(algorithm, items))
