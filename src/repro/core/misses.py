"""Cache-miss estimation for basic access patterns (paper Section 4).

For every basic pattern and cache level, the model predicts a pair
``(M_s, M_r)`` of sequential and random misses (Eq. 4.1).  The level is
described here only by the geometry the formulas need: line size ``Z``,
capacity ``C`` and number of lines ``# = C/Z`` — capacity and line count
may be *scaled down* by the concurrent-execution rule (Eq. 5.3), which is
why they are passed explicitly rather than taken from a
:class:`~repro.hardware.CacheLevel`.

The equations were reconstructed from the paper's prose (the report scan
is unreadable inside equation blocks); DESIGN.md section "Reconstructed
equations" records each reconstruction and its justification.  The test
suite checks all the invariants the paper states in Section 4.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .distinct import expected_distinct
from .patterns import (
    BI,
    RANDOM,
    SEQUENTIAL,
    UNI,
    BasicPattern,
    Nest,
    RAcc,
    RRTrav,
    RSTrav,
    RTrav,
    STrav,
)
from .regions import DataRegion

__all__ = [
    "MissPair",
    "LevelGeometry",
    "STREAM_WINDOW",
    "lines_per_item",
    "strav_count",
    "rtrav_count",
    "rstrav_count",
    "rrtrav_count",
    "racc_distinct_lines",
    "racc_count",
    "basic_pattern_misses",
]


#: Outstanding sequential miss streams a non-blocking memory system
#: sustains concurrently (paper Section 2.2: EDO/prefetch overlap a
#: handful of outstanding references).  Up to this many interleaved
#: sequential cursors each ride the prefetch stream and miss at
#: *sequential* latency — the paper's merge-join observation.  Shared
#: with the trace-driven simulator's EDO classifier
#: (:mod:`repro.simulator.cache`), which recognises the same number of
#: streams, so model and measurement classify alike.
STREAM_WINDOW = 8


@dataclass(frozen=True)
class MissPair:
    """Sequential and random miss counts of one pattern on one level."""

    seq: float = 0.0
    rand: float = 0.0

    @property
    def total(self) -> float:
        return self.seq + self.rand

    def __add__(self, other: "MissPair") -> "MissPair":
        return MissPair(self.seq + other.seq, self.rand + other.rand)

    def scaled(self, factor: float) -> "MissPair":
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return MissPair(self.seq * factor, self.rand * factor)

    def time_ns(self, seq_latency_ns: float, rand_latency_ns: float) -> float:
        """Misses scored with their latencies — one summand of Eq. 3.1."""
        return self.seq * seq_latency_ns + self.rand * rand_latency_ns


@dataclass(frozen=True)
class LevelGeometry:
    """The geometry a miss formula sees: possibly a scaled-down cache."""

    line_size: int
    capacity: float
    num_lines: float

    def __post_init__(self) -> None:
        if self.line_size <= 0:
            raise ValueError("line_size must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.num_lines <= 0:
            raise ValueError("num_lines must be positive")

    def scaled(self, fraction: float) -> "LevelGeometry":
        """This geometry with only ``fraction`` of capacity and lines
        (the ⊙ cache-sharing rule, Eq. 5.3)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        return LevelGeometry(
            line_size=self.line_size,
            capacity=max(float(self.line_size), self.capacity * fraction),
            num_lines=max(1.0, self.num_lines * fraction),
        )


# ----------------------------------------------------------------------
# Shared helpers.
# ----------------------------------------------------------------------

def lines_per_item(u: int, line_size: int) -> float:
    """Average cache lines loaded per isolated item access (Eq. 4.3 core).

    ``ceil(u/Z)`` lines always suffice when the item starts on a line
    boundary; averaging over the ``Z`` equally likely alignments, the
    ``(u-1) mod Z`` alignment positions that straddle one extra line add
    ``((u-1) mod Z) / Z`` expected lines (paper Figure 4 and Eq. 4.3).
    """
    if u < 1:
        raise ValueError(f"u must be >= 1, got {u}")
    z = line_size
    return math.ceil(u / z) + ((u - 1) % z) / z


def _gap_below_line(region: DataRegion, u: int, line_size: int) -> bool:
    """Whether the untouched gap ``R.w - u`` is smaller than a line."""
    return (region.w - u) < line_size


# ----------------------------------------------------------------------
# Basic-pattern miss counts (Eqs. 4.2 - 4.8).
# ----------------------------------------------------------------------

def strav_count(region: DataRegion, u: int, geo: LevelGeometry) -> float:
    """Misses of a single sequential traversal (Eqs. 4.2 / 4.3).

    Gap smaller than a line: every line covered by ``R`` is loaded
    (``|R|``).  Gap at least a line: accesses are isolated, each loads
    ``lines_per_item(u, Z)`` lines on average.
    """
    if _gap_below_line(region, u, geo.line_size):
        return float(region.lines(geo.line_size))
    return region.n * lines_per_item(u, geo.line_size)


def rtrav_count(region: DataRegion, u: int, geo: LevelGeometry) -> float:
    """Misses of a single random traversal (Eqs. 4.4 / 4.5).

    With gaps at least a line the count equals the sequential case
    (Eq. 4.5 = Eq. 4.3): no access can re-use a predecessor's line.  With
    gaps below a line, all ``|R|`` lines are loaded; if ``||R||`` exceeds
    the cache, lines serving several (locally adjacent but temporally
    scattered) accesses may be evicted between them — the accesses beyond
    the first cache-full (``R.n - C/R.w``) each re-miss with probability
    ``1 - C/||R||`` (Eq. 4.4's extra term, worst case one per access).
    """
    z = geo.line_size
    if not _gap_below_line(region, u, z):
        return region.n * lines_per_item(u, z)
    base = float(region.lines(z))
    if region.size > geo.capacity:
        # Accesses beyond the compulsory first-touch of each line re-hit
        # an earlier line; under LRU the line survived with probability
        # C/||R||, so each revisit re-misses with 1 - C/||R||.  (The
        # paper's prose counts warm-up in items, C/R.w; we count it in
        # lines, which coincides for w ~ Z and stays correct for many
        # items per line — see DESIGN.md.)
        revisits = max(0.0, region.n - base)
        base += revisits * (1.0 - geo.capacity / region.size)
    return base


def rstrav_count(region: DataRegion, u: int, geo: LevelGeometry,
                 r: int, direction: str) -> float:
    """Misses of a repetitive sequential traversal (Eq. 4.6).

    A first traversal costs ``M1``.  If its lines fit in the cache, the
    remaining ``r - 1`` traversals are free.  Otherwise uni-directional
    sweeps always restart cold (``r * M1``) while bi-directional sweeps
    re-use the cache tail of their predecessor
    (``M1 + (r-1) * (M1 - #)``).
    """
    m1 = strav_count(region, u, geo)
    if r == 1 or m1 <= geo.num_lines:
        return m1
    if direction == UNI:
        return r * m1
    if direction == BI:
        return m1 + (r - 1) * (m1 - geo.num_lines)
    raise ValueError(f"unknown direction {direction!r}")


def rrtrav_count(region: DataRegion, u: int, geo: LevelGeometry, r: int) -> float:
    """Misses of a repetitive random traversal (Eq. 4.7).

    When the first traversal's ``M1`` lines exceed the cache, the ``#``
    most recently used lines survive a sweep and each is re-used by the
    next sweep with probability ``#/M1``, saving ``#^2/M1`` misses per
    subsequent sweep.
    """
    m1 = rtrav_count(region, u, geo)
    if r == 1 or m1 <= geo.num_lines:
        return m1
    saved = geo.num_lines * (geo.num_lines / m1)
    return m1 + (r - 1) * (m1 - saved)


def racc_distinct_lines(region: DataRegion, u: int, geo: LevelGeometry,
                        r: int) -> tuple[float, float]:
    """Expected distinct items ``D`` and distinct lines ``l`` touched by
    ``r_acc(r, R, u)`` (Section 4.6).

    With gaps of at least a line, no line serves two items:
    ``l = D * lines_per_item``.  With gaps below a line, the paper blends
    the dense packing bound (all touched items adjacent:
    ``l^ = D * R.w / Z``) and the sparse bound (items isolated:
    ``l~ = D * lines_per_item``) linearly with weight ``D / R.n`` — dense
    packing being the more likely the larger the touched fraction.
    """
    z = geo.line_size
    distinct = expected_distinct(r, region.n)
    isolated = distinct * lines_per_item(u, z)
    if not _gap_below_line(region, u, z):
        lines = isolated
    else:
        dense = distinct * region.w / z
        weight = distinct / region.n
        lines = weight * dense + (1.0 - weight) * isolated
    lines = min(lines, float(region.lines(z)))
    return distinct, max(1.0, lines)


def racc_count(region: DataRegion, u: int, geo: LevelGeometry, r: int) -> float:
    """Misses of ``r_acc(r, R, u)`` (Eq. 4.8).

    The ``l`` distinct lines are loaded once (compulsory).  Once ``l``
    exceeds the cache, every further access re-hits one of the ``l``
    touched lines, which under LRU survived with probability ``#/l``:
    the ``r - l`` revisits each re-miss with probability ``1 - #/l``
    (the repetitive-traversal analogy of Section 4.5 the paper invokes,
    expressed per access — see DESIGN.md on this reconstruction).
    """
    distinct, lines = racc_distinct_lines(region, u, geo, r)
    if lines <= geo.num_lines:
        return lines
    revisits = max(0.0, r * max(1.0, math.ceil(u / geo.line_size)) - lines)
    return lines + revisits * (1.0 - geo.num_lines / lines)


# ----------------------------------------------------------------------
# Interleaved multi-cursor access (Eq. 4.9).
# ----------------------------------------------------------------------

def _nest_misses(nest: Nest, geo: LevelGeometry) -> MissPair:
    """Misses of ``nest(R, m, P, o, d)`` per the Section 4.7 case split.

    * Local random patterns interleave to a random pattern over the whole
      region; with ``m = R.n`` and a sequential global order the pattern
      degenerates to a plain sequential traversal (Section 4.7.1).
    * Local sequential cursors (Section 4.7.2): with gaps of at least a
      line the count is the simple-traversal count; with gaps below a
      line, the ``|R|`` compulsory misses suffice as long as all ``m``
      concurrently active lines fit in the cache
      (``m * ceil(u/Z) <= #``); beyond that every cross-traversal reloads
      the lines its predecessor evicted, except the ``#re`` lines that
      survive — ``#re = 0`` (uni), ``#`` (bi) or ``#^2/m`` (random global
      order), by the Section 4.5 analogy the paper invokes.  Extra misses
      are always random; the base misses are sequential for a sequential
      global order performed by an EDO-capable local traversal, and —
      the paper's merge-join observation, Section 2.2 — also for a
      random global order over at most :data:`STREAM_WINDOW` cursors:
      each cursor is its own ascending stream, and a non-blocking
      memory system overlaps that many streams at sequential latency.
    """
    region = nest.region
    u = nest.used_bytes
    z = geo.line_size
    m = nest.m

    if nest.local in ("r_trav", "r_acc"):
        if m == region.n and nest.order == SEQUENTIAL:
            # Degenerates to the original (sequential) global order.
            return MissPair(seq=strav_count(region, u, geo), rand=0.0)
        if nest.local == "r_acc":
            count = racc_count(region, u, geo, nest.r or region.n)
        else:
            count = rtrav_count(region, u, geo)
        return MissPair(seq=0.0, rand=count)

    # Local sequential cursors: one stream per local cursor.
    sequential_capable = nest.seq_latency and (
        nest.order == SEQUENTIAL or m <= STREAM_WINDOW)
    if not _gap_below_line(region, u, z):
        count = region.n * lines_per_item(u, z)
        return _split(count, sequential_capable, streams=m)

    base = float(region.lines(z))
    active_lines = m * math.ceil(u / z)
    if active_lines <= geo.num_lines:
        return _split(base, sequential_capable, streams=m)

    if nest.order == RANDOM:
        reused = geo.num_lines * (geo.num_lines / active_lines)
    elif nest.direction == BI:
        reused = float(geo.num_lines)
    else:
        reused = 0.0
    cross_traversals = region.n / m
    extra = max(0.0, (cross_traversals - 1.0) * (m - min(float(m), reused)))
    pair = _split(base, sequential_capable, streams=m)
    return MissPair(seq=pair.seq, rand=pair.rand + extra)


def _split(count: float, sequential: bool, streams: float = 1.0) -> MissPair:
    """Split a miss count into the (sequential, random) pair.

    An EDO-capable sequential pattern still pays *random* latency for
    the first miss of each of its ``streams`` cursors: the prefetch
    window is empty until a stream's first miss establishes it (the
    trace-driven simulator classifies identically).  Amortized away at
    the paper's region sizes, but at a buffer pool's seek/transfer
    ratio those few stream starts carry real cost.
    """
    if not sequential:
        return MissPair(seq=0.0, rand=count)
    rand = min(float(streams), count)
    return MissPair(seq=count - rand, rand=rand)


# ----------------------------------------------------------------------
# Dispatch.
# ----------------------------------------------------------------------

def basic_pattern_misses(pattern: BasicPattern, geo: LevelGeometry) -> MissPair:
    """The ``(M_s, M_r)`` pair of one basic pattern on one level.

    Sequential traversal variants put their count on the sequential or
    random side according to ``seq_latency`` (Section 4.1); random
    patterns produce only random misses (Eq. 4.1's convention
    ``M_s = 0``).
    """
    u = pattern.used_bytes
    region = pattern.region
    if isinstance(pattern, STrav):
        return _split(strav_count(region, u, geo), pattern.seq_latency)
    if isinstance(pattern, RSTrav):
        count = rstrav_count(region, u, geo, pattern.r, pattern.direction)
        # Every *missing* sweep restarts its cursor stream; once the
        # region is cache-resident after the first sweep, the later
        # sweeps produce no misses and hence no stream starts.
        m1 = strav_count(region, u, geo)
        sweeps = pattern.r if (pattern.r > 1 and m1 > geo.num_lines) else 1
        return _split(count, pattern.seq_latency, streams=sweeps)
    if isinstance(pattern, RTrav):
        return MissPair(rand=rtrav_count(region, u, geo))
    if isinstance(pattern, RRTrav):
        return MissPair(rand=rrtrav_count(region, u, geo, pattern.r))
    if isinstance(pattern, RAcc):
        return MissPair(rand=racc_count(region, u, geo, pattern.r))
    if isinstance(pattern, Nest):
        return _nest_misses(pattern, geo)
    raise TypeError(f"not a basic pattern: {pattern!r}")
