"""Expected number of distinct items touched by random access (Section 4.6).

For ``r_acc(r, R)`` — ``r`` independent uniform accesses to the ``R.n``
items of a region — the paper derives the expected number ``D`` of
*distinct* items touched by counting outcomes with Stirling numbers of the
second kind:

    D = (1 / R.n^r) * sum_d  d * C(R.n, d) * S(r, d) * d!

where ``C`` is the binomial coefficient and ``S`` the Stirling number.
This expectation has the well-known closed form

    D = R.n * (1 - (1 - 1/R.n)^r)

(each item is missed by all ``r`` draws with probability
``(1 - 1/R.n)^r``).  We implement both: the exact Stirling sum (rational
arithmetic, for tests and small inputs) and the closed form (numerically
stable via ``expm1``/``log1p``, used by the cost model).  Their equality
is proven property-based in the test suite.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import lru_cache

__all__ = ["expected_distinct", "expected_distinct_exact", "stirling2"]


@lru_cache(maxsize=None)
def stirling2(n: int, k: int) -> int:
    """Stirling number of the second kind ``S(n, k)``.

    The number of ways of partitioning a set of ``n`` elements into ``k``
    non-empty subsets.  Computed with the standard recurrence
    ``S(n, k) = k * S(n-1, k) + S(n-1, k-1)``.
    """
    if n < 0 or k < 0:
        raise ValueError("n and k must be non-negative")
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0:
        return 0
    if k > n:
        return 0
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)


def expected_distinct_exact(r: int, n: int) -> Fraction:
    """The paper's exact expectation of distinct items for ``r`` uniform
    accesses to ``n`` items, via the Stirling-number outcome count.

    Exact rational arithmetic; exponential blow-up makes this suitable
    only for small ``r`` and ``n`` (tests, demonstrations).
    """
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    total_outcomes = Fraction(n) ** r
    acc = Fraction(0)
    for d in range(1, min(r, n) + 1):
        outcomes_d = math.comb(n, d) * stirling2(r, d) * math.factorial(d)
        acc += d * Fraction(outcomes_d)
    return acc / total_outcomes


def expected_distinct(r: float, n: float) -> float:
    """Closed-form expected distinct items ``n * (1 - (1 - 1/n)^r)``.

    Numerically stable for large ``r`` and ``n`` (uses
    ``exp(r * log1p(-1/n))`` instead of the naive power).  Always lies in
    ``[1, min(r, n)]`` for ``r >= 1``.
    """
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return 1.0
    value = n * -math.expm1(r * math.log1p(-1.0 / n))
    # Guard against floating-point overshoot at the boundaries.
    return min(float(n), float(r), max(1.0, value))
