"""Setuptools shim.

The offline environment lacks the ``wheel`` package, which PEP 517
editable installs require; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on machines with ``wheel``)
installs the package from ``pyproject.toml`` metadata.
"""

from setuptools import setup

setup()
