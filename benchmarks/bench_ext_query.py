"""Extension: whole-query cost derivation (paper Section 6: "Extension
to ... whole queries is straight forward").

A select -> hash-join -> aggregate pipeline is executed on the simulator
and priced as the ⊕-combination of its operators' patterns; the bench
reports per-operator and whole-plan predicted vs measured costs.
"""

from repro.core import CostModel
from repro.db import Database, random_permutation
from repro.hardware import origin2000_scaled
from repro.query import (
    AggregateNode,
    HashJoinNode,
    QueryPlan,
    ScanNode,
    SelectNode,
)


def run_query(n: int):
    hierarchy = origin2000_scaled()
    model = CostModel(hierarchy)
    db = Database(hierarchy)
    left = db.create_column("U", random_permutation(n, seed=1), width=8)
    right = db.create_column("V", random_permutation(n, seed=2), width=8)
    plan = QueryPlan(AggregateNode(
        HashJoinNode(
            SelectNode(ScanNode(left), lambda v: v % 2 == 0,
                       selectivity=0.5),
            ScanNode(right),
        ),
        groups=64,
        key_of=lambda pair: pair[0] % 64,
    ))
    predicted = plan.estimate(model).memory_ns
    db.reset()
    with db.measure() as res:
        out = plan.execute(db)
    measured = res[0].elapsed_ns
    text = "\n".join([
        f"== Extension: whole query (n = {n}) ==",
        plan.explain(model),
        f"  measured (simulator)          T_mem {measured / 1e3:>10.1f} us",
        f"  groups emitted: {len(out.values)}",
    ])
    return text, predicted, measured


def test_ext_whole_query(benchmark, save_result):
    text, predicted, measured = benchmark.pedantic(
        lambda: run_query(8192), rounds=1, iterations=1,
    )
    save_result("ext_query", text)
    assert 0.4 * measured <= predicted <= 2.0 * measured
