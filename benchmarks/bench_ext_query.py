"""Extension: whole-query cost derivation (paper Section 6: "Extension
to ... whole queries is straight forward").

A select -> hash-join -> aggregate pipeline is executed on the simulator
through the typed measured path (:func:`repro.query.measure_plan`), so
the bench reports per-operator and whole-plan predicted vs measured
costs — and persists the whole sweep as machine-readable
``results/BENCH_ext_query.json`` via the shared result serialization.
"""

from repro.core import CostModel
from repro.db import Database, random_permutation
from repro.hardware import origin2000_scaled
from repro.query import (
    AggregateNode,
    HashJoinNode,
    QueryPlan,
    ScanNode,
    SelectNode,
    measure_plan,
)
from repro.validation import payload_from_results

#: The bench's asserted predicted/measured tolerance (the historical
#: 0.4x..2.0x whole-plan band, as a relative error bound).
TOLERANCE = 1.0


def run_query(n: int):
    hierarchy = origin2000_scaled()
    model = CostModel(hierarchy)
    db = Database(hierarchy)
    left = db.create_column("U", random_permutation(n, seed=1), width=8)
    right = db.create_column("V", random_permutation(n, seed=2), width=8)
    plan = QueryPlan(AggregateNode(
        HashJoinNode(
            SelectNode(ScanNode(left), lambda v: v % 2 == 0,
                       selectivity=0.5),
            ScanNode(right),
        ),
        groups=64,
        key_of=lambda pair: pair[0] % 64,
    ))
    measured = measure_plan(db, plan, model)
    text = "\n".join([
        f"== Extension: whole query (n = {n}) ==",
        measured.explanation.to_text(),
        f"  measured (simulator)          T_mem "
        f"{measured.measured_ns / 1e3:>10.1f} us",
        "  per-operator attribution:",
        measured.attribution_table(),
        f"  groups emitted: {len(measured.values)}",
    ])
    return text, measured


def test_ext_whole_query(benchmark, save_result, save_json, quick):
    sizes = (1024, 4096) if quick else (2048, 8192)
    results = benchmark.pedantic(
        lambda: [run_query(n) for n in sizes], rounds=1, iterations=1,
    )
    texts = [text for text, _ in results]
    measures = [measured for _, measured in results]
    save_result("ext_query", "\n\n".join(texts))
    save_json("ext_query", payload_from_results(
        "ext_query", list(zip(sizes, measures)), tolerance=TOLERANCE))
    for measured in measures:
        assert (0.4 * measured.measured_ns
                <= measured.predicted_ns
                <= 2.0 * measured.measured_ns)
        # the per-operator exclusive deltas sum to the whole-plan time
        total = sum(op.measured_ns for op in measured.operators)
        assert abs(total - measured.measured_ns) <= 1e-6 * measured.measured_ns
