#!/usr/bin/env python
"""Validate every emitted ``benchmarks/results/BENCH_*.json`` against
the shared bench schema (:mod:`repro.validation.bench_schema`), and
every ``*.report.json`` what-if report against
:func:`repro.obs.schema.validate_whatif_report`.

CI smoke step::

    PYTHONPATH=src python benchmarks/schema_check.py

Exits non-zero when no bench JSON was emitted at all or any file
violates the schema, printing each problem.
"""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.schema import validate_whatif_report_file  # noqa: E402
from repro.validation.bench_schema import validate_results_dir  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def main() -> int:
    reports = validate_results_dir(RESULTS_DIR)
    reports.update({
        path.name: validate_whatif_report_file(path)
        for path in sorted(RESULTS_DIR.glob("*.report.json"))
    })
    if not reports:
        print(f"no BENCH_*.json found under {RESULTS_DIR} — "
              "run a bench that emits machine-readable results first "
              "(e.g. bench_ext_query.py)")
        return 1
    failed = 0
    for name, problems in reports.items():
        if problems:
            failed += 1
            print(f"FAIL {name}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {name}")
    if failed:
        print(f"{failed}/{len(reports)} bench JSON files violate the schema")
        return 1
    print(f"all {len(reports)} bench JSON files conform to the schema")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
