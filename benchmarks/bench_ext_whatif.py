"""Extension: what-if capacity planning over the cost-model stack.

The whole point of a calibrated generic cost model is pricing work on
machines you don't have.  This bench asks one concrete capacity
question on the contention-heavy mix at 8 clients — *"what is the
smallest configuration (memory speed × cores) whose predicted p95
beats the baseline machine's by ≥ 10%?"* — and then holds the
machinery to account:

* **determinism** — the same seeded sweep, run twice from scratch,
  must serialize to byte-identical report JSON (what makes the emitted
  artifact diffable in CI);
* **verification** — the recommended configuration's *predicted*
  makespan and p95 must agree with a trace-driven simulator run of the
  same workload on that machine within the standard 0.35
  model-vs-simulator band (the prediction is also checked on every
  Pareto-frontier row);
* **the answer itself** — the recommendation must meet the target,
  at least one candidate must fail it (the question is non-trivial),
  and no cheaper candidate may meet it (the recommender really
  returns the *smallest* such config).

Artifacts: ``BENCH_ext_whatif.json`` (bench schema: predicted vs
simulator-measured makespan per spot-checked row) and
``ext_whatif.report.json`` (the full what-if report, schema-checked by
``benchmarks/schema_check.py`` via
:func:`repro.obs.validate_whatif_report`).  Honours the shared
``--quick`` / ``REPRO_BENCH_QUICK`` knob (smaller grid and stream,
same assertions).
"""

import json
import pathlib

from repro.obs import validate_whatif_report
from repro.whatif import GeneratedWorkload, ProfileSpace, WhatIfSweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The established model-vs-simulator agreement band.
MODEL_TOLERANCE = 0.35

#: The capacity question: predicted p95 must beat the baseline's by
#: at least this factor.
TARGET_IMPROVEMENT = 0.90

CLIENTS = 8


def _sweep(quick):
    mem_axis = [200.0, 800.0] if quick else [200.0, 400.0, 800.0]
    space = ProfileSpace({"mem_ns": mem_axis, "cores": [2, 4]},
                         name="mem-speed × cores")
    workload = GeneratedWorkload(seed=7, scale=512,
                                 mix="contention-heavy",
                                 n_queries=16 if quick else 32,
                                 clients=CLIENTS)
    return WhatIfSweep(space, workload)


def test_whatif_capacity_planning(quick, save_result, save_json):
    # -- price the space, ask the question, verify the frontier ---------
    sweep = _sweep(quick)
    baseline_only = _sweep(quick)
    target_p95 = (baseline_only.price(baseline_only.space.baseline())
                  .p95_ns * TARGET_IMPROVEMENT)
    report = sweep.run(slo_p95_ns=target_p95, spot_check="frontier")
    everyone = [report.baseline, *report.outcomes()]

    lines = [f"== Extension: what-if capacity planning "
             f"(contention-heavy, {report.workload['queries']} queries, "
             f"{CLIENTS} clients{', quick' if quick else ''}) ==",
             report.render()]

    # -- byte-determinism ----------------------------------------------
    again = _sweep(quick).run(slo_p95_ns=target_p95,
                              spot_check="frontier")
    first = json.dumps(report.to_json(), indent=2, sort_keys=True)
    second = json.dumps(again.to_json(), indent=2, sort_keys=True)
    assert first == second, "seeded what-if sweep must be byte-stable"
    lines.append(f"  report JSON byte-deterministic across runs "
                 f"({len(first)} bytes)")

    # -- the recommendation answers the question -----------------------
    rec = report.recommendation
    assert rec is not None, "some config must meet the target"
    assert rec.predicted_p95_ns <= target_p95
    assert rec.candidates_meeting < rec.candidates_considered, \
        "the question must be non-trivial: someone has to fail it"
    cheaper = [o for o in everyone if o.cost_proxy < rec.cost_proxy]
    assert all(o.p95_ns > target_p95 for o in cheaper), \
        "no cheaper config may meet the target"
    lines.append(
        f"  question: smallest config with p95 ≤ "
        f"{target_p95 / 1e6:.2f} ms ({TARGET_IMPROVEMENT:.0%} of "
        f"baseline) at {CLIENTS} clients")
    lines.append(
        f"  answer:   '{rec.label}' — predicted p95 "
        f"{rec.predicted_p95_ns / 1e6:.2f} ms at cost "
        f"{rec.cost_proxy:.1f} ({rec.candidates_meeting}/"
        f"{rec.candidates_considered} configs meet it; derived "
        f"admission slack {rec.admission_slack})")

    # -- simulator verification of the spot-checked rows ---------------
    checked = [o for o in everyone if o.spot_check is not None]
    assert checked, "the frontier must have been spot-checked"
    recommended = report.outcome(rec.label)
    assert recommended.spot_check is not None, \
        "the recommended config must be simulator-verified"
    lines.append("  simulator spot checks:")
    for outcome in checked:
        spot = outcome.spot_check
        lines.append(
            f"    {outcome.label:<24} predicted "
            f"{outcome.makespan_ns / 1e6:>7.2f} ms  measured "
            f"{spot.measured_makespan_ns / 1e6:>7.2f} ms  "
            f"makespan err {spot.makespan_error * 100:>5.1f}%  "
            f"p95 err {spot.p95_error * 100:>5.1f}%")
    assert recommended.spot_check.makespan_error < MODEL_TOLERANCE
    assert recommended.spot_check.p95_error < MODEL_TOLERANCE
    save_result("ext_whatif", "\n".join(lines))

    # -- artifacts ------------------------------------------------------
    payload_json = report.to_json()
    assert validate_whatif_report(payload_json) == []
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ext_whatif.report.json").write_text(
        json.dumps(payload_json, indent=2, sort_keys=True) + "\n")

    payload = {
        "kind": "bench",
        "bench": "ext_whatif",
        "sizes": [o.label for o in checked],
        "series": [{
            "size": o.label,
            "predicted_ns": o.makespan_ns,
            "measured_ns": o.spot_check.measured_makespan_ns,
            "error": o.spot_check.makespan_error,
            "predicted_p95_ns": o.p95_ns,
            "measured_p95_ns": o.spot_check.measured_p95_ns,
            "p95_error": o.spot_check.p95_error,
            "fingerprint": o.fingerprint,
            "on_frontier": True,
        } for o in checked],
        "band": {
            "tolerance": MODEL_TOLERANCE,
            "max_error": max(o.spot_check.makespan_error
                             for o in checked),
        },
        "question": dict(rec.question),
        "recommendation": rec.to_json(),
        "workload": report.workload,
    }
    save_json("ext_whatif", payload)

    # the recommended row is in-band; the whole frontier should be too
    # on this validated profile family
    assert payload["band"]["max_error"] < MODEL_TOLERANCE
