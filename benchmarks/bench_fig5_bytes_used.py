"""Figure 5: impact of the used-bytes parameter ``u`` and of alignment
on traversal misses (panels a: L1, b: L2; sequential and random
variants).  Points = simulator, lines = Eqs. 4.2-4.5."""

from repro.validation import figure5


def test_fig5_sequential_traversal(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: figure5(n=4096, w=256),
        rounds=1, iterations=1,
    )
    save_result("fig5_seq", result.render())
    # The alignment-averaged prediction tracks the measured average.
    assert result.max_ratio_error("L1 avg") < 0.3


def test_fig5_random_traversal(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: figure5(n=2048, w=256, randomized=True),
        rounds=1, iterations=1,
    )
    save_result("fig5_rand", result.render())
    assert result.max_ratio_error("L1 avg") < 0.6
