"""Extension: vectorized batch execution — wall-clock speedup at exact
equivalence.

The vectorized engine keeps column data in contiguous buffers, runs
chunked operator kernels, and hands the simulator whole access *ranges*
(:meth:`MemorySystem.access_range`) instead of one ``access()`` call per
item.  The contract is exact equivalence: both modes produce identical
result columns, identical counters, and identical simulated time — only
the host-side wall clock changes.  This bench times every physical
operator kernel and an end-to-end query-template sweep in both modes,
asserts that equivalence inline, and asserts honest speedup floors.

The speedups are asymmetric by construction, mirroring the paper's
sequential/random access distinction: **sequential** patterns (scan,
select, project, the sweep phases of sort and aggregation) coalesce
whole traversals into a handful of ``access_range`` calls whose
per-item cost is amortized — a narrow (4-byte) scan exceeds 10x.
**Random** patterns (hash-table probes) are dependent lookups that
cannot be coalesced, so joins and aggregations only gain the fused
single-access fast path, around 2x.  End-to-end query speedup lands
between the two, weighted by each plan's pattern mix.

The JSON payload's accuracy band tracks the *model* (predicted vs
simulated time, identical in both modes) at the standard 0.35
tolerance.  The join-bearing templates sit outside it by a known,
pinned model gap — the in-memory hash join underpredicts once the
permutation-join build side outgrows L2 (``tests/test_known_gaps.py``;
closed online by :class:`repro.calibrator.Recalibrator`, see
``bench_ext_autotune``) — so they are *declared* via the payload's
``known_gaps`` field instead of inflating the tolerance: their errors
stay recorded and window-checked, but out of ``band.max_error``.
"""

import time

from repro.db import (
    Database,
    grouped_keys,
    hash_aggregate,
    hash_join,
    project,
    quick_sort,
    random_permutation,
    scan,
    select,
)
from repro.hardware import origin2000_scaled
from repro.session import Session
from repro.validation import payload_from_results

MODES = ("scalar", "vectorized")
REPEATS = 5

#: The pinned permutation-join gap (tests/test_known_gaps.py): every
#: template embedding the permutation join underpredicts once the
#: build side outgrows L2, so those rows are declared out of band
#: instead of being covered by a slack tolerance.
KNOWN_GAP_REASON = (
    "in-memory hash join underpredicts permutation joins whose build "
    "side outgrows L2 (pinned in tests/test_known_gaps.py, ROADMAP "
    "item 3); closed online by repro.calibrator.Recalibrator — see "
    "bench_ext_autotune")
#: Errors of declared rows must still sit inside the pin window's
#: upper bound — a widening gap is a regression, declared or not.
KNOWN_GAP_CEILING = 0.75


def _even(value):
    return value % 2 == 0


# ----------------------------------------------------------------------
# per-operator kernels: fresh database per repeat, best-of wall clock,
# byte-identical results and counters asserted across modes
# ----------------------------------------------------------------------

def _col_setup(n, width, seed=1):
    def setup():
        db = Database(origin2000_scaled())
        col = db.create_column("A", random_permutation(n, seed=seed),
                               width=width)
        return db, (col,)
    return setup


def _join_setup(n):
    def setup():
        db = Database(origin2000_scaled())
        outer = db.create_column("A", random_permutation(n, seed=1), width=8)
        inner = db.create_column("B", random_permutation(n, seed=2), width=8)
        return db, (outer, inner)
    return setup


def _agg_setup(n):
    def setup():
        db = Database(origin2000_scaled())
        col = db.create_column("A", grouped_keys(n, n // 8, seed=4), width=8)
        return db, (col, n // 8)
    return setup


def _normalize(out, args):
    """The operator's observable result, shape-independent."""
    if out is None:  # in-place sort
        return list(args[0].values)
    if isinstance(out, int):  # scan checksum
        return out
    col = out[0] if isinstance(out, tuple) else out
    return list(col.values)


def _time_operator(setup, op):
    """Best-of-``REPEATS`` wall seconds per mode; asserts both modes
    produce identical results and identical counter snapshots."""
    walls, finals = {}, {}
    for mode in MODES:
        best = float("inf")
        for _ in range(REPEATS):
            db, args = setup()
            with db.execution_scope(mode):
                start = time.perf_counter()
                out = op(db, *args)
                best = min(best, time.perf_counter() - start)
        walls[mode] = best
        finals[mode] = (_normalize(out, args), repr(db.mem.snapshot()))
    assert finals["scalar"] == finals["vectorized"]
    return walls


# label -> (quick setup, full setup, op, quick floor, full floor)
def _operators(quick):
    n_scan = 4096 if quick else 16384
    return [
        ("scan_w4", _col_setup(n_scan, 4), scan,
         6.0 if quick else 10.0),
        ("scan_w8", _col_setup(n_scan, 8), scan,
         3.5 if quick else 5.0),
        ("select", _col_setup(n_scan, 8),
         lambda db, col: select(db, col, _even), 1.4),
        ("project", _col_setup(n_scan, 8),
         lambda db, col: project(db, col, 4), 1.5),
        ("sort", _col_setup(1024 if quick else 4096, 8, seed=3),
         quick_sort, 1.5),
        ("hash_join", _join_setup(512 if quick else 2048), hash_join, 1.3),
        ("aggregate", _agg_setup(1024 if quick else 4096),
         lambda db, col, g: hash_aggregate(db, col, groups_hint=g), 1.3),
    ]


# ----------------------------------------------------------------------
# end-to-end template sweep through a Session (plan fixed by a prepared
# statement so compilation stays out of the timed region)
# ----------------------------------------------------------------------

def _templates(n):
    return [
        "filter(orders, even, sel=0.5)",
        f"sort(orders)",
        f"aggregate(events, groups={n // 8})",
        "join(orders, customers)",
        f"aggregate(join(orders, customers), groups={n})",
        "join(filter(orders, even, sel=0.5), customers)",
    ]


def _known_gaps(n):
    """The join-bearing templates, declared against the pinned gap."""
    return {
        text: KNOWN_GAP_REASON
        for text in _templates(n) if "join(" in text
    }


def _make_session(n, mode):
    session = Session(origin2000_scaled(), execution=mode)
    session.create_table("orders", random_permutation(n, seed=1))
    session.create_table("customers", random_permutation(n, seed=2))
    session.create_table("events", grouped_keys(n, n // 8, seed=3))
    session.predicate("even", _even)
    return session


def _time_template(n, text):
    """Best-of-``REPEATS`` wall seconds per mode for one template
    (columns restored outside the timed region); asserts identical
    simulated counters across modes, and returns the vectorized-mode
    typed measurement for the payload."""
    walls, counters = {}, {}
    for mode in MODES:
        session = _make_session(n, mode)
        plan = session.prepare(text).plan
        best = float("inf")
        with session.db.execution_scope(mode):
            for _ in range(REPEATS):
                with session._restoring(True):
                    start = time.perf_counter()
                    session.db.execute(plan)
                    best = min(best, time.perf_counter() - start)
        walls[mode] = best
        result = _make_session(n, mode).execute_measured(text, restore=True)
        counters[mode] = repr(result.counters)
    assert counters["scalar"] == counters["vectorized"]
    return walls, result  # result is the vectorized-mode measurement


def run_suite(quick):
    operators = []
    for label, setup, op, floor in _operators(quick):
        walls = _time_operator(setup, op)
        operators.append({
            "label": label,
            "scalar_wall_ns": walls["scalar"] * 1e9,
            "vectorized_wall_ns": walls["vectorized"] * 1e9,
            "speedup": walls["scalar"] / walls["vectorized"],
            "floor": floor,
        })

    n = 1024 if quick else 4096
    templates, measures = [], []
    total = dict.fromkeys(MODES, 0.0)
    for text in _templates(n):
        walls, measured = _time_template(n, text)
        for mode in MODES:
            total[mode] += walls[mode]
        measures.append((text, measured))
        templates.append({
            "label": text,
            "scalar_wall_ns": walls["scalar"] * 1e9,
            "vectorized_wall_ns": walls["vectorized"] * 1e9,
            "speedup": walls["scalar"] / walls["vectorized"],
        })
    end_to_end = total["scalar"] / total["vectorized"]
    return operators, templates, end_to_end, measures


def render(operators, templates, end_to_end) -> str:
    lines = ["== Extension: vectorized execution (wall clock, "
             "identical counters asserted) ==",
             f"{'kernel':>46} | {'scalar':>9} {'vector':>9} | speedup"]
    for row in operators + templates:
        lines.append(
            f"{row['label'][:46]:>46} | "
            f"{row['scalar_wall_ns'] / 1e6:>7.2f}ms "
            f"{row['vectorized_wall_ns'] / 1e6:>7.2f}ms | "
            f"{row['speedup']:>6.2f}x")
    lines.append(f"{'end-to-end template sweep':>46} | "
                 f"{'':>9} {'':>9} | {end_to_end:>6.2f}x")
    return "\n".join(lines)


def test_vectorized_speedup(benchmark, save_result, save_json, quick):
    operators, templates, end_to_end, measures = benchmark.pedantic(
        run_suite, args=(quick,), rounds=1, iterations=1)
    save_result("ext_vectorized", render(operators, templates, end_to_end))

    n = 1024 if quick else 4096
    payload = payload_from_results("ext_vectorized", measures,
                                   tolerance=0.35,
                                   known_gaps=_known_gaps(n))
    payload["operators"] = operators
    payload["templates"] = templates
    payload["end_to_end_speedup"] = end_to_end
    save_json("ext_vectorized", payload)

    # sequential kernels coalesce; random ones only fuse — both floors
    for row in operators:
        assert row["speedup"] >= row["floor"], \
            f"{row['label']}: {row['speedup']:.2f}x < {row['floor']}x"
    # a representative plan mix lands between the two regimes
    assert end_to_end >= 1.4
    # the model's accuracy is unchanged by the execution mode: healthy
    # templates inside the standard band, declared gap rows inside the
    # pin window (tests/test_known_gaps.py)
    assert payload["band"]["max_error"] <= 0.35
    for gap in payload["known_gaps"]:
        assert gap["error"] < KNOWN_GAP_CEILING, \
            f"declared gap {gap['size']!r} widened to {gap['error']:.3f}"
