"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it runs the
experiment (simulator-measured vs model-predicted), saves the rendered
series under ``benchmarks/results/`` and prints it, so both the
pytest-benchmark timing table and the reproduced series are available.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _save
