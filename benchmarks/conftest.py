"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it runs the
experiment (simulator-measured vs model-predicted), saves the rendered
series under ``benchmarks/results/`` and prints it, so both the
pytest-benchmark timing table and the reproduced series are available.

Benches that honour the shared ``quick`` fixture (``--quick`` on the
command line, or ``REPRO_BENCH_QUICK=1`` in the environment) run a
reduced-size variant of the experiment — the CI smoke setting, which
*executes* a bench end to end instead of only collecting it.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="run benchmarks at reduced size (CI smoke setting; "
             "equivalent to REPRO_BENCH_QUICK=1)")


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """Whether to run the reduced-size variant of an experiment."""
    return bool(request.config.getoption("--quick")
                or os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0"))


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Persist a machine-readable bench payload as
    ``results/BENCH_<name>.json``, schema-validated on the way out
    (:mod:`repro.validation.bench_schema` — the same check the CI
    smoke step applies to every emitted file)."""
    from repro.validation.bench_schema import validate_bench_payload

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, payload: dict) -> None:
        problems = validate_bench_payload(payload)
        if problems:
            raise ValueError(
                f"bench payload {name!r} violates the schema: {problems}")
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    return _save
