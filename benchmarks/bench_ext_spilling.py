"""Extension: the spill-vs-in-memory crossover as tables outgrow the budget.

On the simulation-sized disk-extended profile, a plain hash join keeps
one monolithic build table: once it outgrows the buffer pool, every
probe is a random page access — a seek.  The grace hash join partitions
both inputs until each per-partition table fits the working-memory
budget, keeping the I/O near-sequential.  This bench sweeps the table
size across the crossover and checks that the cost model and the
trace-driven simulator agree on the winner on both sides — the
out-of-core analogue of the paper's Figure 7e cache crossover.

The accuracy band is asserted over the *spilling* sizes (``m > 1``)
only.  The smallest sweep point stays in budget by design — there
``m == 1`` and the grace join degenerates to the plain in-memory hash
join, which is asserted exactly (identical measurement); including
that degenerate point in the band series once flagged a spurious 0.58
"spilling" error that was really the in-memory join model's fixed-cost
terms overshooting at 64 rows, a sweep-sizing artifact rather than a
model gap (every genuinely spilling size sits within 0.17).
"""

from repro.core import CostModel
from repro.db import Database, random_permutation
from repro.hardware import disk_extended_scaled
from repro.query import (
    GraceHashJoinNode,
    HashJoinNode,
    QueryPlan,
    ScanNode,
    measure_plan,
)
from repro.validation import payload_from_results

MEMORY_BUDGET = 2048  # bytes of working memory (half the scaled pool)


def run_crossover(sizes):
    hw = disk_extended_scaled()
    model = CostModel(hw)
    rows = []
    measures = []
    for n in sizes:
        db = Database(hw)
        outer = db.create_column("A", random_permutation(n, seed=1), width=8)
        inner = db.create_column("B", random_permutation(n, seed=2), width=8)
        plain = QueryPlan(HashJoinNode(ScanNode(outer), ScanNode(inner)))
        grace = QueryPlan(GraceHashJoinNode(ScanNode(outer), ScanNode(inner),
                                            memory_budget=MEMORY_BUDGET))
        plain_res = measure_plan(db, plain, model)
        grace_res = measure_plan(db, grace, model)
        assert grace_res.column.n == n  # permutation join: all keys match
        measures.append(grace_res)
        rows.append({
            "n": n,
            "m": grace.root.effective_partitions(),
            "plain_meas_us": plain_res.measured_ns / 1e3,
            "plain_pred_us": plain_res.predicted_ns / 1e3,
            "grace_meas_us": grace_res.measured_ns / 1e3,
            "grace_pred_us": grace_res.predicted_ns / 1e3,
        })
    return rows, measures


def render(rows) -> str:
    lines = ["== Extension: spill vs in-memory crossover "
             f"(budget {MEMORY_BUDGET} B, pool 4 KB) =="]
    lines.append(f"{'rows':>6} {'m':>3} | {'plain meas':>11} {'pred':>9} | "
                 f"{'grace meas':>11} {'pred':>9} | winner (meas/pred)")
    for row in rows:
        meas_winner = ("grace" if row["grace_meas_us"] < row["plain_meas_us"]
                       else "plain")
        pred_winner = ("grace" if row["grace_pred_us"] < row["plain_pred_us"]
                       else "plain")
        lines.append(
            f"{row['n']:>6} {row['m']:>3} | {row['plain_meas_us']:>9.0f}us "
            f"{row['plain_pred_us']:>7.0f}us | {row['grace_meas_us']:>9.0f}us "
            f"{row['grace_pred_us']:>7.0f}us | {meas_winner}/{pred_winner}")
    return "\n".join(lines)


def test_spilling_crossover(benchmark, save_result, save_json, quick):
    sizes = (64, 256, 1024) if quick else (64, 128, 256, 512, 1024, 2048)
    rows, measures = benchmark.pedantic(run_crossover, args=(sizes,),
                                        rounds=1, iterations=1)
    save_result("ext_spilling", render(rows))
    # machine-readable series for the grace side, banded over the sizes
    # that actually spill (m > 1; see the module docstring) — the
    # results embed the full typed MeasuredResult JSON
    spilling = [(n, measure) for (n, measure), row
                in zip(zip(sizes, measures), rows) if row["m"] > 1]
    payload = payload_from_results("ext_spilling", spilling, tolerance=0.35)
    save_json("ext_spilling", payload)

    small, large = rows[0], rows[-1]
    # in-budget: grace degenerates to the plain join (no penalty)
    assert small["m"] == 1
    assert small["grace_meas_us"] == small["plain_meas_us"]
    # far out of budget: spilling wins big, in model and measurement
    assert large["grace_meas_us"] < 0.5 * large["plain_meas_us"]
    assert large["grace_pred_us"] < 0.5 * large["plain_pred_us"]
    # and the model stays inside the band across every spilling size
    assert payload["band"]["max_error"] <= 0.35
