"""Figure 7d: partitioning a fixed-size table into m clusters — misses
jump whenever the m concurrently active output lines/pages exceed a
level's capacity in lines (TLB entries, L1 lines, L2 lines)."""

from repro.validation import figure7d_partition


def test_fig7d_partition(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: figure7d_partition(
            total_kb=128,
            m_values=(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)),
        rounds=1, iterations=1,
    )
    save_result("fig7d_partition", result.render())

    rows = {row.x_label: row for row in result.rows}
    # TLB crossover at 8 entries (scaled): m=32 thrashes, m=4 does not.
    assert rows["32"].measured["TLB"] > 3 * rows["4"].measured["TLB"]
    assert rows["32"].predicted["TLB"] > 3 * rows["4"].predicted["TLB"]
    # L1 crossover at 64 lines.
    assert rows["512"].measured["L1"] > 1.5 * rows["16"].measured["L1"]
    assert rows["512"].predicted["L1"] > 1.5 * rows["16"].predicted["L1"]
    # L2 crossover at 512 lines.
    assert rows["1024"].measured["L2"] > 1.5 * rows["64"].measured["L2"]
    assert rows["1024"].predicted["L2"] > 1.5 * rows["64"].predicted["L2"]
