"""Extension: multi-pass radix partitioning (the [MBK00a] optimization).

Figure 7d shows single-pass partitioning thrashing once m exceeds the
TLB entry count.  Multi-pass radix clustering bounds every pass's fanout
below the thrash point; this bench measures both on the simulator and
prices both with the model — the crossover where two cheap passes beat
one thrashing pass appears in both series.
"""

from repro.core import CostModel, DataRegion, partition_pattern
from repro.db import Database, partition, radix_partition, uniform_ints
from repro.db.radix import radix_partition_pattern
from repro.hardware import origin2000_scaled


def run_comparison(n: int, m_values) -> str:
    hierarchy = origin2000_scaled()
    model = CostModel(hierarchy)
    fanout = 8  # == scaled TLB entries
    lines = ["== Extension: single-pass vs multi-pass radix partitioning "
             f"(||U|| = {8 * n // 1024} kB, fanout {fanout}) =="]
    lines.append(f"{'m':>6}  {'1-pass meas':>12}{'1-pass pred':>13}"
                 f"{'radix meas':>12}{'radix pred':>12}   [us]")
    crossover_seen = False
    for m in m_values:
        db1 = Database(hierarchy)
        col1 = db1.create_column("U", uniform_ints(n, seed=1), width=8)
        db1.reset()
        with db1.measure() as res1:
            partition(db1, col1, m)
        db2 = Database(hierarchy)
        col2 = db2.create_column("U", uniform_ints(n, seed=1), width=8)
        db2.reset()
        with db2.measure() as res2:
            radix_partition(db2, col2, m, fanout=fanout)
        U = DataRegion("U", n=n, w=8)
        H = DataRegion("H", n=n, w=8)
        pred1 = model.estimate(partition_pattern(U, H, m)).memory_ns / 1e3
        pred2 = model.estimate(
            radix_partition_pattern(U, m=m, fanout=fanout)).memory_ns / 1e3
        meas1 = res1[0].elapsed_ns / 1e3
        meas2 = res2[0].elapsed_ns / 1e3
        if meas2 < meas1 and pred2 < pred1:
            crossover_seen = True
        lines.append(f"{m:>6}  {meas1:>12.0f}{pred1:>13.0f}"
                     f"{meas2:>12.0f}{pred2:>12.0f}")
    lines.append("crossover (radix wins in both series): "
                 + ("yes" if crossover_seen else "no"))
    return "\n".join(lines)


def test_ext_radix_partitioning(benchmark, save_result):
    text = benchmark.pedantic(
        lambda: run_comparison(16384, (4, 8, 16, 64, 256)),
        rounds=1, iterations=1,
    )
    save_result("ext_radix", text)
    assert "crossover (radix wins in both series): yes" in text
