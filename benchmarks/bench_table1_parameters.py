"""Table 1: characteristic parameters per cache level.

Regenerates the paper's parameter schema for the Origin2000 profile
(and, as a bonus, for the other shipped profiles), exercising the
derived-quantity code paths (line counts, miss bandwidths).
"""

from repro.hardware import disk_extended, modern_x86, origin2000


def render_table1(hierarchy) -> str:
    lines = [f"== Table 1: characteristic parameters — {hierarchy.name} =="]
    header = (f"{'level':<12}{'C [bytes]':>14}{'Z [bytes]':>11}{'# lines':>9}"
              f"{'assoc':>7}{'l_s [ns]':>10}{'l_r [ns]':>10}"
              f"{'b_s [B/ns]':>12}{'b_r [B/ns]':>12}")
    lines.append(header)
    for row in hierarchy.describe():
        lines.append(
            f"{row['name']:<12}{row['capacity_bytes']:>14}"
            f"{row['line_size_bytes']:>11}{row['num_lines']:>9}"
            f"{str(row['associativity']):>7}"
            f"{row['seq_miss_latency_ns']:>10}{row['rand_miss_latency_ns']:>10}"
            f"{row['seq_miss_bandwidth_bytes_per_ns']:>12}"
            f"{row['rand_miss_bandwidth_bytes_per_ns']:>12}"
        )
    return "\n".join(lines)


def test_table1_parameter_schema(benchmark, save_result):
    text = benchmark(lambda: "\n\n".join(
        render_table1(hw) for hw in (origin2000(), modern_x86(), disk_extended())
    ))
    save_result("table1_parameters", text)
    assert "Table 1" in text
    assert "TLB" in text
    assert "BufferPool" in text
