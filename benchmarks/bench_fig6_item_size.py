"""Figure 6: impact of item size R.w and region size ||R|| on traversal
misses.  Four panels as in the paper: (a) s_trav/L1, (b) s_trav/L2,
(c) r_trav/L1, (d) r_trav/L2 — region sizes bracket the level capacity,
showing that sequential traversals are capacity-invariant while random
traversals pay extra once ||R|| exceeds the cache."""

import math

from repro.validation import figure6, geometric_mean_ratio


def _run(benchmark, save_result, name, level, randomized):
    result = benchmark.pedantic(
        lambda: figure6(level=level, randomized=randomized),
        rounds=1, iterations=1,
    )
    save_result(name, result.render())
    return result


def test_fig6a_sequential_l1(benchmark, save_result):
    result = _run(benchmark, save_result, "fig6a_seq_L1", "L1", False)
    for key in result.level_keys:
        assert 0.8 < geometric_mean_ratio(result.rows, key) < 1.25


def test_fig6b_sequential_l2(benchmark, save_result):
    result = _run(benchmark, save_result, "fig6b_seq_L2", "L2", False)
    for key in result.level_keys:
        assert 0.8 < geometric_mean_ratio(result.rows, key) < 1.25


def test_fig6c_random_l1(benchmark, save_result):
    result = _run(benchmark, save_result, "fig6c_rand_L1", "L1", True)
    for key in result.level_keys:
        assert 0.4 < geometric_mean_ratio(result.rows, key) < 2.5


def test_fig6d_random_l2(benchmark, save_result):
    result = _run(benchmark, save_result, "fig6d_rand_L2", "L2", True)
    for key in result.level_keys:
        assert 0.4 < geometric_mean_ratio(result.rows, key) < 2.5
