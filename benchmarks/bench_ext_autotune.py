"""Extension: online self-calibration — the drift→response loop closes
the pinned permutation-join gap.

The static ``origin2000_scaled`` profile carries a known model gap
(``tests/test_known_gaps.py``, ROADMAP item 3): the in-memory hash join
underpredicts permutation joins whose build side outgrows L2 — 0.42 at
n=1024, 0.58 at n=4096 — and ``bench_ext_vectorized`` declares those
rows out of band.  This bench runs the *response* half: a
:class:`~repro.calibrator.Recalibrator` watches measured executions of
the standard template sweep, the drift monitor trips on the join
excursion, one coordinate-descent search republishes the latency
profile, and every template is re-measured on the published profile.

At n=1024 one round **closes** the gap — the join error drops from
~0.48 to well inside the 0.35 band while the healthy templates stay
healthy (whole-sweep MAPE improves) — exactly the event that will
eventually fail the lower pin of ``test_large_n_gap_is_pinned`` and
trigger its tightening.  At full size (n=4096) one round *narrows* the
gap but cannot close it (the re-measured error moves the plan choice,
so the scorer's fixed-point is not the simulator's); the join rows stay
declared ``known_gaps`` there, with the before/after trajectory
recorded.

The emitted ``BENCH_ext_autotune.json`` carries the after-loop series
plus the per-round detail, and the published profiles land next to it
(``profile-<fingerprint>.json`` with their schema-checked
``.manifest.json`` sidecars — validated inline here too).
"""

import pathlib

from repro.calibrator import Recalibrator
from repro.db import grouped_keys, random_permutation
from repro.hardware import origin2000_scaled
from repro.obs import validate_manifest_file
from repro.session import Session
from repro.validation import payload_from_results

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The validation band healthy templates (and, after recalibration,
#: the n=1024 join) must sit inside.
BAND = 0.35

#: The full-size join rows stay declared: one recalibration round
#: narrows the n=4096 gap but does not close it.
KNOWN_GAP_REASON = (
    "one recalibration round narrows the full-size permutation-join "
    "gap (0.58 -> ~0.48) but does not close it: the profile swap moves "
    "the plan choice, so the linear scorer's optimum is not the "
    "simulator's — pinned in tests/test_known_gaps.py, ROADMAP item 3")


def _even(value):
    return value % 2 == 0


def _templates(n):
    return [
        "filter(orders, even, sel=0.5)",
        "sort(orders)",
        f"aggregate(events, groups={n // 8})",
        "join(orders, customers)",
        f"aggregate(join(orders, customers), groups={n})",
        "join(filter(orders, even, sel=0.5), customers)",
    ]


def _make_session(n):
    session = Session(origin2000_scaled())
    session.create_table("orders", random_permutation(n, seed=1))
    session.create_table("customers", random_permutation(n, seed=2))
    session.create_table("events", grouped_keys(n, n // 8, seed=3))
    session.predicate("even", _even)
    return session


def run_loop(n):
    """One drift→response round at size ``n``: measure the sweep while
    the recalibrator watches, let the join excursion trip the monitor,
    republish, re-measure.  Returns the per-template before/after
    errors, the recalibration record, and the after-loop measurements
    (for the payload series)."""
    session = _make_session(n)
    recalibrator = Recalibrator(session, manifest_dir=RESULTS_DIR)
    before = {}
    for text in _templates(n):
        result = session.execute_measured(text, restore=True)
        before[text] = result.error
        recalibrator.observe(result, label=text)
    # the sweep's three join-bearing templates feed one per-operator
    # drift series; at the pinned sizes it trips within the sweep (or
    # after at most a few repeat joins)
    extra_joins = 0
    while not recalibrator.due() and extra_joins < 4:
        result = session.execute_measured("join(orders, customers)",
                                          restore=True)
        recalibrator.observe(result, label="join(orders, customers)")
        extra_joins += 1
    recalibration = recalibrator.recalibrate()
    after, measures = {}, []
    for text in _templates(n):
        result = session.execute_measured(text, restore=True)
        after[text] = result.error
        measures.append((f"{text} @ n={n}", result))
    return {
        "n": n,
        "before": before,
        "after": after,
        "extra_joins": extra_joins,
        "recalibration": recalibration,
        "measures": measures,
    }


def render(rounds) -> str:
    lines = ["== Extension: online self-calibration "
             "(drift -> search -> republish -> re-measure) =="]
    for round_ in rounds:
        n = round_["n"]
        recalibration = round_["recalibration"]
        outcome = recalibration.outcome
        lines.append(
            f"n={n}: search MAPE {outcome.error_before:.3f} -> "
            f"{outcome.error_after:.3f} "
            f"({outcome.evaluations} candidates, {outcome.passes} passes), "
            f"profile {recalibration.fingerprint_before} -> "
            f"{recalibration.fingerprint_after}, "
            f"{recalibration.retired_plans} plans retired")
        lines.append(f"{'template':>50} | {'before':>7} {'after':>7}")
        for text in round_["before"]:
            lines.append(f"{text[:50]:>50} | "
                         f"{round_['before'][text]:>7.3f} "
                         f"{round_['after'][text]:>7.3f}")
    return "\n".join(lines)


def _mape(errors) -> float:
    return sum(errors.values()) / len(errors)


def test_recalibration_closes_the_pinned_gap(benchmark, save_result,
                                             save_json, quick):
    sizes = (1024,) if quick else (1024, 4096)
    rounds = benchmark.pedantic(
        lambda: [run_loop(n) for n in sizes], rounds=1, iterations=1)
    save_result("ext_autotune", render(rounds))

    measures, known_gaps, detail = [], {}, []
    for round_ in rounds:
        n = round_["n"]
        recalibration = round_["recalibration"]
        measures.extend(round_["measures"])
        if n > 1024:  # full-size joins stay declared (see docstring)
            known_gaps.update({
                f"{text} @ n={n}": KNOWN_GAP_REASON
                for text in _templates(n) if "join(" in text})
        detail.append({
            "n": n,
            "before": round_["before"],
            "after": round_["after"],
            "mape_before": _mape(round_["before"]),
            "mape_after": _mape(round_["after"]),
            "search": recalibration.manifest["search"],
            "fingerprint": recalibration.manifest["fingerprint"],
            "retired_plans": recalibration.retired_plans,
            "manifest_path": recalibration.manifest_path.name,
        })
    payload = payload_from_results("ext_autotune", measures,
                                   tolerance=BAND,
                                   include_results=False,
                                   known_gaps=known_gaps)
    payload["rounds"] = detail
    save_json("ext_autotune", payload)

    for round_ in rounds:
        n = round_["n"]
        recalibration = round_["recalibration"]
        join = "join(orders, customers)"
        # the drift monitor tripped and the search published a profile
        assert recalibration is not None and recalibration.published
        assert recalibration.events, "no drift event consumed"
        # the published profile left a schema-valid sidecar manifest
        assert validate_manifest_file(recalibration.manifest_path) == []
        # the loop started from the pinned gap and improved the sweep
        assert round_["before"][join] > 0.30, \
            "the gap closed before recalibrating — tighten the pins"
        assert round_["after"][join] < round_["before"][join]
        assert _mape(round_["after"]) <= _mape(round_["before"])
        if n == 1024:
            # the headline: the pinned n=1024 gap is *closed* online
            assert round_["after"][join] < BAND, (
                f"recalibrated join error {round_['after'][join]:.3f} "
                f"should sit inside the {BAND} band")
    # healthy rows (declared full-size joins excluded) are in band
    assert payload["band"]["max_error"] <= BAND
