"""Figure 7c: hash-join — the random hash-table access dominates once
``||H||`` exceeds the TLB's virtual capacity (scaled C3 = 32 kB) and the
L2 capacity (scaled C2 = 64 kB)."""

from repro.validation import (
    figure7c_hashjoin,
    geometric_mean_ratio,
    payload_from_experiment,
)


def test_fig7c_hashjoin(benchmark, save_result, save_json):
    result = benchmark.pedantic(
        lambda: figure7c_hashjoin(sizes_kb=(2, 4, 8, 16, 32, 64, 128)),
        rounds=1, iterations=1,
    )
    save_result("fig7c_hashjoin", result.render())
    save_json("fig7c_hashjoin", payload_from_experiment(
        "fig7c_hashjoin", result, tolerance=2.0))

    rows = list(result.rows)
    # TLB misses explode across the ||H|| = C3 crossing in both series.
    assert rows[-1].measured["TLB"] > 50 * rows[0].measured["TLB"]
    assert rows[-1].predicted["TLB"] > 50 * max(1.0, rows[0].predicted["TLB"])
    # Order-of-magnitude agreement on the dominating levels.
    for key in ("L2", "TLB", "time_us"):
        gm = geometric_mean_ratio(result.rows, key)
        assert 0.25 < gm < 2.0
