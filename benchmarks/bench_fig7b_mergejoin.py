"""Figure 7b: merge-join of sorted 1:1 operands — costs are purely
sequential, proportional to data size, and unaffected by cache capacity
(no step anywhere)."""

from repro.validation import figure7b_mergejoin, geometric_mean_ratio


def test_fig7b_mergejoin(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: figure7b_mergejoin(sizes_kb=(4, 8, 16, 32, 64, 128, 256)),
        rounds=1, iterations=1,
    )
    save_result("fig7b_mergejoin", result.render())

    # Tight agreement (the paper's cleanest validation case).
    for key in ("L1", "L2", "TLB"):
        gm = geometric_mean_ratio(result.rows, key)
        assert 0.8 < gm < 1.25
    # Linearity: 64x the size, ~64x the L1 misses.
    rows = {row.x_label: row for row in result.rows}
    assert rows["256kB"].measured["L1"] / rows["4kB"].measured["L1"] > 40
