"""Extension: cache-conscious B+-tree node sizing (Rao/Ross [RR99/RR00],
cited in the paper's introduction).

Trees are regions (Section 3.1); index probes are per-level random hits.
Sweeping the node size shows the cache-conscious trade-off: line-sized
nodes minimise per-probe misses; page-sized nodes waste bandwidth, tiny
nodes deepen the tree.  Model and simulator agree on the ordering.
"""

from repro.core import CostModel, DataRegion
from repro.db import (
    Database,
    SimBTree,
    btree_lookup_pattern,
    index_nested_loop_join,
    random_permutation,
)
from repro.hardware import origin2000_scaled


def run_node_size_sweep(n: int, node_sizes) -> str:
    hierarchy = origin2000_scaled()
    model = CostModel(hierarchy)
    lines = ["== Extension: B+-tree node size vs index-join cost "
             f"(n = {n}, scaled Origin2000; L2 line = 128 B) =="]
    lines.append(f"{'node [B]':>9} {'height':>7} {'meas [us]':>11} "
                 f"{'pred [us]':>11}")
    per_size = {}
    for node_bytes in node_sizes:
        db = Database(hierarchy)
        inner = db.create_column("V", random_permutation(n, seed=1), width=8)
        tree = SimBTree.build(db, inner, node_bytes=node_bytes)
        outer = db.create_column("U", random_permutation(n, seed=2), width=8)
        db.reset()
        with db.measure() as res:
            index_nested_loop_join(db, outer, tree)
        W = DataRegion("W", n=n, w=16)
        pattern = btree_lookup_pattern(outer.region(), tree.region(),
                                       tree.height, W, fanout=tree.fanout)
        predicted = model.estimate(pattern).memory_ns / 1e3
        measured = res[0].elapsed_ns / 1e3
        per_size[node_bytes] = (measured, predicted)
        lines.append(f"{node_bytes:>9} {tree.height:>7} {measured:>11.0f} "
                     f"{predicted:>11.0f}")
    return "\n".join(lines), per_size


def test_ext_btree_node_size(benchmark, save_result):
    text, per_size = benchmark.pedantic(
        lambda: run_node_size_sweep(4096, (32, 128, 512, 4096)),
        rounds=1, iterations=1,
    )
    save_result("ext_btree", text)
    # Line-sized nodes (128 B = L2 line) beat page-sized nodes in both
    # series — the cache-conscious design rule.
    assert per_size[128][0] < per_size[4096][0]
    assert per_size[128][1] < per_size[4096][1]
