"""Extension: cost-driven plan enumeration (paper Section 1's optimizer
use-case, end to end).

Times the enumerator on the workload of ``examples/query_pipeline.py``
and records the chosen plan's predicted cost against the two hand-built
plans from that example — the optimizer must do at least as well as the
hand-wired trees it replaces.  A second case times exhaustive vs.
dynamic-programming enumeration on a three-relation join at model-only
scale.
"""

import pytest

from repro.core import CostModel, DataRegion
from repro.db import Database, random_permutation
from repro.hardware import origin2000_scaled
from repro.query import (
    Aggregate,
    AggregateNode,
    Filter,
    HashJoinNode,
    Join,
    MergeJoinNode,
    Optimizer,
    PlannerConfig,
    ProjectNode,
    QueryPlan,
    Relation,
    ScanNode,
    SelectNode,
    SortNode,
)

N = 8192
GROUPS = 64


def _setup():
    hierarchy = origin2000_scaled()
    db = Database(hierarchy)
    orders = db.create_column("orders", random_permutation(N, seed=1), width=8)
    customers = db.create_column("customers", random_permutation(N, seed=2),
                                 width=8)
    return hierarchy, db, orders, customers


def _hand_built(orders, customers, by_key: bool = False):
    """The two hand-wired plan shapes of examples/query_pipeline.py.

    ``by_key=False`` reproduces the example exactly (positional bucket
    grouping via ``key_of``); ``by_key=True`` builds the same trees for
    group-by-join-key semantics (projection, one group per key) so they
    are comparable with the optimizer's reorderable form.
    """
    predicate = lambda v: v % 2 == 0
    join = HashJoinNode(
        SelectNode(ScanNode(orders), predicate, selectivity=0.5),
        ScanNode(customers),
    )
    merge = MergeJoinNode(
        SortNode(SelectNode(ScanNode(orders), predicate, selectivity=0.5)),
        SortNode(ScanNode(customers)),
    )
    if by_key:
        hash_plan = QueryPlan(AggregateNode(ProjectNode(join), groups=N // 2))
        sort_plan = QueryPlan(AggregateNode(ProjectNode(merge), groups=N // 2))
    else:
        key_of = lambda pair: pair[0] % GROUPS
        hash_plan = QueryPlan(AggregateNode(join, groups=GROUPS,
                                            key_of=key_of))
        sort_plan = QueryPlan(AggregateNode(merge, groups=GROUPS,
                                            key_of=key_of))
    return {"hand-built hash": hash_plan, "hand-built sort-merge": sort_plan}


def _logical(orders, customers, key_of=None, groups=GROUPS):
    return Aggregate(
        Join(Filter(Relation.of_column(orders), lambda v: v % 2 == 0,
                    selectivity=0.5),
             Relation.of_column(customers)),
        groups=groups,
        key_of=key_of,
    )


def test_enumeration_beats_hand_built(benchmark, save_result):
    hierarchy, db, orders, customers = _setup()
    model = CostModel(hierarchy)
    optimizer = Optimizer(hierarchy)
    # Group by join key (key_of=None): the form the optimizer is free
    # to reorder; distinct join keys = N/2 after the 0.5 selection.
    logical = _logical(orders, customers, groups=N // 2)

    planned = benchmark.pedantic(lambda: optimizer.optimize(logical),
                                 rounds=3, iterations=1)

    lines = [f"== Extension: plan enumeration vs hand-built plans "
             f"(n = {N}) ==",
             f"  enumerated candidates: {len(planned)}",
             f"  chosen: {planned.best.signature}",
             f"  chosen predicted   {planned.best.total_ns / 1e3:>10.1f} us",
             f"  worst  predicted   {planned.worst.total_ns / 1e3:>10.1f} us"]
    hand_costs = {}
    for name, plan in _hand_built(orders, customers, by_key=True).items():
        cost = plan.estimate(model).total_ns
        hand_costs[name] = cost
        lines.append(f"  {name:<19}{cost / 1e3:>10.1f} us")
    text = "\n".join(lines)
    save_result("ext_plan_enumeration", text)

    # the optimizer must match or beat every same-semantics hand-wired
    # plan shape
    assert planned.best.total_ns <= min(hand_costs.values()) * 1.0001


def test_positional_key_of_pins_to_canonical_plan(save_result):
    """The exact hand-built query of examples/query_pipeline.py uses a
    positional key_of, which is order-sensitive: the optimizer must not
    enumerate alternatives but return the canonical plan, matching the
    hand-built hash plan's predicted cost exactly."""
    hierarchy, db, orders, customers = _setup()
    model = CostModel(hierarchy)
    logical = _logical(orders, customers,
                       key_of=lambda pair: pair[0] % GROUPS)
    planned = Optimizer(hierarchy).optimize(logical)
    assert len(planned) == 1
    hand_hash = _hand_built(orders, customers)["hand-built hash"]
    assert planned.best.total_ns == pytest.approx(
        hand_hash.estimate(model).total_ns)


def test_three_relation_enumeration_spread(benchmark):
    """Exhaustive enumeration over three relations at model-only scale:
    the chosen plan beats the worst by >= 2x predicted, and the subset
    DP finds the same best plan from far fewer candidates."""
    hierarchy = origin2000_scaled()
    logical = Join(
        Join(Relation.of_region(DataRegion("A", 100_000, 8)),
             Relation.of_region(DataRegion("B", 100_000, 8))),
        Relation.of_region(DataRegion("C", 12_500, 8)),
    )
    optimizer = Optimizer(
        hierarchy, PlannerConfig(include_nested_loop=True))

    planned = benchmark.pedantic(
        lambda: optimizer.optimize(logical, method="exhaustive"),
        rounds=1, iterations=1)
    assert planned.worst.total_ns >= 2.0 * planned.best.total_ns

    dp = optimizer.optimize(logical, method="dp")
    assert len(dp) < len(planned)
    assert dp.best.total_ns <= planned.best.total_ns * 1.0001
