"""Table 2: the pattern-language descriptions of database algorithms,
plus the automatically derived per-level cost of each example pattern on
the paper's Origin2000 — demonstrating the paper's central workflow
(describe the algorithm, get the cost function for free)."""

from repro.core import TABLE2, CostModel
from repro.hardware import origin2000


def render_table2() -> str:
    model = CostModel(origin2000())
    lines = ["== Table 2: sample data access patterns (with derived costs, "
             "Origin2000, demo regions) =="]
    lines.append(f"{'algorithm':<22}{'pattern description':<52}"
                 f"{'L1 miss':>9}{'L2 miss':>9}{'TLB miss':>9}{'T_mem [us]':>12}")
    for row in TABLE2:
        estimate = model.estimate(row.example())
        lines.append(
            f"{row.algorithm:<22}{row.description:<52}"
            f"{estimate.misses('L1'):>9.0f}{estimate.misses('L2'):>9.0f}"
            f"{estimate.misses('TLB'):>9.0f}{estimate.memory_ns / 1e3:>12.1f}"
        )
    return "\n".join(lines)


def test_table2_pattern_language(benchmark, save_result):
    text = benchmark(render_table2)
    save_result("table2_patterns", text)
    assert "hash_join" in text
    assert "⊙" in text or "s_trav" in text
