"""Figure 7e: partitioned hash-join — join cost collapses once each
per-partition hash table fits the caches (scaled C2/C3/C1 crossings)."""

from repro.validation import figure7e_partitioned_hashjoin


def test_fig7e_partitioned_hashjoin(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: figure7e_partitioned_hashjoin(
            total_kb=128, m_values=(1, 2, 4, 8, 16, 32, 64, 128)),
        rounds=1, iterations=1,
    )
    save_result("fig7e_part_hashjoin", result.render())

    rows = list(result.rows)
    unpartitioned = rows[0]
    fitting = rows[5]   # m=32: ||Hj|| = 16 kB, below every capacity
    # Both series show the big win once partitions are cache-resident.
    assert fitting.measured["time_us"] < 0.35 * unpartitioned.measured["time_us"]
    assert fitting.predicted["time_us"] < 0.35 * unpartitioned.predicted["time_us"]
    # TLB misses essentially disappear.
    assert fitting.measured["TLB"] < 0.1 * unpartitioned.measured["TLB"]
