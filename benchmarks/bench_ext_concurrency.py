"""Extension: interference-aware co-scheduling of a concurrent workload.

The ⊙ operator (Section 5.2) predicts how concurrently executing
access patterns share a cache.  Applied *between* queries, it lets a
scheduler decide which queries may co-run: this bench drives a
join-dominated, memory-bound workload (hash tables comparable to the
scaled L2) through the :mod:`repro.service` executor under three
policies and shows

* **throughput vs batch size** for the naive max-parallel policy —
  packing more thrashing queries per batch stops paying, and
* **interference-aware vs naive**: the ⊙-guided greedy policy beats
  naive max-parallel's simulator-measured makespan, while its co-run
  memory predictions track the interleaved replay within the tolerance
  the model-vs-simulator suites use (35%).

Honours the shared ``--quick`` / ``REPRO_BENCH_QUICK`` knob (reduced
scale and query count; same assertions).
"""

from repro.service import (
    FifoSerialPolicy,
    InterferenceAwarePolicy,
    InterferenceModel,
    MaxParallelPolicy,
    ServiceExecutor,
    WorkloadGenerator,
)
from repro.session import Session

#: Relative tolerance of the existing model-vs-simulator agreement
#: tests (tests/test_model_vs_simulator_deep.py uses 0.30–0.35 for
#: random/compound patterns).
MODEL_TOLERANCE = 0.35


def _run(session, policy, workload):
    return ServiceExecutor(session, policy).run(workload)


def test_concurrent_workload_scheduling(quick, save_result):
    # quick shrinks the stream, not the tables: the hash-table-vs-L2
    # contention regime (scale 512) is the experiment
    scale = 512
    n_queries = 8 if quick else 24
    session = Session()
    generator = WorkloadGenerator.contention_heavy(session=session, seed=7,
                                                   scale=scale)
    workload = generator.generate(n_queries, clients=4)

    lines = [f"== Extension: concurrent workload service "
             f"(scale = {scale}, {n_queries} queries, "
             f"contention-heavy mix{', quick' if quick else ''}) =="]

    # -- throughput vs batch size (naive max-parallel) ------------------
    lines.append("  naive max-parallel, throughput vs batch size:")
    naive_reports = {}
    for batch_size in (1, 2, 4, 6):
        report = _run(session, MaxParallelPolicy(batch_size), workload)
        naive_reports[batch_size] = report
        lines.append(
            f"    batch {batch_size}:  makespan "
            f"{report.makespan_ns / 1e6:>8.2f} ms   "
            f"throughput {report.throughput_qps:>8.0f} q/s   "
            f"p95 {report.p95_latency_ns / 1e6:>8.2f} ms")

    # -- policy comparison ---------------------------------------------
    serial = _run(session, FifoSerialPolicy(), workload)
    naive = naive_reports[4]
    aware = _run(session, InterferenceAwarePolicy(
        InterferenceModel(session.hierarchy), max_batch=4), workload)

    lines.append("  policy comparison (batch cap 4):")
    for report in (serial, naive, aware):
        lines.append(
            f"    {report.policy:<20} makespan "
            f"{report.makespan_ns / 1e6:>8.2f} ms   "
            f"throughput {report.throughput_qps:>8.0f} q/s   "
            f"p50 {report.p50_latency_ns / 1e6:>7.2f} ms   "
            f"p95 {report.p95_latency_ns / 1e6:>7.2f} ms   "
            f"⊙ err {report.mean_contention_error * 100:>5.1f}%")
    lines.append(
        f"  interference-aware vs naive makespan: "
        f"{naive.makespan_ns / aware.makespan_ns:.2f}x better; "
        f"plan cache {aware.cache_hits}/{len(aware.queries)} hits")
    save_result("ext_concurrency", "\n".join(lines))

    # -- acceptance -----------------------------------------------------
    # the ⊙-guided policy must beat naive max-parallel outright
    assert aware.makespan_ns < naive.makespan_ns
    # and the ⊙ co-run predictions must track the interleaved replay
    # within the established model-vs-simulator tolerance
    assert naive.mean_contention_error < MODEL_TOLERANCE
    assert aware.mean_contention_error < MODEL_TOLERANCE
    # sanity: the mix really is contended — packing naive batches
    # harder stops paying (batch 6 throughput below batch 2)
    assert (naive_reports[6].throughput_qps
            < naive_reports[2].throughput_qps)
