"""Table 3: hardware characteristics as measured by the Calibrator.

The paper's Table 3 lists the Origin2000 parameters "measured with our
calibration tool".  We run the reproduced Calibrator against the
simulated (scaled) machine and print recovered vs configured values.
"""

from repro.calibrator import calibrate
from repro.hardware import origin2000_scaled


def render_table3() -> str:
    hierarchy = origin2000_scaled()
    result = calibrate(hierarchy)
    configured = sorted(hierarchy.all_levels, key=lambda l: l.capacity)
    lines = [f"== Table 3: calibrated vs configured — {hierarchy.name} =="]
    lines.append(f"{'quantity':<26}{'calibrated':>14}{'configured':>14}")
    for found, actual in zip(result.levels, configured):
        lines.append(f"[{actual.name}]")
        lines.append(f"{'  capacity [bytes]':<26}{found.capacity:>14}"
                     f"{actual.capacity:>14}")
        lines.append(f"{'  line size [bytes]':<26}{found.line_size:>14}"
                     f"{actual.line_size:>14}")
        lines.append(f"{'  seq miss latency [ns]':<26}"
                     f"{found.seq_miss_latency_ns:>14}"
                     f"{actual.seq_miss_latency_ns:>14}")
        lines.append(f"{'  rand miss latency [ns]':<26}"
                     f"{found.rand_miss_latency_ns:>14}"
                     f"{actual.rand_miss_latency_ns:>14}")
    return "\n".join(lines)


def test_table3_calibration(benchmark, save_result):
    text = benchmark.pedantic(render_table3, rounds=1, iterations=1)
    save_result("table3_calibration", text)
    assert "capacity" in text


def test_table3_capacities_recovered_exactly(benchmark):
    hierarchy = origin2000_scaled()
    result = benchmark.pedantic(lambda: calibrate(hierarchy),
                                rounds=1, iterations=1)
    configured = sorted(l.capacity for l in hierarchy.all_levels)
    assert [l.capacity for l in result.levels] == configured
