"""Extension (paper Section 1): the optimizer use-case.

Sweeps operand sizes and prints which join implementation the
cost-model-driven advisor picks — showing the crossover from plain
hash join (cache-resident hash table) to partitioned hash join.
"""

from repro.core import DataRegion
from repro.hardware import origin2000
from repro.optimizer import JoinAdvisor


def render_crossover() -> str:
    advisor = JoinAdvisor(origin2000(), inputs_sorted=False)
    lines = ["== Extension: cost-based join choice (Origin2000, unsorted "
             "operands, w=8) =="]
    lines.append(f"{'n (rows)':>12}{'||H|| ':>12}{'choice':<24}"
                 f"{'merge [ms]':>12}{'hash [ms]':>12}{'part-hash [ms]':>15}")
    for n in (10_000, 100_000, 400_000, 1_000_000, 4_000_000, 16_000_000):
        U = DataRegion("U", n=n, w=8)
        V = DataRegion("V", n=n, w=8)
        W = DataRegion("W", n=n, w=16)
        by_name = {c.algorithm: c for c in advisor.rank(U, V, W)}
        best = min(by_name.values(), key=lambda c: c.total_ns)
        h_size = 16 * n
        lines.append(
            f"{n:>12}{_fmt_bytes(h_size):>12}{best.algorithm:<24}"
            f"{by_name['merge_join'].total_ns / 1e6:>12.1f}"
            f"{by_name['hash_join'].total_ns / 1e6:>12.1f}"
            f"{by_name['partitioned_hash_join'].total_ns / 1e6:>15.1f}"
        )
    return "\n".join(lines)


def _fmt_bytes(b: int) -> str:
    if b >= 1 << 20:
        return f"{b / (1 << 20):.0f}MB"
    return f"{b / 1024:.0f}kB"


def test_optimizer_crossover(benchmark, save_result):
    text = benchmark(render_crossover)
    save_result("ext_optimizer", text)
    assert "hash_join" in text


def test_partitioning_wins_beyond_cache(benchmark):
    advisor = JoinAdvisor(origin2000(), inputs_sorted=False)

    def choices():
        small = advisor.best(DataRegion("U", 50_000, 8),
                             DataRegion("V", 50_000, 8),
                             DataRegion("W", 50_000, 16))
        big = advisor.rank(DataRegion("U", 16_000_000, 8),
                           DataRegion("V", 16_000_000, 8),
                           DataRegion("W", 16_000_000, 16))
        return small, big

    small, big = benchmark(choices)
    by_name = {c.algorithm: c for c in big}
    assert (by_name["partitioned_hash_join"].total_ns
            < by_name["hash_join"].total_ns)
