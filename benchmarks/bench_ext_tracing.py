"""Extension: observability overhead and artifact validity.

The :mod:`repro.obs` layer promises three things this bench holds it
to, on seeded serving runs:

* **overhead** — the same contention-heavy stream is served with and
  without a :class:`~repro.obs.Tracer` attached (best-of-N wall time
  each); tracing must cost ≤ 5% of serving throughput, and the
  simulated responses must be *identical* either way (observability
  never changes what it observes — only the compile wall-time field,
  real thread time, differs run to run and is stripped);
* **artifacts** — two traced runs with the same seeds must export
  byte-identical simulated-clock Chrome traces that validate against
  :func:`~repro.obs.validate_chrome_trace` (the file lands next to the
  bench results as ``ext_tracing.trace.json`` — open it in Perfetto),
  with a metrics exposition carrying plan-cache, admission, and
  per-level simulator miss series;
* **drift** — a fifo-serial run of the pinned small-n permutation
  join (``tests/test_known_gaps.py``: the model underpredicts by
  ~0.42 at n = 1024) must surface at least one structured drift event
  for ``hash_join``.

Emits schema-checked ``BENCH_ext_tracing.json``.  Honours the shared
``--quick`` / ``REPRO_BENCH_QUICK`` knob.
"""

import asyncio
import json
import pathlib
import time

from repro.db import random_permutation
from repro.obs import Tracer, validate_chrome_trace
from repro.server import PoissonArrivals, QueryServer, TenantQuota
from repro.service import WorkloadGenerator
from repro.validation import payload_from_serving

#: Tolerance of the established model-vs-simulator agreement suites.
MODEL_TOLERANCE = 0.35

#: Tracing may cost at most this fraction of serving wall time.
MAX_OVERHEAD = 0.05

#: Offered load (queries per simulated second) — saturating, so the
#: admission controller forms co-run batches.
RATE_QPS = 16000.0

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

TENANTS = ("acme", "globex")


def _serve(tracer, n_queries, scale):
    """One two-tenant contention-heavy serving run, optionally traced;
    returns ``(report, responses)``."""

    async def main():
        server = QueryServer(mode="interference-aware", max_workers=4,
                             max_batch=4, max_queue=512, tracer=tracer)
        for name in TENANTS:
            tenant = server.add_tenant(name,
                                       TenantQuota(max_queued=256))
            gen = WorkloadGenerator.contention_heavy(
                session=tenant.session, seed=7, scale=scale)
            queries = gen.generate(n_queries, clients=4)
        stream = PoissonArrivals(RATE_QPS, seed=3).stamp(queries)
        async with server:
            responses = await server.serve(stream)
            await server.drain()
        return server.report(), responses

    return asyncio.run(main())


def _drift_run():
    """A fifo-serial (solo-batch) run of the pinned permutation join —
    the per-operator attribution path that feeds the drift monitor."""
    tracer = Tracer()

    async def main():
        server = QueryServer(mode="fifo-serial", max_workers=2,
                             tracer=tracer)
        tenant = server.add_tenant("acme")
        tenant.session.create_table(
            "orders", random_permutation(1024, seed=1))
        tenant.session.create_table(
            "customers", random_permutation(1024, seed=2))
        async with server:
            futures = [server.submit_nowait(
                "acme", "join(orders, customers)", kind="join",
                arrival_ns=float(i) * 1e5) for i in range(4)]
            await asyncio.gather(*futures)
            await server.drain()

    asyncio.run(main())
    return tracer


def _strip_wall(responses):
    payloads = []
    for response in responses:
        payload = response.to_json()
        payload["compile_ns"].pop("wall_ns")
        payloads.append(payload)
    return payloads


def test_tracing_overhead_and_artifacts(quick, save_result, save_json):
    scale = 512
    n_queries = 16 if quick else 32
    repeats = 2 if quick else 3

    lines = [f"== Extension: tracing & metrics (scale = {scale}, "
             f"{n_queries} queries, 2 tenants"
             f"{', quick' if quick else ''}) =="]

    # -- overhead: traced vs untraced wall time, identical responses ----
    timings = {"off": [], "on": []}
    outcomes = {}
    for _ in range(repeats):
        for label, tracer in (("off", None), ("on", Tracer())):
            begin = time.perf_counter()
            report, responses = _serve(tracer, n_queries, scale)
            timings[label].append(time.perf_counter() - begin)
            outcomes[label] = (report, responses)
    overhead = (min(timings["on"]) / min(timings["off"])) - 1.0
    lines.append(
        f"  serving wall time (best of {repeats}): "
        f"untraced {min(timings['off']) * 1e3:.1f} ms, "
        f"traced {min(timings['on']) * 1e3:.1f} ms  "
        f"→ overhead {overhead * 100:+.1f}% "
        f"(budget ≤ {MAX_OVERHEAD * 100:.0f}%)")
    assert _strip_wall(outcomes["on"][1]) == \
        _strip_wall(outcomes["off"][1]), \
        "tracing must not change simulated responses"

    # -- artifacts: deterministic, schema-valid exports -----------------
    first = Tracer()
    _serve(first, n_queries, scale)
    second = Tracer()
    _serve(second, n_queries, scale)
    exports = [json.dumps(t.chrome_trace("sim"), sort_keys=True,
                          separators=(",", ":"))
               for t in (first, second)]
    assert exports[0] == exports[1], \
        "simulated-clock trace must be byte-identical across seeds"
    problems = validate_chrome_trace(first.chrome_trace("sim"))
    assert problems == [], f"trace schema violations: {problems}"
    RESULTS_DIR.mkdir(exist_ok=True)
    trace_path = first.write_chrome(
        RESULTS_DIR / "ext_tracing.trace.json")
    trace_bytes = trace_path.stat().st_size
    exposition = first.metrics.expose()
    for family in ("plan_cache_hits_total", "server_admission_total",
                   "sim_level_misses_total", "server_queries_total"):
        assert family in exposition, f"metrics missing {family}"
    lines.append(
        f"  trace: {len(first.spans)} spans, {trace_bytes} bytes, "
        f"byte-identical across runs, schema-valid "
        f"({trace_path.name})")
    lines.append(
        f"  metrics: {len(first.metrics)} families "
        f"(plan cache, admission, per-level misses included)")

    # -- drift: the pinned permutation-join overshoot -------------------
    drift_tracer = _drift_run()
    events = [e for e in drift_tracer.drift.events
              if e.operator == "hash_join"]
    assert events, ("the pinned small-n permutation-join overshoot "
                    "must surface as a drift event")
    event = events[0]
    lines.append(
        f"  drift: hash_join EWMA {event.ewma:+.3f} left the "
        f"±{event.band:.2f} band after {event.count} samples "
        f"({len(drift_tracer.drift.events)} event(s) total)")
    save_result("ext_tracing", "\n".join(lines))

    payload = payload_from_serving(
        "ext_tracing",
        [("traced", outcomes["on"][0]), ("untraced", outcomes["off"][0])],
        tolerance=MODEL_TOLERANCE)
    payload["tracing_overhead"] = overhead
    payload["max_overhead"] = MAX_OVERHEAD
    payload["trace_bytes"] = trace_bytes
    payload["trace_file"] = trace_path.name
    payload["span_count"] = len(first.spans)
    payload["metric_families"] = len(first.metrics)
    payload["drift_events"] = [e.to_json()
                               for e in drift_tracer.drift.events]
    save_json("ext_tracing", payload)

    # -- acceptance -----------------------------------------------------
    assert overhead <= MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}%")
