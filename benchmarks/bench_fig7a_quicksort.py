"""Figure 7a: quick-sort — measured vs predicted L1/L2/TLB misses and
time across table sizes spanning the (scaled) L2 capacity.  The paper's
headline effect: tables fitting the cache are loaded once during the
top-level pass; larger tables pay per recursion level."""

from repro.validation import figure7a_quicksort, payload_from_experiment


def test_fig7a_quicksort(benchmark, save_result, save_json):
    result = benchmark.pedantic(
        lambda: figure7a_quicksort(sizes_kb=(4, 8, 16, 32, 64, 128, 256)),
        rounds=1, iterations=1,
    )
    save_result("fig7a_quicksort", result.render())
    save_json("fig7a_quicksort", payload_from_experiment(
        "fig7a_quicksort", result, tolerance=2.0))

    # Crossover shape: per-byte L2 misses flat below C2 (64 kB scaled),
    # clearly rising above.
    rows = {row.x_label: row for row in result.rows}
    below = rows["16kB"].measured["L2"] / 16
    above = rows["256kB"].measured["L2"] / 256
    assert above > 1.5 * below
    # Model within a factor of two on L2/TLB/time at all sizes.
    for key in ("L2", "TLB", "time_us"):
        assert result.max_ratio_error(key) <= 1.0
