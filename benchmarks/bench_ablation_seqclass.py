"""Ablation: sequential/random miss discrimination.

DESIGN.md calls out the simulator's EDO miss classifier as a design
choice.  This ablation re-runs merge join on a machine whose sequential
latencies are forced to the random values (i.e. no EDO/prefetch) and
shows the elapsed time rising by the latency ratio — quantifying how
much of the model's accuracy depends on distinguishing the two miss
kinds, which is the paper's Section 2.2 argument.
"""

from repro.hardware import CacheLevel, MemoryHierarchy, origin2000_scaled
from repro.db import Database, merge_join, sorted_ints


def _no_edo(hierarchy: MemoryHierarchy) -> MemoryHierarchy:
    def flatten(level: CacheLevel) -> CacheLevel:
        return CacheLevel(
            name=level.name, capacity=level.capacity,
            line_size=level.line_size, associativity=level.associativity,
            seq_miss_latency_ns=level.rand_miss_latency_ns,
            rand_miss_latency_ns=level.rand_miss_latency_ns,
            is_tlb=level.is_tlb,
        )
    return MemoryHierarchy(
        name=hierarchy.name + " (no EDO)",
        levels=tuple(flatten(l) for l in hierarchy.levels),
        tlbs=tuple(flatten(t) for t in hierarchy.tlbs),
        cpu_speed_mhz=hierarchy.cpu_speed_mhz,
    )


def _merge_join_time(hierarchy) -> float:
    db = Database(hierarchy)
    n = 8192
    left = db.create_column("U", sorted_ints(n), width=8)
    right = db.create_column("V", sorted_ints(n), width=8)
    db.reset()
    with db.measure() as res:
        merge_join(db, left, right)
    return res[0].elapsed_ns


def test_ablation_sequential_classification(benchmark, save_result):
    def run():
        with_edo = _merge_join_time(origin2000_scaled())
        without = _merge_join_time(_no_edo(origin2000_scaled()))
        return with_edo, without

    with_edo, without = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = without / with_edo
    save_result("ablation_seqclass", "\n".join([
        "== Ablation: sequential vs random miss latency (merge join) ==",
        f"with EDO classification:    {with_edo / 1e3:10.1f} us",
        f"all misses at random cost:  {without / 1e3:10.1f} us",
        f"slowdown without EDO:       {ratio:10.2f}x",
    ]))
    # Merge join is sequential-dominated: losing EDO costs >= 1.5x.
    assert ratio > 1.5
