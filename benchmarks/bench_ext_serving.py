"""Extension: live serving over the cost-model stack.

The :mod:`repro.server` tier puts the ⊙ concurrency algebra on the
critical path of an *online* system: seeded open-loop Poisson traffic
flows through two tenants' plan caches into the admission controller,
which forms co-run batches only when the predicted makespan beats
queueing.  This bench measures the serving tier twice:

* **load sweep** — sustained throughput and p50/p95/p99 latency as the
  offered client count (and with it the arrival rate) grows past the
  machine's service rate, under interference-aware admission;
* **policy comparison** — the same overload stream served with
  ``interference-aware``, ``max-parallel``, and ``fifo-serial``
  admission on a contention-heavy mix: the ⊙-guided policy must beat
  naive max-parallel's simulator-measured makespan by ≥ 1.1x, with its
  co-run predictions tracking the interleaved replay within the
  model-vs-simulator tolerance (35%).

All times are simulated: a run is deterministic in (workload seed,
arrival seed, policy), so the emitted ``BENCH_ext_serving.json`` is
diffable across commits.  Honours the shared ``--quick`` /
``REPRO_BENCH_QUICK`` knob (shorter stream, same assertions).
"""

import asyncio

from repro.server import PoissonArrivals, QueryServer, TenantQuota
from repro.service import WorkloadGenerator
from repro.validation import payload_from_serving

#: Tolerance of the established model-vs-simulator agreement suites.
MODEL_TOLERANCE = 0.35

#: Required simulator-measured makespan advantage of ⊙-guided
#: admission over naive max-parallel on the contention-heavy mix.
REQUIRED_ADVANTAGE = 1.1

#: Offered load per client (queries per simulated second).  The scaled
#: Origin2000 serves the contention-heavy mix at a few thousand q/s,
#: so a handful of clients is saturation.
RATE_PER_CLIENT_QPS = 4000.0

TENANTS = ("acme", "globex")


def _serve(mode, clients, n_queries, scale, rate_qps):
    """One serving run: two tenants, contention-heavy catalogs, a
    Poisson-stamped stream dealt round-robin; queue sized to avoid
    shedding so policy makespans are comparable like for like."""

    async def main():
        server = QueryServer(mode=mode, max_workers=4, max_batch=4,
                             max_queue=512)
        for name in TENANTS:
            tenant = server.add_tenant(
                name, TenantQuota(max_queued=256))
            gen = WorkloadGenerator.contention_heavy(
                session=tenant.session, seed=7, scale=scale)
            queries = gen.generate(n_queries, clients=clients)
        stream = PoissonArrivals(rate_qps, seed=3).stamp(queries)
        async with server:
            await server.serve(stream)
            await server.drain()
        return server.report()

    return asyncio.run(main())


def _fmt_point(size, report):
    def _ms(value):
        return "     -" if value is None else f"{value / 1e6:6.2f}"

    return (f"    {size:>12}:  {len(report.completed):>3} served   "
            f"{report.sustained_qps:>7.0f} q/s   "
            f"p50 {_ms(report.p50_latency_ns)} ms   "
            f"p95 {_ms(report.p95_latency_ns)} ms   "
            f"p99 {_ms(report.p99_latency_ns)} ms   "
            f"⊙ err {report.mean_contention_error * 100:>5.1f}%")


def test_async_serving(quick, save_result, save_json):
    scale = 512
    n_queries = 16 if quick else 32
    client_counts = (1, 2, 4) if quick else (1, 2, 4, 8)

    lines = [f"== Extension: async multi-tenant serving "
             f"(scale = {scale}, {n_queries} queries, 2 tenants, "
             f"contention-heavy mix{', quick' if quick else ''}) =="]

    # -- load sweep: q/s and tail latency vs client count ---------------
    lines.append("  interference-aware admission, load sweep "
                 f"({RATE_PER_CLIENT_QPS:.0f} q/s offered per client):")
    sweep = []
    for clients in client_counts:
        report = _serve("interference-aware", clients, n_queries,
                        scale, RATE_PER_CLIENT_QPS * clients)
        sweep.append((clients, report))
        lines.append(_fmt_point(f"{clients} clients", report))
        done = report.completed
        assert len(done) == n_queries, "sweep must not shed"
        if len(done) > 1:
            assert report.p50_latency_ns <= report.p95_latency_ns \
                <= report.p99_latency_ns
        assert report.sustained_qps > 0

    # -- policy comparison on the saturating load -----------------------
    clients = client_counts[-1]
    rate = RATE_PER_CLIENT_QPS * clients
    reports = {mode: _serve(mode, clients, n_queries, scale, rate)
               for mode in ("interference-aware", "max-parallel",
                            "fifo-serial")}
    lines.append(f"  policy comparison ({clients} clients, "
                 f"{rate:.0f} q/s offered):")
    for mode, report in reports.items():
        lines.append(_fmt_point(mode, report))
    aware = reports["interference-aware"]
    naive = reports["max-parallel"]
    advantage = naive.makespan_ns / aware.makespan_ns
    lines.append(f"  interference-aware vs max-parallel makespan: "
                 f"{advantage:.2f}x better "
                 f"(required ≥ {REQUIRED_ADVANTAGE:.1f}x)")
    save_result("ext_serving", "\n".join(lines))

    payload = payload_from_serving(
        "ext_serving",
        [(f"{c} clients", report) for c, report in sweep],
        tolerance=MODEL_TOLERANCE)
    payload["rate_per_client_qps"] = RATE_PER_CLIENT_QPS
    payload["policy_comparison"] = {
        mode: {"makespan_ns": report.makespan_ns,
               "sustained_qps": report.sustained_qps,
               "p95_latency_ns": report.p95_latency_ns,
               "mean_contention_error": report.mean_contention_error}
        for mode, report in reports.items()}
    payload["aware_vs_naive_makespan"] = advantage
    save_json("ext_serving", payload)

    # -- acceptance -----------------------------------------------------
    # every policy served the whole stream (no shedding: comparable)
    for report in reports.values():
        assert not report.shed
    # ⊙-guided admission beats naive max-parallel by the required edge
    assert advantage >= REQUIRED_ADVANTAGE, (
        f"aware admission only {advantage:.2f}x over max-parallel")
    # and its predictions track the interleaved replay
    assert aware.mean_contention_error < MODEL_TOLERANCE
    assert naive.mean_contention_error < MODEL_TOLERANCE
