"""Extension: the profile-keyed plan cache and prepared statements.

The optimizer makes plan choice deterministic per (profile, logical
tree), which is what makes compiled plans cacheable.  This bench
compiles a three-relation aggregate query through a
:class:`repro.session.Session` and measures

* the **cold compile** (parse + enumeration + whole-plan costing of
  every candidate) against the **cached re-compile** (parse + key
  derivation + cache hit) — the hit must skip enumeration entirely and
  be at least 5x cheaper, and
* that a **profile switch** retires the cached plan (the first compile
  on the new profile misses again).
"""

import time

import pytest

from repro.db import random_permutation
from repro.hardware import origin2000_scaled, tiny_test_machine
from repro.session import Session

N = 4096
GROUPS = N // 2

QUERY = ("aggregate(join(join(filter(orders, even, sel=0.5), customers), "
         f"nations), groups={GROUPS})")


def _session():
    s = Session(origin2000_scaled())
    s.create_table("orders", random_permutation(N, seed=1))
    s.create_table("customers", random_permutation(N, seed=2))
    s.create_table("nations", list(range(N // 8)))
    s.predicate("even", lambda v: v % 2 == 0)
    return s


def _time(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_plan_cache_hit_skips_enumeration(benchmark, save_result):
    s = _session()

    start = time.perf_counter()
    first = s.prepare(QUERY)
    cold_s = time.perf_counter() - start
    assert s.plan_cache.stats() == {"entries": 1, "hits": 0, "misses": 1}

    # cached re-compiles: same parse, but enumeration is skipped
    warm = benchmark.pedantic(lambda: s.prepare(QUERY), rounds=5,
                              iterations=1)
    assert warm.planned is first.planned
    stats = s.plan_cache.stats()
    assert stats["misses"] == 1 and stats["hits"] >= 5

    warm_s = _time(lambda: s.prepare(QUERY))

    lines = [f"== Extension: profile-keyed plan cache (n = {N}, "
             f"{len(first.planned)} candidates) ==",
             f"  chosen: {first.planned.best.signature}",
             f"  cold compile (parse + enumerate + cost) "
             f"{cold_s * 1e3:>10.2f} ms",
             f"  cached compile (parse + cache hit)      "
             f"{warm_s * 1e3:>10.2f} ms",
             f"  speedup                                 "
             f"{cold_s / warm_s:>10.1f} x",
             f"  cache stats: {s.plan_cache.stats()}"]
    text = "\n".join(lines)
    save_result("ext_plan_cache", text)

    # the acceptance bar: a hit is measurably cheaper than a compile
    assert warm_s < cold_s / 5


def test_prepared_reexecution_reuses_plan(save_result):
    s = _session()
    stmt = s.prepare("aggregate(join(orders, customers), groups=%d)" % N)
    out, cold_snap = stmt.execute_measured()
    assert len(out.values) == N
    planned_before = stmt.planned
    out, warm_snap = stmt.execute_measured(cold=False)
    # re-execution reuses the compiled plan (no second compilation)
    assert stmt.planned is planned_before
    assert s.plan_cache.stats()["misses"] == 1
    save_result(
        "ext_plan_cache_reexec",
        "== Prepared re-execution (no recompilation) ==\n"
        f"  cold run  {cold_snap.elapsed_ns / 1e3:>10.1f} us\n"
        f"  warm run  {warm_snap.elapsed_ns / 1e3:>10.1f} us")


def test_profile_switch_retires_cached_plans():
    s = _session()
    s.prepare(QUERY)
    s.set_hierarchy(tiny_test_machine())
    s.prepare(QUERY)
    stats = s.plan_cache.stats()
    assert stats["misses"] == 2 and stats["entries"] == 2
    # returning to the original profile hits the surviving entry
    s.set_hierarchy(origin2000_scaled())
    s.prepare(QUERY)
    assert s.plan_cache.stats()["hits"] == 1
