"""Extension (paper Section 7): the unified model covers disk I/O.

Viewing the buffer pool as a cache for disk pages, the same pattern
descriptions yield I/O-aware cost functions: sequential scans pay
transfer-rate costs, random access pays seeks — the classical I/O cost
model falls out of the memory model with one extra level.
"""

from repro.core import (
    CostModel,
    DataRegion,
    RAcc,
    STrav,
    hash_join_pattern,
    merge_join_pattern,
)
from repro.hardware import disk_extended, modern_x86


def render_disk_comparison() -> str:
    hw = disk_extended(modern_x86(), buffer_pool_bytes=1 << 30)
    model = CostModel(hw)
    n = 50_000_000   # 400 MB tables: half fit the 1 GB pool together
    U = DataRegion("U", n=n, w=8)
    V = DataRegion("V", n=n, w=8)
    W = DataRegion("W", n=n, w=16)

    lines = ["== Extension: I/O-aware costs with the buffer-pool level =="]
    lines.append(f"{'pattern':<40}{'pool misses':>14}{'T_mem [ms]':>12}")
    cases = [
        ("scan(U) — sequential I/O", STrav(U)),
        ("r_acc(1M, U) — random I/O (seeks)", RAcc(U, r=1_000_000)),
        ("merge_join(U,V,W)", merge_join_pattern(U, V, W)),
        ("hash_join(U,V,W)", hash_join_pattern(U, V, W)),
    ]
    for label, pattern in cases:
        est = model.estimate(pattern)
        lines.append(f"{label:<40}{est.misses('BufferPool'):>14.0f}"
                     f"{est.memory_ns / 1e6:>12.1f}")
    return "\n".join(lines)


def test_disk_extension(benchmark, save_result):
    text = benchmark(render_disk_comparison)
    save_result("ext_disk_model", text)
    assert "BufferPool" not in text or True


def test_random_io_dominated_by_seeks(benchmark):
    hw = disk_extended(modern_x86(), buffer_pool_bytes=1 << 30)
    model = CostModel(hw)
    U = DataRegion("U", n=50_000_000, w=8)

    def costs():
        scan = model.estimate(STrav(U))
        seek = model.estimate(RAcc(U, r=1_000_000))
        return scan, seek

    scan, seek = benchmark(costs)
    # 1M random page hits at 5 ms each dwarf a 400 MB sequential scan.
    assert seek.memory_ns > 10 * scan.memory_ns
