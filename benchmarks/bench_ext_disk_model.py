"""Extension (paper Section 7): the unified model covers disk I/O.

Viewing the buffer pool as a cache for disk pages, the same pattern
descriptions yield I/O-aware cost functions: sequential scans pay
transfer-rate costs, random access pays seeks — the classical I/O cost
model falls out of the memory model with one extra level.

Two parts:

* the model-only table at real-disk scale (50M-row tables against a
  1 GB pool; ``--quick`` shrinks the row counts), and
* an *executed* check on the simulation-sized disk profile: the
  buffer-pool simulator replays a scan and a random-access trace and
  must reproduce the model's predicted pool misses — Section 7 as a
  measured result, not a remark.
"""

from repro.core import (
    CostModel,
    DataRegion,
    RAcc,
    STrav,
    hash_join_pattern,
    merge_join_pattern,
)
from repro.hardware import disk_extended, disk_extended_scaled, modern_x86
from repro.simulator import MemorySystem


def render_disk_comparison(n: int) -> str:
    hw = disk_extended(modern_x86(), buffer_pool_bytes=1 << 30)
    model = CostModel(hw)
    U = DataRegion("U", n=n, w=8)
    V = DataRegion("V", n=n, w=8)
    W = DataRegion("W", n=n, w=16)

    lines = ["== Extension: I/O-aware costs with the buffer-pool level =="]
    lines.append(f"{'pattern':<40}{'pool misses':>14}{'T_mem [ms]':>12}")
    cases = [
        ("scan(U) — sequential I/O", STrav(U)),
        (f"r_acc({n // 50}, U) — random I/O (seeks)",
         RAcc(U, r=max(1, n // 50))),
        ("merge_join(U,V,W)", merge_join_pattern(U, V, W)),
        ("hash_join(U,V,W)", hash_join_pattern(U, V, W)),
    ]
    for label, pattern in cases:
        est = model.estimate(pattern)
        lines.append(f"{label:<40}{est.misses('BufferPool'):>14.0f}"
                     f"{est.memory_ns / 1e6:>12.1f}")
    return "\n".join(lines)


def test_disk_extension(benchmark, save_result, quick):
    n = 2_000_000 if quick else 50_000_000
    text = benchmark(render_disk_comparison, n)
    save_result("ext_disk_model", text)
    assert "BufferPool" in repr(
        [l.name for l in disk_extended(modern_x86()).levels])


def test_random_io_dominated_by_seeks(benchmark, quick):
    hw = disk_extended(modern_x86(), buffer_pool_bytes=1 << 30)
    model = CostModel(hw)
    n = 2_000_000 if quick else 50_000_000
    U = DataRegion("U", n=n, w=8)

    def costs():
        scan = model.estimate(STrav(U))
        seek = model.estimate(RAcc(U, r=max(1, n // 50)))
        return scan, seek

    scan, seek = benchmark(costs)
    # random page hits at 5 ms each dwarf the sequential scan
    assert seek.memory_ns > 10 * scan.memory_ns


def test_pool_simulator_reproduces_model(benchmark, quick):
    """Executed Section 7: replay a sequential and a random trace
    through the buffer-pool simulator; measured pool misses must match
    the model's predictions within the established band."""
    import random as _random

    hw = disk_extended_scaled()
    model = CostModel(hw)
    n = 1024 if quick else 4096
    w = 8
    region = DataRegion("R", n=n, w=w)

    def run():
        seq_mem = MemorySystem(hw)
        seq_mem.replay((i * w, w) for i in range(n))
        rng = _random.Random(17)
        hits = 4 * n
        rnd_mem = MemorySystem(hw)
        rnd_mem.replay((rng.randrange(n) * w, w) for _ in range(hits))
        return (seq_mem.snapshot(), rnd_mem.snapshot(), hits)

    seq_snap, rnd_snap, hits = benchmark(run)
    seq_pred = model.estimate(STrav(region)).misses("BufferPool")
    rnd_pred = model.estimate(RAcc(region, r=hits)).misses("BufferPool")
    assert abs(seq_pred - seq_snap.misses("BufferPool")) <= \
        0.35 * seq_snap.misses("BufferPool")
    assert abs(rnd_pred - rnd_snap.misses("BufferPool")) <= \
        0.35 * rnd_snap.misses("BufferPool")
    # and random I/O costs more simulated time than the scan
    assert rnd_snap.elapsed_ns > seq_snap.elapsed_ns
