"""Extension: storage layout (NSM row-store vs DSM column-store).

The paper's used-bytes parameter ``u`` exists to model "an aggregation
or a projection ... accesses only a subset of its input's attributes"
(Section 3.2).  That is precisely the row-store/column-store trade-off
studied by Ailamaki et al. [ADHS01], cited in the paper's introduction:

* NSM (row store): one region of ``w = tuple_width`` bytes per tuple;
  a query touching ``k`` attributes scans it with ``u = 8k``.
* DSM (column store): one region per attribute (``w = 8``); the same
  query scans ``k`` full columns.

The derived cost functions quantify the crossover: DSM wins while few
attributes are touched (NSM drags whole tuples through the cache), NSM
catches up as ``u -> w``.  Model and simulator agree.
"""

from repro.core import CostModel, Conc, DataRegion, STrav
from repro.hardware import origin2000_scaled
from repro.validation import measure_traversal

TUPLE_ATTRS = 8        # an 8-attribute table of 8-byte values
ATTR_BYTES = 8


def nsm_pattern(n: int, attrs_used: int):
    row_region = DataRegion("NSM", n=n, w=TUPLE_ATTRS * ATTR_BYTES)
    return STrav(row_region, u=attrs_used * ATTR_BYTES)


def dsm_pattern(n: int, attrs_used: int):
    columns = [DataRegion(f"col{j}", n=n, w=ATTR_BYTES)
               for j in range(attrs_used)]
    return Conc.of(*[STrav(c) for c in columns]) if attrs_used > 1 \
        else STrav(columns[0])


def measure_nsm(hierarchy, n: int, attrs_used: int) -> float:
    out = measure_traversal(hierarchy, n=n, w=TUPLE_ATTRS * ATTR_BYTES,
                            u=attrs_used * ATTR_BYTES)
    return out["time_us"]


def measure_dsm(hierarchy, n: int, attrs_used: int) -> float:
    total = 0.0
    for _ in range(attrs_used):
        out = measure_traversal(hierarchy, n=n, w=ATTR_BYTES, u=ATTR_BYTES)
        total += out["time_us"]
    return total


def run_sweep(n: int) -> tuple[str, dict]:
    hierarchy = origin2000_scaled()
    model = CostModel(hierarchy)
    lines = ["== Extension: NSM (row store) vs DSM (column store) scan, "
             f"{TUPLE_ATTRS} x {ATTR_BYTES} B attributes, n = {n} ==",
             f"{'attrs used':>11} {'NSM meas':>10} {'NSM pred':>10} "
             f"{'DSM meas':>10} {'DSM pred':>10}   [us]"]
    results = {}
    for k in (1, 2, 4, 8):
        nsm_meas = measure_nsm(hierarchy, n, k)
        dsm_meas = measure_dsm(hierarchy, n, k)
        nsm_pred = model.estimate(nsm_pattern(n, k)).memory_ns / 1e3
        dsm_pred = model.estimate(dsm_pattern(n, k)).memory_ns / 1e3
        results[k] = (nsm_meas, nsm_pred, dsm_meas, dsm_pred)
        lines.append(f"{k:>11} {nsm_meas:>10.0f} {nsm_pred:>10.0f} "
                     f"{dsm_meas:>10.0f} {dsm_pred:>10.0f}")
    return "\n".join(lines), results


def test_ext_storage_layout(benchmark, save_result):
    text, results = benchmark.pedantic(lambda: run_sweep(8192),
                                       rounds=1, iterations=1)
    save_result("ext_storage_layout", text)
    # One attribute: DSM far cheaper, in both series.
    nsm_meas, nsm_pred, dsm_meas, dsm_pred = results[1]
    assert dsm_meas < 0.5 * nsm_meas
    assert dsm_pred < 0.5 * nsm_pred
    # All attributes: same data volume — within ~2x of each other.
    nsm_meas, nsm_pred, dsm_meas, dsm_pred = results[8]
    assert 0.5 < dsm_meas / nsm_meas < 2.0
    assert 0.5 < dsm_pred / nsm_pred < 2.0
