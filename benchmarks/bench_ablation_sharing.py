"""Ablation: footprint-proportional cache sharing (Eq. 5.3).

DESIGN.md calls out the ⊙ cache-division rule as a design choice.  The
cleanest stress for it: two concurrent random-access patterns whose
regions each *almost* fit the cache alone but cannot fit together.  A
no-sharing model (each part evaluated with the full cache) predicts
compulsory misses only; the Eq. 5.3 rule halves each part's cache and
predicts the thrashing the simulator actually measures.
"""

import random

from repro.core import Conc, CostModel, DataRegion, RAcc
from repro.hardware import origin2000_scaled
from repro.simulator import MemorySystem


def _interleaved_random_accesses(hierarchy, region_bytes: int, w: int,
                                 hits_each: int, seed: int = 17):
    """Alternate random hits between two disjoint regions."""
    mem = MemorySystem(hierarchy)
    n = region_bytes // w
    base_a = 1 << 20
    base_b = base_a + region_bytes + (1 << 16)
    rng = random.Random(seed)
    for _ in range(hits_each):
        mem.access(base_a + rng.randrange(n) * w, w)
        mem.access(base_b + rng.randrange(n) * w, w)
    return mem.cache("L2").misses


def test_ablation_cache_sharing(benchmark, save_result):
    hierarchy = origin2000_scaled()
    model = CostModel(hierarchy)
    l2 = hierarchy.level("L2")
    region_bytes = int(l2.capacity * 0.75)   # each fits alone, not together
    w, hits = 16, 20_000

    def run():
        measured = _interleaved_random_accesses(hierarchy, region_bytes, w, hits)
        A = DataRegion("A", n=region_bytes // w, w=w)
        B = DataRegion("B", n=region_bytes // w, w=w)
        pattern = Conc.of(RAcc(A, r=hits), RAcc(B, r=hits))
        shared = model.level_misses(pattern, l2).total
        unshared = sum(
            model.level_misses(RAcc(r, r=hits), l2).total for r in (A, B)
        )
        return measured, shared, unshared

    measured, shared, unshared = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_sharing", "\n".join([
        "== Ablation: Eq. 5.3 footprint cache sharing "
        "(2 concurrent r_acc over 0.75*C2 each, L2) ==",
        f"simulator measured:        {measured:10.0f} misses",
        f"model with sharing:        {shared:10.0f} misses",
        f"model without sharing:     {unshared:10.0f} misses",
    ]))
    # Without sharing both regions "fit": compulsory misses only, a
    # massive under-prediction.  The sharing rule must land far closer.
    assert unshared < 0.3 * measured
    assert abs(shared - measured) < abs(unshared - measured)