"""Quickstart: derive a database operator's memory-access cost.

The paper's workflow in four steps:

1. pick (or calibrate) a hardware profile,
2. describe your data structures as regions,
3. describe the algorithm's data access as a pattern,
4. the cost function falls out automatically.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CostModel,
    DataRegion,
    RAcc,
    RTrav,
    STrav,
    hash_join_pattern,
    merge_join_pattern,
)
from repro.hardware import origin2000


def main() -> None:
    # 1. The machine: the paper's SGI Origin2000 (Table 3).
    machine = origin2000()
    model = CostModel(machine)
    print(f"machine: {machine.name}")
    for row in machine.describe():
        print(f"  {row['name']:<5} C={row['capacity_bytes']:>9} B  "
              f"Z={row['line_size_bytes']:>6} B  "
              f"l_s={row['seq_miss_latency_ns']:>6} ns  "
              f"l_r={row['rand_miss_latency_ns']:>6} ns")

    # 2. Data regions: a million-row table of 8-byte keys, its join
    #    partner, the 16-byte-entry hash table, and the output.
    n = 1_000_000
    U = DataRegion("U", n=n, w=8)
    V = DataRegion("V", n=n, w=8)
    W = DataRegion("W", n=n, w=16)

    # 3+4. Patterns and their automatically derived costs.
    print("\nbasic patterns on U:")
    for pattern in (STrav(U), RTrav(U), RAcc(U, r=n)):
        est = model.estimate(pattern)
        print(f"  {pattern.notation():<24} "
              f"L2 misses {est.misses('L2'):>12,.0f}   "
              f"T_mem {est.memory_ns / 1e6:>8.1f} ms")

    print("\njoin operators (U ⋈ V -> W):")
    for name, pattern in (
        ("merge_join (sorted inputs)", merge_join_pattern(U, V, W)),
        ("hash_join", hash_join_pattern(U, V, W)),
    ):
        est = model.estimate(pattern)
        print(f"  {name:<28} "
              f"L1 {est.misses('L1'):>11,.0f}  "
              f"L2 {est.misses('L2'):>11,.0f}  "
              f"TLB {est.misses('TLB'):>11,.0f}  "
              f"T_mem {est.memory_ns / 1e6:>8.1f} ms")

    est_merge = model.estimate(merge_join_pattern(U, V, W))
    est_hash = model.estimate(hash_join_pattern(U, V, W))
    factor = est_hash.memory_ns / est_merge.memory_ns
    print(f"\nrandom hash-table access makes hash join "
          f"{factor:.1f}x more expensive in memory cost — "
          f"the effect the paper's model quantifies.")


if __name__ == "__main__":
    main()
