"""The session façade: one front door over the optimizer and engine.

Registers tables and a named predicate in a :class:`repro.Session`,
expresses the *same* query three ways — fluent builder, query text, and
explicit logical algebra — and shows that all three compile to the same
chosen physical plan and share one plan-cache entry.  Then demonstrates
prepared statements (compile once, run repeatedly) and the cache's
profile keying: switching the machine profile retires the cached plan,
switching back revives it.

Run:  PYTHONPATH=src python examples/session_api.py
"""

import time

from repro import Session
from repro.db import random_permutation
from repro.hardware import origin2000_scaled, tiny_test_machine
from repro.query import Aggregate, Filter, Join, Relation


def main() -> None:
    s = Session(origin2000_scaled())
    n = 2048

    # -- catalog: named tables + named predicates ----------------------
    orders = s.create_table("orders", random_permutation(n, seed=1))
    customers = s.create_table("customers", random_permutation(n, seed=2))
    even = s.predicate("even", lambda v: v % 2 == 0)
    print(f"session: {s!r}\n")

    # -- one query, three frontends ------------------------------------
    # SELECT key, COUNT(*) FROM orders WHERE even(key) ⋈ customers
    # GROUP BY key
    fluent = (s.table("orders").filter("even", selectivity=0.5)
              .join(s.table("customers"))
              .group_by(groups=n // 2).agg("count"))

    text = s.query(f"aggregate(join(filter(orders, even, sel=0.5), "
                   f"customers), groups={n // 2})")

    algebra = Aggregate(
        Join(Filter(Relation.of_column(orders), even, selectivity=0.5),
             Relation.of_column(customers)),
        groups=n // 2)

    print("canonical key (identical for all three frontends):")
    print(f"  {fluent.canonical_key()}")
    assert (fluent.canonical_key() == text.canonical_key()
            == algebra.canonical_key())

    start = time.perf_counter()
    stmt = fluent.prepare()
    cold_ms = (time.perf_counter() - start) * 1e3
    print(f"\ncold compile: {len(stmt.planned)} candidates in "
          f"{cold_ms:.1f} ms; chosen: {stmt.planned.best.signature}")

    # the other two frontends hit the same cache entry
    start = time.perf_counter()
    for query in (text, algebra):
        assert s.prepare(query).planned is stmt.planned
    hit_ms = (time.perf_counter() - start) * 1e3
    print(f"two cached compiles: {hit_ms:.2f} ms   "
          f"(cache: {s.plan_cache.stats()})")

    print("\nchosen plan:")
    print(stmt.explain_query().to_text())

    # -- prepared execution --------------------------------------------
    measured = stmt.execute_measured()
    print(f"\nprepared execution: {len(measured.values)} groups in "
          f"{measured.measured_ns / 1e3:.1f} us (simulated)")

    # -- profile-keyed invalidation ------------------------------------
    print(f"\nprofile {s.fingerprint} -> switching to "
          f"{tiny_test_machine().name!r}")
    s.set_hierarchy(tiny_test_machine())
    stmt.execute()  # transparently recompiled for the new profile
    print(f"  after switch:  {s.stats()}")
    s.set_hierarchy(origin2000_scaled())
    s.prepare(f"aggregate(join(filter(orders, even, sel=0.5), customers), "
              f"groups={n // 2})")
    print(f"  after return:  {s.stats()}  "
          f"(the original entry survived and hit)")


if __name__ == "__main__":
    main()
