"""Close a model gap online with the drift→response loop.

The static profile carries a pinned weakness: the in-memory hash join
underpredicts permutation joins whose build side outgrows L2
(``tests/test_known_gaps.py`` — ~0.42 relative error at n=1024).  This
example runs the response half of drift monitoring: a
:class:`~repro.calibrator.Recalibrator` watches measured executions,
the join excursion trips its drift monitor, a coordinate-descent
search over per-level latency multipliers republishes the profile
through the session, and the re-measured error lands inside the 0.35
validation band — with a schema-checked sidecar manifest recording
exactly what changed and why.

Run:  python examples/autotune.py
"""

import json
import pathlib
import tempfile

from repro.calibrator import Recalibrator
from repro.db import random_permutation
from repro.hardware import origin2000_scaled
from repro.obs import validate_manifest_file
from repro.session import Session


def main() -> None:
    n = 1024
    session = Session(origin2000_scaled())
    session.create_table("orders", random_permutation(n, seed=1))
    session.create_table("customers", random_permutation(n, seed=2))

    manifest_dir = pathlib.Path(tempfile.mkdtemp(prefix="autotune-"))
    recalibrator = Recalibrator(session, manifest_dir=manifest_dir)
    session.attach_measurement_observer(recalibrator.observe)

    print(f"profile: {session.hierarchy.name} "
          f"({session.fingerprint})")
    print("running measured joins until the drift monitor trips...")
    runs = 0
    while not recalibrator.due():
        result = session.execute_measured("join(orders, customers)",
                                          restore=True)
        runs += 1
        print(f"  run {runs}: error {result.error:.3f} "
              f"(pending drift events: "
              f"{len(recalibrator.pending_events)})")

    recalibration = recalibrator.recalibrate()
    outcome = recalibration.outcome
    print(f"\nrecalibrated: sample MAPE {outcome.error_before:.3f} -> "
          f"{outcome.error_after:.3f} in {outcome.evaluations} "
          f"candidate evaluations ({outcome.passes} passes)")
    print("per-level latency multipliers (seq, rand):")
    for name, seq, rand in outcome.multipliers:
        print(f"  {name:<4} x({seq}, {rand})")
    print(f"profile swap: {recalibration.fingerprint_before} -> "
          f"{recalibration.fingerprint_after} "
          f"({recalibration.retired_plans} cached plans retired)")

    after = session.execute_measured("join(orders, customers)",
                                     restore=True)
    print(f"re-measured join error on the published profile: "
          f"{after.error:.3f} (band: 0.35)")

    problems = validate_manifest_file(recalibration.manifest_path)
    manifest = json.loads(recalibration.manifest_path.read_text())
    print(f"\nsidecar manifest: {recalibration.manifest_path}")
    print(f"  schema problems: {problems or 'none'}")
    print(f"  drift events consumed: {len(manifest['events'])}")
    print(f"  published: {manifest['published']}")


if __name__ == "__main__":
    main()
