"""Vectorized batch execution: same counters, faster wall clock.

The vectorized engine stores column values in contiguous buffers
(`IntVector`), runs chunked operator kernels, and hands the
trace-driven simulator whole access *ranges*
(`MemorySystem.access_range`) instead of one `access()` call per item.
The contract is exact equivalence — identical result columns,
identical simulated counters and time, identical plans and explains —
so everything the cost model predicts is unchanged; only the host-side
wall clock drops.  The speedup is asymmetric in exactly the way the
paper's pattern vocabulary suggests: sequential traversals coalesce
into ranges (a narrow scan exceeds 10x), while random hash probes are
dependent accesses that cannot coalesce (~2x from call fusion alone).

Run:  PYTHONPATH=src python examples/vectorized.py
"""

import time

from repro import Session
from repro.db import Database, random_permutation, scan
from repro.hardware import origin2000_scaled

N = 4096
QUERY = f"aggregate(join(orders, customers), groups={N})"


def make_session(mode: str) -> Session:
    session = Session(origin2000_scaled(), execution=mode)
    session.create_table("orders", random_permutation(N, seed=1))
    session.create_table("customers", random_permutation(N, seed=2))
    return session


def main() -> None:
    # -- a raw kernel: sequential scan of a narrow column ---------------
    walls = {}
    for mode in ("scalar", "vectorized"):
        walls[mode] = float("inf")
        for _ in range(3):  # best-of-3: keep import/JIT warm-up out
            db = Database(origin2000_scaled())
            col = db.create_column("A", random_permutation(16384, seed=1),
                                   width=4)
            with db.execution_scope(mode):
                start = time.perf_counter()
                checksum = scan(db, col)
                walls[mode] = min(walls[mode],
                                  time.perf_counter() - start)
        print(f"scan 16384 x 4 B [{mode:>10}]: "
              f"checksum {checksum:#010x}  "
              f"simulated {db.mem.elapsed_ns / 1e3:8.1f} us  "
              f"wall {walls[mode] * 1e3:6.2f} ms")
    print(f"  -> identical simulated time, "
          f"{walls['scalar'] / walls['vectorized']:.1f}x wall speedup\n")

    # -- a whole query through the session front door -------------------
    # execution mode is planner configuration: it rides in every
    # plan-cache key, so scalar and vectorized sessions never share a
    # compiled plan entry, yet choose byte-identical plans.
    results = {}
    for mode in ("scalar", "vectorized"):
        session = make_session(mode)
        start = time.perf_counter()
        measured = session.execute_measured(QUERY, restore=True)
        wall = time.perf_counter() - start
        results[mode] = measured
        print(f"{QUERY[:42]} [{mode:>10}]: "
              f"simulated {measured.measured_ns / 1e3:8.1f} us  "
              f"wall {wall * 1e3:7.2f} ms")

    scalar, vector = results["scalar"], results["vectorized"]
    assert list(scalar.column.values) == list(vector.column.values)
    assert repr(scalar.counters) == repr(vector.counters)
    assert scalar.explanation.to_text() == vector.explanation.to_text()
    print("  -> result columns, counters, and explains are identical")

    # the default is vectorized; Session(execution="scalar") opts out
    assert make_session("vectorized").config.execution == \
        Session(origin2000_scaled()).config.execution


if __name__ == "__main__":
    main()
