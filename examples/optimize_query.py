"""Cost-driven query optimization, end to end.

Builds a three-relation logical query (orders ⋈ customers ⋈ nations,
grouped by join key), lets the optimizer enumerate join orders and
per-operator implementations, prices every candidate with the derived
pipeline-aware cost functions, then executes the chosen plan — and a
deliberately worse one — on the simulated machine to show the ranking
holds.

Run:  PYTHONPATH=src python examples/optimize_query.py
"""

from repro.core import CostModel
from repro.db import Database, random_permutation
from repro.hardware import origin2000_scaled
from repro.query import (
    Aggregate,
    Join,
    Optimizer,
    PlannerConfig,
    Relation,
)


def main() -> None:
    hierarchy = origin2000_scaled()
    model = CostModel(hierarchy)
    db = Database(hierarchy)
    n = 2048
    orders = db.create_column("orders", random_permutation(n, seed=1), width=8)
    customers = db.create_column("customers", random_permutation(n, seed=2),
                                 width=8)
    nations = db.create_column("nations", list(range(256)), width=8)

    # SELECT key, COUNT(*) FROM orders ⋈ customers ⋈ nations GROUP BY key
    logical = Aggregate(
        Join(Join(Relation.of_column(orders), Relation.of_column(customers)),
             Relation.of_column(nations)),
        groups=256,
    )
    print("logical query:")
    print(logical.describe(1))

    optimizer = Optimizer(hierarchy,
                          PlannerConfig(include_nested_loop=True))
    planned = optimizer.optimize(logical)
    print()
    print(planned.summary(6))
    print(f"\npredicted spread: worst / best = "
          f"{planned.worst.total_ns / planned.best.total_ns:.1f}x")

    print("\nchosen plan:")
    print(planned.best.plan.explain(model))

    base_values = {col: list(col.values)
                   for col in (orders, customers, nations)}

    def run(candidate):
        out, snapshot = db.execute_measured(candidate.plan)
        for col, values in base_values.items():
            col.values = list(values)
        return snapshot.elapsed_ns, len(out.values)

    mid = planned.candidates[len(planned) // 2]
    print("\nexecuting on the simulator:")
    for name, cand in (("chosen", planned.best), ("mid-ranked", mid)):
        measured, groups = run(cand)
        print(f"  {name:<11} predicted {cand.total_ns / 1e3:>9.1f} us   "
              f"measured T_mem {measured / 1e3:>9.1f} us   "
              f"({groups} groups)  {cand.signature}")

    print("\nthe enumerator prices every join order and implementation "
          "before running anything —\nexactly the optimizer loop the "
          "paper builds its cost models for.")


if __name__ == "__main__":
    main()
