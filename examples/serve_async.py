"""Live multi-tenant serving: the asyncio query server end to end.

Starts a :class:`repro.server.QueryServer`, registers two tenants —
each with its own catalog, plan cache, and quota — and drives a seeded
open-loop Poisson stream through ⊙-guided admission control while a
sliding-window SLO tracker watches the tail.  Then demonstrates the
isolation bargain directly: one tenant recalibrates its machine
profile mid-flight, and only *its* cached plans retire — the other
tenant's prepared statements keep hitting.

Everything runs on the simulated clock (latencies are simulated
nanoseconds through the cache-hierarchy simulator), so the run is
deterministic: same seeds, same report, every time.

Run:  PYTHONPATH=src python examples/serve_async.py
"""

import asyncio

from repro import QueryServer
from repro.hardware import modern_x86
from repro.server import PoissonArrivals, SloTarget, TenantQuota
from repro.service import WorkloadGenerator


async def main() -> None:
    server = QueryServer(
        mode="interference-aware", max_workers=4, max_batch=4,
        slo=SloTarget(p95_ns=5e6),          # hold p95 under 5 ms
        tenant_slos={"acme": SloTarget(p99_ns=8e6)})

    # -- two tenants: own catalog, own plan cache, own quota ------------
    for name, quota in (("acme", TenantQuota(max_queued=8)),
                        ("globex", TenantQuota(max_queued=16))):
        tenant = server.add_tenant(name, quota)
        gen = WorkloadGenerator(tenant.session, scale=256, seed=7)
        queries = gen.generate(32, clients=4)
    stream = PoissonArrivals(rate_qps=10_000.0, seed=3).stamp(queries)
    print(f"serving {len(stream)} queries over 2 tenants "
          f"(Poisson, 10k q/s offered)\n")

    # -- serve the stream (clients dealt round-robin to tenants) --------
    async with server:
        responses = await server.serve(stream)
        await server.drain()

        report = server.report()
        print(report.render())

        # -- mid-flight recalibration: isolation in action --------------
        acme, globex = server.tenant("acme"), server.tenant("globex")
        text = stream[0].text
        for tenant in (acme, globex):
            tenant.session.compile(text)              # warm both caches
        acme.set_hierarchy(modern_x86())              # acme recalibrates
        globex.session.compile(text)
        acme.session.compile(text)
        print(f"\nafter acme's profile switch:")
        print(f"  globex compile: "
              f"{'HIT' if globex.session.last_compile_cached else 'miss'}"
              f"  (untouched by acme)")
        print(f"  acme   compile: "
              f"{'HIT' if acme.session.last_compile_cached else 'miss'}"
              f"  (its own entries retired)")

        # -- and the server keeps serving on the new profile ------------
        late = await server.submit("acme", text)
        print(f"\npost-switch query: outcome={late.outcome}, "
              f"rows={late.rows}, "
              f"latency {late.latency_ns / 1e6:.2f} ms (simulated)")

    done = [r for r in responses if r.ok]
    shed = [r for r in responses if not r.ok]
    co_run = [b for b in report.batches if b.size > 1]
    print(f"\n{len(done)} served / {len(shed)} shed; "
          f"{len(co_run)} co-run batches; "
          f"⊙ error vs interleaved replay "
          f"{report.mean_contention_error:.1%}")
    if report.breaches:
        worst = max(report.breaches, key=lambda b: b.value / b.limit)
        print(f"SLO breaches: {len(report.breaches)} "
              f"(worst: {worst.scope} {worst.metric} "
              f"{worst.value / 1e6:.2f} ms vs {worst.limit / 1e6:.2f} ms)")
    else:
        print("SLO: no breaches")


if __name__ == "__main__":
    asyncio.run(main())
