"""Model-guided partition tuning, validated against the simulator.

Partitioned hash join needs a partition count m: too few and the
per-partition hash tables thrash the caches; too many and partitioning
itself thrashes (Figure 7d).  This example scores the full pipeline
(partition both inputs ⊕ join all pairs) for a range of m with the cost
model and *executes* the same pipeline on the simulated machine.

Both series show the same story — cost falls steeply until the
per-partition hash tables are cache-resident, then flattens.  The model
is deliberately conservative about very large m (its Eq. 4.9 thrashing
term grows earlier than the simulator's), so it picks the smallest m in
the flat region; every m at or above its pick is within a small factor
of the measured optimum, while the m it rejects (1-4) are 2-3x worse.

Run:  python examples/partition_tuning.py
"""

from repro.core import (
    CostModel,
    DataRegion,
    partition_pattern,
    partitioned_hash_join_pattern,
)
from repro.db import Database, join_partitions, partition, random_permutation
from repro.hardware import origin2000_scaled


def predicted_pipeline_us(model, U, V, m: int) -> float:
    PU = DataRegion("P(U)", n=U.n, w=U.w)
    PV = DataRegion("P(V)", n=V.n, w=V.w)
    W_parts = tuple(DataRegion(f"W[{j}]", max(1, U.n // m), 16)
                    for j in range(m))
    pattern = (partition_pattern(U, PU, m)
               + partition_pattern(V, PV, m)
               + partitioned_hash_join_pattern(PU.split(m), PV.split(m),
                                               W_parts))
    return model.estimate(pattern).memory_ns / 1e3


def measured_pipeline_us(hierarchy, n: int, m: int) -> float:
    db = Database(hierarchy)
    outer = db.create_column("U", random_permutation(n, seed=1), width=8)
    inner = db.create_column("V", random_permutation(n, seed=1), width=8)
    db.reset()
    with db.measure() as res:
        outer_parts = partition(db, outer, m)
        inner_parts = partition(db, inner, m)
        join_partitions(db, outer_parts, inner_parts)
    return res[0].elapsed_ns / 1e3


def main() -> None:
    hierarchy = origin2000_scaled()
    model = CostModel(hierarchy)
    n = 16_384  # 128 kB per operand on the scaled machine
    U = DataRegion("U", n=n, w=8)
    V = DataRegion("V", n=n, w=8)

    print(f"partitioned hash join of two {8 * n // 1024} kB operands "
          f"on {hierarchy.name}\n")
    print(f"{'m':>6} {'predicted [us]':>15} {'measured [us]':>15}")

    candidates = (1, 2, 4, 8, 16, 32, 64, 128)
    best_m, best_cost = 1, float("inf")
    for m in candidates:
        pred = predicted_pipeline_us(model, U, V, m)
        meas = measured_pipeline_us(hierarchy, n, m)
        marker = ""
        if pred < best_cost:
            best_m, best_cost = m, pred
            marker = "  <- model's pick so far"
        print(f"{m:>6} {pred:>15.0f} {meas:>15.0f}{marker}")

    print(f"\nmodel recommends m = {best_m}; "
          f"per-partition hash table ~{2 * 16 * n / best_m / 1024:.0f} kB "
          f"(L2 is {hierarchy.level('L2').capacity // 1024} kB).")


if __name__ == "__main__":
    main()
