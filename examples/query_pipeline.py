"""Whole-query costing: select -> join -> aggregate.

Builds a physical plan, prints the per-operator and whole-plan cost the
model derives from the ⊕-combined operator patterns, executes the same
plan on the simulated machine, and compares.

Run:  python examples/query_pipeline.py
"""

from repro.core import CostModel
from repro.db import Database, random_permutation
from repro.hardware import origin2000_scaled
from repro.query import (
    Aggregate,
    AggregateNode,
    Filter,
    HashJoinNode,
    Join,
    MergeJoinNode,
    Optimizer,
    QueryPlan,
    Relation,
    ScanNode,
    SelectNode,
    SortNode,
)


def main() -> None:
    hierarchy = origin2000_scaled()
    model = CostModel(hierarchy)
    db = Database(hierarchy)
    n = 8192
    orders = db.create_column("orders", random_permutation(n, seed=1), width=8)
    customers = db.create_column("customers", random_permutation(n, seed=2),
                                 width=8)

    # SELECT cust_bucket, COUNT(*) FROM orders JOIN customers ...
    # WHERE orders.key % 2 = 0 GROUP BY cust_bucket
    hash_plan = QueryPlan(AggregateNode(
        HashJoinNode(
            SelectNode(ScanNode(orders), lambda v: v % 2 == 0,
                       selectivity=0.5),
            ScanNode(customers),
        ),
        groups=64,
        key_of=lambda pair: pair[0] % 64,
    ))

    sort_plan = QueryPlan(AggregateNode(
        MergeJoinNode(
            SortNode(SelectNode(ScanNode(orders), lambda v: v % 2 == 0,
                                selectivity=0.5)),
            SortNode(ScanNode(customers)),
        ),
        groups=64,
        key_of=lambda pair: pair[0] % 64,
    ))

    for name, plan in (("hash-join plan", hash_plan),
                       ("sort-merge plan", sort_plan)):
        print(f"--- {name} ---")
        print(plan.explain(model))
        db.reset()
        with db.measure() as res:
            out = plan.execute(db)
        print(f"  executed on simulator          "
              f"T_mem {res[0].elapsed_ns / 1e3:>10.1f} us "
              f"({len(out.values)} groups)")
        print()

    print("the model prices both plans before running anything — "
          "exactly what the paper builds cost models for.")

    # What would the optimizer have chosen?  Grouping by join key
    # (key_of=None) keeps the query invariant under join reordering, so
    # the enumerator is free to pick sides and implementations.  (With
    # the positional key_of above it would pin the hand-built shape —
    # see examples/optimize_query.py for the full workflow.)
    logical = Aggregate(
        Join(Filter(Relation.of_column(orders), lambda v: v % 2 == 0,
                    selectivity=0.5),
             Relation.of_column(customers)),
        groups=n // 2,
    )
    planned = Optimizer(hierarchy).optimize(logical)
    print(f"\noptimizer's choice among {len(planned)} candidates: "
          f"{planned.best.signature} "
          f"({planned.best.total_ns / 1e3:.1f} us predicted)")


if __name__ == "__main__":
    main()
