"""Run the Calibrator against simulated machines.

The paper's cost model is instantiated per machine by a calibration tool
that measures capacities, line sizes and latencies from timing alone
(Section 2.3, Table 3).  This example calibrates two simulated machines
and prints recovered vs configured parameters.

Run:  python examples/calibrate_machine.py
"""

from repro.calibrator import calibrate
from repro.hardware import origin2000_scaled, tiny_test_machine


def report(hierarchy) -> None:
    print(f"calibrating: {hierarchy.name}")
    result = calibrate(
        hierarchy,
        min_size=64 if hierarchy.level("L1").capacity < 1024 else 512,
        max_size=8 * max(l.capacity for l in hierarchy.all_levels),
        max_line=max(l.line_size for l in hierarchy.all_levels) * 2,
    )
    configured = sorted(hierarchy.all_levels, key=lambda l: l.capacity)
    print(f"  {'level':<6} {'C found/true':>22} {'Z found/true':>16} "
          f"{'l_s found/true':>18} {'l_r found/true':>18}")
    for found, actual in zip(result.levels, configured):
        print(f"  {actual.name:<6} "
              f"{found.capacity:>10} /{actual.capacity:>10} "
              f"{found.line_size:>7} /{actual.line_size:>7} "
              f"{found.seq_miss_latency_ns:>8.1f} /{actual.seq_miss_latency_ns:>8.1f} "
              f"{found.rand_miss_latency_ns:>8.1f} /{actual.rand_miss_latency_ns:>8.1f}")
    print()


def main() -> None:
    report(origin2000_scaled())
    report(tiny_test_machine())


if __name__ == "__main__":
    main()
