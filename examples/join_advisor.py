"""Cost-based join selection — the optimizer scenario of the paper's
introduction.

A query optimizer must pick a join implementation per operator.  The
advisor scores merge join (including the sorts), hash join and
partitioned hash join with the derived cost functions and picks the
cheapest; the sweep shows where the choice flips.

Run:  python examples/join_advisor.py
"""

from repro.core import DataRegion
from repro.hardware import origin2000
from repro.optimizer import JoinAdvisor


def main() -> None:
    machine = origin2000()
    advisor = JoinAdvisor(machine, inputs_sorted=False)

    print(f"join selection on {machine.name} (unsorted 8-byte keys)\n")
    header = (f"{'rows':>12} {'hash table':>11} | "
              f"{'merge+sort':>11} {'hash':>11} {'part-hash':>11} | choice")
    print(header)
    print("-" * len(header))

    for n in (10_000, 50_000, 200_000, 1_000_000, 4_000_000, 16_000_000):
        U = DataRegion("U", n=n, w=8)
        V = DataRegion("V", n=n, w=8)
        W = DataRegion("W", n=n, w=16)
        ranked = advisor.rank(U, V, W)
        by_name = {c.algorithm: c for c in ranked}
        h_mb = 16 * n / (1 << 20)
        print(f"{n:>12} {h_mb:>9.1f}MB | "
              f"{by_name['merge_join'].total_ns / 1e6:>9.1f}ms "
              f"{by_name['hash_join'].total_ns / 1e6:>9.1f}ms "
              f"{by_name['partitioned_hash_join'].total_ns / 1e6:>9.1f}ms | "
              f"{ranked[0].algorithm}")

    V = DataRegion("V", n=16_000_000, w=8)
    m = advisor.recommend_partitions(V)
    per_partition_kb = 16 * V.n / m / 1024
    print(f"\nfor 16M rows the advisor recommends m = {m} partitions "
          f"(~{per_partition_kb:.0f} kB hash table each, cache-resident).")


if __name__ == "__main__":
    main()
