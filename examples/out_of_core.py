"""Out-of-core execution end to end (paper Section 7, executed).

`disk_spill_planning.py` *prices* out-of-core plans with the unified
model; this walkthrough actually **runs** them.  A session on the
simulation-sized disk-extended profile plans under an explicit
working-memory budget: operators whose sort areas / hash tables /
group tables exceed it compile to their spilling variants (external
merge sort, grace hash join, spilling aggregate).  The chosen plan's
predicted cost — down to buffer-pool misses — is then checked against
the trace-driven buffer-pool simulator, and the pool's dirty-page
write-backs are reported.

Run:  PYTHONPATH=src python examples/out_of_core.py
"""

from repro import Session
from repro.db import random_permutation
from repro.hardware import disk_extended_scaled

QUERY = "aggregate(join(orders, customers), groups=1024)"


def main() -> None:
    hierarchy = disk_extended_scaled()
    pool = hierarchy.buffer_pool
    budget = 1536
    session = Session(hierarchy=hierarchy, memory_budget=budget)
    session.create_table("orders", random_permutation(1024, seed=1))
    session.create_table("customers", random_permutation(1024, seed=2))

    print(f"machine: {hierarchy.name}")
    print(f"  buffer pool: {pool.capacity} B in {pool.num_lines} pages of "
          f"{pool.line_size} B; seek/transfer latency "
          f"{pool.rand_miss_latency_ns:.0f}/{pool.seq_miss_latency_ns:.0f} ns")
    print(f"  working-memory budget: {budget} B "
          f"(tables are 8 KB each — twice the pool)\n")

    print(f"query: {QUERY}")
    print(session.explain_query(QUERY).to_text())

    measured = session.execute_measured(QUERY, restore=True)
    result, counters = measured.column, measured.counters
    counts = dict(result.values)
    assert counts == {key: 1 for key in range(1024)}
    print(f"\nexecuted: {result.n} groups, all counts correct")

    plan = session.compile(QUERY).plan
    estimate = plan.estimate(session.model, cpu_ns=0.0)
    predicted = estimate.misses("BufferPool")
    measured = counters.misses("BufferPool")
    print(f"pool misses   predicted {predicted:7.0f}   "
          f"measured {measured:7d}   "
          f"({predicted / measured:.2f}x)")
    print(f"memory time   predicted {estimate.memory_ns / 1e3:7.0f} us  "
          f"measured {counters.elapsed_ns / 1e3:7.0f} us  "
          f"({estimate.memory_ns / counters.elapsed_ns:.2f}x)")
    print(f"dirty pages written back during the run: "
          f"{session.db.mem.pool.write_backs}")

    print("\nthe same query without a budget compiles the in-memory plan:")
    roomy = Session(db=session.db)
    roomy._sorted.update(session._sorted)
    print(f"  with budget:    {session.compile(QUERY).best.signature}")
    print(f"  without budget: {roomy.compile(QUERY).best.signature}")


if __name__ == "__main__":
    main()
