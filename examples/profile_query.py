"""Per-operator predicted-vs-measured profiling of one query.

The paper validates every cost *formula* against hardware counters, not
just whole-plan totals.  The typed observability API makes every query
that experiment: ``Session.execute_measured`` returns a
:class:`~repro.query.MeasuredResult` whose per-operator attribution
pairs each operator's simulator counter delta (exclusive — children
subtracted, so the rows sum to the whole plan) with the model's
state-threaded prediction for exactly that operator.

This example profiles the same join+aggregate query twice: in memory on
the scaled Origin2000, and spilling on the disk-extended profile under
a 1.5 KB working-memory budget (external sorts and a spilling aggregate
appear, with the buffer pool dominating the bill).

Run with:  PYTHONPATH=src python examples/profile_query.py
"""

import json

from repro import Session
from repro.db import random_permutation
from repro.hardware import disk_extended_scaled, origin2000_scaled

QUERY = ("aggregate(join(filter(orders, even, sel=0.5), customers), "
         "groups=512)")


def make_session(hierarchy, memory_budget=None) -> Session:
    s = Session(hierarchy=hierarchy, memory_budget=memory_budget)
    s.create_table("orders", random_permutation(1024, seed=1))
    s.create_table("customers", random_permutation(1024, seed=2))
    s.predicate("even", lambda v: v % 2 == 0)
    return s


def profile(title: str, session: Session) -> None:
    print(f"== {title} ==")
    # the typed explanation: plan tree + predictions (to_text() renders
    # the classic breakdown; to_json() round-trips the whole tree)
    explanation = session.explain_query(QUERY)
    print(f"chosen plan: {explanation.signature}")
    print(explanation.to_text())
    print()
    # measured execution: whole-plan counters + per-operator attribution
    result = session.execute_measured(QUERY, restore=True)
    print("per-operator model vs simulator (memory time):")
    print(result.attribution_table())
    print()
    # per-level, whole plan: the paper's predicted-vs-measured pairs
    print(f"{'level':<12}{'pred misses':>12}{'meas misses':>12}")
    for level in result.explanation.levels:
        measured = result.counters.misses(level.name)
        print(f"{level.name:<12}{level.total:>12.0f}{measured:>12}")
    print()


def main() -> None:
    profile("in-memory (scaled Origin2000)",
            make_session(origin2000_scaled()))
    profile("out-of-core (disk-extended, 1.5 KB budget)",
            make_session(disk_extended_scaled(), memory_budget=1536))

    # everything above is machine-readable: the same numbers serialize
    # through one JSON path (benchmarks persist these as BENCH_*.json)
    session = make_session(origin2000_scaled())
    result = session.execute_measured(QUERY, restore=True)
    payload = result.to_json()
    print("result.to_json() top-level keys:", sorted(payload))
    print("serialized size:", len(json.dumps(payload)), "bytes")
    print("session stats:", session.stats())


if __name__ == "__main__":
    main()
