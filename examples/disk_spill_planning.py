"""I/O-aware cost planning with the unified hardware model.

The paper's Section 7 unification claim: main memory (the DBMS buffer
pool) is just one more cache level in front of disk, so the same pattern
language prices disk I/O.  This example sizes an out-of-core join: it
compares a sort-merge plan (sequential I/O) against a plain hash join
(random page access — seek-dominated) as the table outgrows the buffer
pool, reproducing the classic rule that random I/O is poison.

Run:  python examples/disk_spill_planning.py
"""

from repro.core import (
    CostModel,
    DataRegion,
    hash_join_pattern,
    merge_join_pattern,
    quick_sort_pattern,
)
from repro.hardware import disk_extended, modern_x86


def main() -> None:
    pool_gb = 1
    machine = disk_extended(modern_x86(), buffer_pool_bytes=pool_gb << 30)
    model = CostModel(machine)
    l1_capacity = min(l.capacity for l in machine.all_levels)
    print(f"machine: {machine.name} (buffer pool {pool_gb} GB, "
          f"8 kB pages, 5 ms seeks)\n")
    print(f"{'rows':>14} {'table':>9} | {'sort-merge':>12} "
          f"{'hash join':>12} | winner")

    for n in (10**7, 5 * 10**7, 10**8, 2 * 10**8):
        U = DataRegion("U", n=n, w=8)
        V = DataRegion("V", n=n, w=8)
        W = DataRegion("W", n=n, w=16)
        sort_merge = (quick_sort_pattern(U, stop_bytes=l1_capacity)
                      + quick_sort_pattern(V, stop_bytes=l1_capacity)
                      + merge_join_pattern(U, V, W))
        hash_plan = hash_join_pattern(U, V, W)
        t_sm = model.estimate(sort_merge).memory_ns / 1e9
        t_h = model.estimate(hash_plan).memory_ns / 1e9
        winner = "sort-merge" if t_sm < t_h else "hash join"
        size_gb = 8 * n / (1 << 30)
        print(f"{n:>14,} {size_gb:>7.1f}GB | {t_sm:>11.1f}s {t_h:>11.1f}s "
              f"| {winner}")

    print("\nonce the hash table spills past the buffer pool, each probe "
          "is a disk seek;\nthe sequential sort-merge plan wins exactly as "
          "classical I/O cost models say —\nderived here from the same "
          "pattern language as the cache-level costs.")


if __name__ == "__main__":
    main()
