"""Dual-clock tracing, live metrics, and drift monitoring in one run.

Attaches a :class:`repro.obs.Tracer` to the asyncio query server and
serves a seeded two-tenant Poisson stream, then a fifo-serial run of
the pinned small-n permutation join whose per-operator attribution
feeds the drift monitor.  Three artifacts land in ``trace_out/``:

* ``trace.json`` — Chrome ``trace_event`` export with one track per
  tenant per clock (simulated pid 1, wall pid 2).  Open it at
  https://ui.perfetto.dev (or chrome://tracing) to see queue / compile
  / execute / per-operator spans laid out on both clocks;
* ``metrics.prom`` — Prometheus text exposition of the live registry:
  query outcomes, latency histograms, admission decisions, plan-cache
  hits/misses/retirements, per-level simulator miss counters;
* ``events.jsonl`` — append-only structured log of every span and
  drift event, one JSON object per line.

The simulated side of all three is deterministic: same seeds, same
bytes, every run.  Only compile wall times (real thread time) vary.

Run:  PYTHONPATH=src python examples/trace_server.py
"""

import asyncio
import pathlib

from repro.db import random_permutation
from repro.obs import Tracer, validate_chrome_trace
from repro.server import PoissonArrivals, QueryServer, TenantQuota
from repro.service import WorkloadGenerator

OUT_DIR = pathlib.Path(__file__).parent / "trace_out"


async def serve_traced(tracer: Tracer) -> None:
    """A contention-heavy two-tenant stream through the traced server."""
    server = QueryServer(mode="interference-aware", max_workers=4,
                         max_batch=4, max_queue=512, tracer=tracer)
    for name in ("acme", "globex"):
        tenant = server.add_tenant(name, TenantQuota(max_queued=256))
        gen = WorkloadGenerator.contention_heavy(
            session=tenant.session, seed=7, scale=256)
        queries = gen.generate(16, clients=4)
    stream = PoissonArrivals(rate_qps=16_000.0, seed=3).stamp(queries)
    async with server:
        responses = await server.serve(stream)
        await server.drain()
    ok = sum(1 for r in responses if r.ok)
    print(f"served {len(responses)} queries over 2 tenants "
          f"({ok} ok, {len(responses) - ok} shed)")


async def provoke_drift(tracer: Tracer) -> None:
    """Fifo-serial singleton batches run the typed measured path, so
    every operator's predicted-vs-measured error reaches the drift
    monitor — including the pinned small-n permutation-join overshoot
    (the model underpredicts hash_join by ~0.42 at n = 1024)."""
    server = QueryServer(mode="fifo-serial", max_workers=2, tracer=tracer)
    tenant = server.add_tenant("acme")
    tenant.session.create_table("orders", random_permutation(1024, seed=1))
    tenant.session.create_table("customers",
                                random_permutation(1024, seed=2))
    async with server:
        await asyncio.gather(*[
            server.submit_nowait("acme", "join(orders, customers)",
                                 kind="join", arrival_ns=float(i) * 1e5)
            for i in range(4)])
        await server.drain()


def main() -> None:
    tracer = Tracer()
    asyncio.run(serve_traced(tracer))
    # A separate tracer keeps the drift series clean: EWMA state is
    # keyed by (operator, profile fingerprint), and the serving run's
    # well-predicted joins would otherwise dilute the small-n overshoot.
    drift_tracer = Tracer()
    asyncio.run(provoke_drift(drift_tracer))

    # -- artifacts ------------------------------------------------------
    OUT_DIR.mkdir(exist_ok=True)
    trace_path = tracer.write_chrome(OUT_DIR / "trace.json")
    assert validate_chrome_trace(tracer.chrome_trace()) == []
    metrics_path = OUT_DIR / "metrics.prom"
    metrics_path.write_text(tracer.metrics.expose())
    events_path = tracer.write_events(OUT_DIR / "events.jsonl")

    print(f"\n{len(tracer.spans)} spans recorded "
          f"({len(tracer.metrics)} metric families)")
    print(f"  {trace_path}  <- load into https://ui.perfetto.dev")
    print(f"  {metrics_path}")
    print(f"  {events_path}")

    # -- a taste of the registry ----------------------------------------
    print("\nmetrics exposition (plan cache + admission excerpt):")
    for line in tracer.metrics.expose().splitlines():
        if line.startswith(("plan_cache", "server_admission")):
            print(f"  {line}")

    # -- drift ----------------------------------------------------------
    print("\ndrift events (fifo-serial permutation-join run):")
    if not drift_tracer.drift.events:
        print("  (none)")
    for event in drift_tracer.drift.events:
        print(f"  {event.operator}: EWMA {event.ewma:+.3f} left the "
              f"±{event.band:.2f} band after {event.count} samples "
              f"(series {event.operator}@{event.fingerprint[:12]}…)")


if __name__ == "__main__":
    main()
