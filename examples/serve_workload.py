"""Serving a concurrent multi-client workload with ⊙-guided scheduling.

Builds a shared catalog, generates a deterministic join-dominated query
stream from four clients, and runs it through the
:mod:`repro.service` executor under three policies:

* **fifo-serial** — one query at a time (no interference, no overlap),
* **max-parallel** — pack every batch to the concurrency cap, blind to
  contention,
* **interference-aware** — compose candidate co-runners' whole-plan
  patterns under the paper's ⊙ operator (Section 5.2) and admit a
  co-runner only while the predicted batch makespan stays below
  queueing it.

Prints each policy's simulated makespan/latency/throughput report and
a per-batch look at how the ⊙ prediction tracks the interleaved-replay
measurement, plus a direct co-run prediction for two thrashing joins.

Run:  PYTHONPATH=src python examples/serve_workload.py
"""

from repro import Session
from repro.service import (
    FifoSerialPolicy,
    InterferenceAwarePolicy,
    InterferenceModel,
    MaxParallelPolicy,
    ServiceExecutor,
    WorkloadGenerator,
)


def main() -> None:
    session = Session()  # scaled Origin2000: L2 64 KB, 8-entry TLB
    generator = WorkloadGenerator.contention_heavy(session=session,
                                                   seed=7, scale=512)
    workload = generator.generate(16, clients=4)
    kinds = sorted({q.kind for q in workload})
    print(f"workload: {len(workload)} queries from 4 clients "
          f"(kinds: {', '.join(kinds)})\n")

    # -- what ⊙ says about co-running two hash joins --------------------
    interference = InterferenceModel(session.hierarchy)
    joins = [session.compile("join(orders, customers)").plan,
             session.compile("join(customers, parts)").plan]
    prediction = interference.co_run(joins)
    print("co-running two hash joins (hash tables ~16 KB each, shared "
          "64 KB L2 + 8-entry TLB):")
    print(f"  serial memory time   {prediction.serial_memory_ns / 1e3:8.1f} us")
    print(f"  ⊙ co-run memory time {prediction.batch_memory_ns / 1e3:8.1f} us"
          f"  -> predicted slowdown {prediction.slowdown:.2f}x\n")

    # -- the three policies on the same stream --------------------------
    policies = (
        FifoSerialPolicy(),
        MaxParallelPolicy(max_batch=4),
        InterferenceAwarePolicy(interference, max_batch=4),
    )
    for policy in policies:
        report = ServiceExecutor(session, policy).run(workload)
        print(report.render())
        print()

    stats = session.plan_cache.stats()
    print(f"shared plan cache after serving: {stats['entries']} entries, "
          f"{stats['hits']} hits / {stats['misses']} misses "
          "(clients share compiled plans)")


if __name__ == "__main__":
    main()
