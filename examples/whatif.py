"""Answer a capacity question on machines that don't exist.

The calibrated cost model prices an access pattern on any
:class:`~repro.hardware.MemoryHierarchy` it is handed — so "what
machine do I need for this mix?" never requires building (or even
simulating) the candidates.  This example sweeps memory speed × core
count over the contention-heavy mix at 8 clients with pure model
arithmetic, asks for the smallest configuration that beats the
baseline's p95 by 10%, verifies the recommendation with one
trace-driven simulator run, and closes the loop by installing the
recommendation's derived admission slack on a live server planning
from its own recorded mix.

Run:  python examples/whatif.py
"""

import asyncio

from repro.obs import validate_whatif_report
from repro.whatif import GeneratedWorkload, ProfileSpace, WhatIfSweep


def main() -> None:
    # -- declare the question's knobs ----------------------------------
    space = ProfileSpace(
        {"mem_ns": [200.0, 400.0, 800.0],   # random memory latency
         "cores": [2, 4]},                  # ⊙ co-run batch cap
        name="mem-speed × cores")
    workload = GeneratedWorkload(seed=7, scale=512,
                                 mix="contention-heavy",
                                 n_queries=24, clients=8)

    # -- price everything, nothing executes ----------------------------
    sweep = WhatIfSweep(space, workload)
    baseline = sweep.price(space.baseline())
    target = 0.90 * baseline.p95_ns
    print(f"question: smallest config with p95 ≤ {target / 1e6:.2f} ms "
          f"(90% of baseline) at 8 clients, contention-heavy mix\n")
    report = sweep.run(slo_p95_ns=target, spot_check="frontier")
    print(report.render())

    # -- the answer, simulator-verified --------------------------------
    rec = report.recommendation
    assert rec is not None
    chosen = report.outcome(rec.label)
    spot = chosen.spot_check
    print(f"\nrecommended '{rec.label}' "
          f"(fingerprint {rec.fingerprint}):")
    print(f"  predicted p95 {rec.predicted_p95_ns / 1e6:.2f} ms, "
          f"simulator measured {spot.measured_p95_ns / 1e6:.2f} ms "
          f"({spot.p95_error:.1%} off — band is 35%)")
    assert validate_whatif_report(report.to_json()) == []
    print("  report JSON is schema-valid and byte-deterministic")

    # -- a live server planning from its own recorded mix --------------
    from repro.server import PoissonArrivals, QueryServer, TenantQuota
    from repro.service import WorkloadGenerator

    async def serve():
        server = QueryServer(mode="interference-aware", max_workers=4,
                             max_batch=4, max_queue=256)
        tenant = server.add_tenant("acme", TenantQuota(max_queued=128))
        gen = WorkloadGenerator.contention_heavy(session=tenant.session,
                                                 seed=7, scale=256)
        stream = PoissonArrivals(8000.0, seed=3).stamp(
            gen.generate(12, clients=4))
        async with server:
            await server.serve(stream)
            await server.drain()
        return server

    server = asyncio.run(serve())
    print(f"\nserver served {len(server.report().completed)} queries; "
          f"planning capacity from that recorded mix...")
    plan = server.capacity_plan(space, clients=4,
                                slo_p95_ns=2 * baseline.p95_ns,
                                apply_slack=True)
    live = plan.recommendation
    print(f"  capacity plan recommends '{live.label}', admission slack "
          f"{live.admission_slack} installed "
          f"(server slack is now {server.admission.slack})")


if __name__ == "__main__":
    main()
