"""Allocator, columns, context and the unary operators."""

import pytest

from repro.db import (
    Allocator,
    Column,
    Database,
    Table,
    project,
    scan,
    select,
    uniform_ints,
)


class TestAllocator:
    def test_monotonic(self):
        alloc = Allocator()
        a = alloc.allocate(100)
        b = alloc.allocate(100)
        assert b >= a + 100

    def test_alignment(self):
        alloc = Allocator(base=1)
        addr = alloc.allocate(10, alignment=64)
        assert addr % 64 == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Allocator().allocate(0)

    def test_bytes_allocated(self):
        alloc = Allocator()
        alloc.allocate(100)
        alloc.allocate(28)
        assert alloc.bytes_allocated == 128


class TestColumn:
    def test_item_address(self):
        col = Column("c", width=8, address=1000, values=[1, 2, 3])
        assert col.item_address(2) == 1016

    def test_region_matches_geometry(self):
        col = Column("c", width=8, address=0, values=[0] * 10)
        region = col.region()
        assert region.n == 10 and region.w == 8

    def test_read_reports_access(self, tiny):
        db = Database(tiny)
        col = db.create_column("c", [1, 2, 3], width=8)
        before = db.mem.accesses
        assert col.read(db.mem, 1) == 2
        assert db.mem.accesses == before + 1

    def test_write_updates_value(self, tiny):
        db = Database(tiny)
        col = db.create_column("c", [1, 2, 3], width=8)
        col.write(db.mem, 0, 42)
        assert col.peek(0) == 42

    def test_swap(self, tiny):
        db = Database(tiny)
        col = db.create_column("c", [1, 2], width=8)
        col.swap(db.mem, 0, 1)
        assert col.values == [2, 1]

    def test_empty_column_allowed(self):
        # Join/selection results may be empty; the region view falls back
        # to one item (regions are never empty in the model).
        col = Column("c", width=8, address=0, values=[])
        assert col.n == 0
        assert col.region().n == 1

    def test_table_requires_equal_lengths(self, tiny):
        db = Database(tiny)
        a = db.create_column("a", [1, 2], width=8)
        b = db.create_column("b", [1], width=8)
        with pytest.raises(ValueError):
            Table("t", [a, b])

    def test_table_lookup(self, tiny):
        db = Database(tiny)
        a = db.create_column("a", [1, 2], width=8)
        table = Table("t", [a])
        assert table.column("a") is a
        with pytest.raises(KeyError):
            table.column("z")


class TestDatabase:
    def test_columns_do_not_overlap(self, tiny):
        db = Database(tiny)
        a = db.create_column("a", [0] * 100, width=8)
        b = db.create_column("b", [0] * 100, width=8)
        assert b.address >= a.address + a.size

    def test_creation_is_not_measured(self, tiny):
        db = Database(tiny)
        db.create_column("a", [0] * 100, width=8)
        assert db.mem.accesses == 0

    def test_measure_delta(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", list(range(16)), width=8)
        with db.measure() as result:
            scan(db, col)
        assert result[0].accesses == 16

    def test_reset_clears_counters(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", [1], width=8)
        scan(db, col)
        db.reset()
        assert db.mem.accesses == 0

    def test_execute_measured_cold_resets_counters(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", list(range(16)), width=8)
        scan(db, col)  # pollute caches and counters
        assert db.mem.accesses == 16

        class ScanPlan:
            def execute(self, database):
                return scan(database, col)

        _, delta = db.execute_measured(ScanPlan())
        # cold=True resets first: the delta is the plan's own accesses
        # and the global counters restart from zero
        assert delta.accesses == 16
        assert db.mem.accesses == 16

    def test_execute_measured_warm_keeps_state(self, tiny):
        """``cold=False`` must not reset: counters accumulate across
        runs and the second (warm-cache) run misses less."""
        db = Database(tiny)
        col = db.create_column("a", list(range(16)), width=8)

        class ScanPlan:
            def execute(self, database):
                return scan(database, col)

        _, cold_delta = db.execute_measured(ScanPlan())
        _, warm_delta = db.execute_measured(ScanPlan(), cold=False)
        # no reset happened: global counters hold both runs' accesses
        assert db.mem.accesses == cold_delta.accesses + warm_delta.accesses
        # the column is L1/L2-resident after the cold run
        assert warm_delta.misses("L1") < cold_delta.misses("L1")
        assert warm_delta.elapsed_ns < cold_delta.elapsed_ns

    def test_register_and_lookup_catalog(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", [1, 2], width=8)
        assert db.register(col) is col
        assert db.column("a") is col
        db.register(col, name="alias")
        assert db.column("alias") is col
        with pytest.raises(KeyError, match="no registered table"):
            db.column("missing")

    def test_set_hierarchy_keeps_catalog_and_data(self, tiny):
        from repro.hardware import origin2000_scaled
        db = Database(tiny)
        col = db.register(db.create_column("a", [3, 1, 2], width=8))
        scan(db, col)
        db.set_hierarchy(origin2000_scaled())
        assert db.hierarchy.name != tiny.name
        assert db.column("a").values == [3, 1, 2]
        assert db.mem.accesses == 0  # fresh (cold) memory system


class TestScanSelectProject:
    def test_scan_checksum(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", [1, 2, 3], width=8)
        assert scan(db, col) == 6

    def test_scan_touches_each_item_once(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", list(range(64)), width=8)
        with db.measure() as result:
            scan(db, col)
        assert result[0].accesses == 64
        # Dense column: |R| L1 misses.
        assert result[0].misses("L1") == col.size // 16

    def test_scan_used_bytes_validated(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", [1], width=8)
        with pytest.raises(ValueError):
            scan(db, col, used_bytes=16)

    def test_select_filters(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", list(range(10)), width=8)
        out = select(db, col, lambda v: v % 2 == 0)
        assert out.values == [0, 2, 4, 6, 8]

    def test_select_empty_result(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", [1, 3], width=8)
        out = select(db, col, lambda v: v > 10)
        assert out.values == []

    def test_project_copies(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", [7, 8], width=8)
        out = project(db, col, used_bytes=4)
        assert out.values == [7, 8]
        assert out.width == 4

    def test_project_validates_u(self, tiny):
        db = Database(tiny)
        col = db.create_column("a", [7], width=8)
        with pytest.raises(ValueError):
            project(db, col, used_bytes=9)
