"""The concurrent workload service: generator, interference model,
schedulers, executor, metrics — plus the session hooks it rides on
(spawned client sessions, plan-cache provenance)."""

import pytest

from repro.query.physical import QueryPlan
from repro.core import Conc, Seq, footprint_lines
from repro.service import (
    FifoSerialPolicy,
    InterferenceAwarePolicy,
    InterferenceModel,
    MaxParallelPolicy,
    ServiceExecutor,
    WorkloadGenerator,
    percentile,
)
from repro.service.executor import record_trace, replay_interleaved
from repro.service.workload import (
    WorkloadQuery,
    poisson_gaps,
    stamp_arrivals,
)
from repro.session import Session


@pytest.fixture(scope="module")
def small_service():
    """One shared session + a small balanced workload (module-scoped:
    populating and compiling is the expensive part)."""
    session = Session()
    gen = WorkloadGenerator(session=session, seed=3, scale=256)
    return session, gen


class TestWorkloadGenerator:
    def test_stream_is_deterministic(self, small_service):
        _, gen = small_service
        a = gen.generate(12, clients=3)
        b = gen.generate(12, clients=3)
        assert a == b
        assert [q.qid for q in a] == list(range(12))
        assert {q.client for q in a} <= {0, 1, 2}

    def test_different_seeds_differ(self):
        s1, s2 = Session(), Session()
        a = WorkloadGenerator(session=s1, seed=1, scale=256).generate(16)
        b = WorkloadGenerator(session=s2, seed=2, scale=256).generate(16)
        assert [q.text for q in a] != [q.text for q in b]

    def test_every_template_compiles(self, small_service):
        session, gen = small_service
        from repro.service.workload import KINDS
        for kind in KINDS:
            for text in gen._templates(kind):
                planned = session.compile(text)
                assert planned.best.total_ns > 0

    def test_mix_validation(self):
        with pytest.raises(ValueError, match="unknown workload kinds"):
            WorkloadGenerator(session=Session(), scale=256,
                              mix={"nope": 1.0})
        with pytest.raises(ValueError, match="positive"):
            WorkloadGenerator(session=Session(), scale=256,
                              mix={"join": 0.0})

    def test_contention_heavy_mix_is_join_dominated(self):
        gen = WorkloadGenerator.contention_heavy(session=Session(),
                                                 scale=256)
        stream = gen.generate(40)
        joins = sum(1 for q in stream
                    if q.kind in ("join", "join_aggregate"))
        assert joins > len(stream) / 2


class TestSessionHooks:
    def test_spawn_shares_engine_and_cache(self, small_service):
        session, _ = small_service
        client = session.spawn()
        assert client.db is session.db
        assert client.plan_cache is session.plan_cache
        assert client.function("even") is session.function("even")
        # catalog is the same object: tables registered later are seen
        assert client.db.catalog is session.db.catalog

    def test_compile_provenance_hit_and_miss(self):
        session = Session()
        WorkloadGenerator(session=session, seed=5, scale=256)
        text = "filter(orders, even, sel=0.5)"
        session.compile(text)
        assert session.last_compile_cached is False
        session.compile(text)
        assert session.last_compile_cached is True
        # a spawned client session hits the shared cache immediately,
        # with its own provenance flag
        client = session.spawn()
        client.compile(text)
        assert client.last_compile_cached is True
        assert session.last_compile_cached is True

    def test_explain_marks_cache_provenance(self):
        session = Session()
        WorkloadGenerator(session=session, seed=5, scale=256)
        first = session.explain_query("join(orders, customers)")
        assert first.cache_hit is False
        assert first.to_text().rstrip().endswith("plan cache: miss")
        second = session.explain_query("join(orders, customers)")
        assert second.cache_hit is True
        assert second.to_text().rstrip().endswith("plan cache: hit")
        assert (second.to_text().splitlines()[:-1]
                == first.to_text().splitlines()[:-1])

    def test_sibling_profile_switch_is_seen(self):
        """When one session switches the *shared* engine's profile,
        spawned siblings re-bind on their next compile: fingerprints
        agree and old-profile cache entries stop matching."""
        from repro.hardware import tiny_test_machine
        session = Session()
        WorkloadGenerator(session=session, seed=5, scale=256)
        client = session.spawn()
        text = "filter(orders, even, sel=0.5)"
        client.compile(text)
        old = client.fingerprint
        session.set_hierarchy(tiny_test_machine())
        assert client.fingerprint == session.fingerprint != old
        client.compile(text)
        assert client.last_compile_cached is False  # re-enumerated
        client.compile(text)
        assert client.last_compile_cached is True

    def test_pipeline_stages_hook(self, small_service):
        session, _ = small_service
        plan = session.compile("aggregate(join(orders, customers), "
                               "groups=256)").plan
        stages = plan.pipeline_stages()
        pattern = plan.pattern(pipeline=True)
        assert isinstance(pattern, Seq)
        assert stages == pattern.parts
        # one stage at a time runs: the plan's competitive footprint is
        # its *max* stage footprint (what ⊙ composition divides by)
        line = session.hierarchy.levels[0].line_size
        assert footprint_lines(pattern, line) == \
            max(footprint_lines(s, line) for s in stages)


class TestInterferenceModel:
    @pytest.fixture(scope="class")
    def plans(self, small_service):
        session, _ = small_service
        texts = ["join(orders, customers)", "join(customers, parts)",
                 "filter(orders, even, sel=0.5)"]
        return session, [session.compile(t).plan for t in texts]

    def test_single_plan_is_standalone(self, plans):
        session, (join_plan, *_) = plans
        model = InterferenceModel(session.hierarchy)
        memory, cpu = model.standalone(join_plan)
        pred = model.co_run([join_plan])
        assert pred.memory_ns == (pytest.approx(memory),)
        assert pred.makespan_ns == pytest.approx(memory + cpu)
        assert pred.slowdown == pytest.approx(1.0)

    def test_co_run_matches_conc_composition(self, plans):
        """The batch memory time is exactly the ⊙-composed estimate."""
        session, ps = plans
        model = InterferenceModel(session.hierarchy)
        pred = model.co_run(ps)
        patterns = [p.pattern(pipeline=True) for p in ps]
        expected = model.model.estimate(Conc.of(*patterns)).memory_ns
        assert pred.batch_memory_ns == pytest.approx(expected)

    def test_contention_slows_joins_down(self, plans):
        session, (a, b, _) = plans
        model = InterferenceModel(session.hierarchy)
        pred = model.co_run([a, b])
        assert pred.slowdown > 1.0
        for shared, solo in zip(pred.memory_ns, pred.solo_memory_ns):
            assert shared >= solo

    def test_empty_batch_rejected(self, plans):
        session, _ = plans
        with pytest.raises(ValueError, match="at least one plan"):
            InterferenceModel(session.hierarchy).co_run([])


class TestSchedulers:
    @pytest.fixture(scope="class")
    def tasks(self, small_service):
        session, gen = small_service
        executor = ServiceExecutor(session, FifoSerialPolicy())
        return executor, executor.admit(gen.generate(10, clients=2))

    def test_fifo_serial_is_singletons(self, tasks):
        _, ts = tasks
        batches = FifoSerialPolicy().batches(ts)
        assert [len(b) for b in batches] == [1] * len(ts)
        assert [b[0].query.qid for b in batches] == list(range(len(ts)))

    def test_max_parallel_chunks_arrival_order(self, tasks):
        _, ts = tasks
        batches = MaxParallelPolicy(max_batch=4).batches(ts)
        assert [len(b) for b in batches] == [4, 4, 2]
        flat = [t.query.qid for b in batches for t in b]
        assert flat == list(range(len(ts)))

    def test_interference_aware_schedules_everything_once(self, tasks):
        executor, ts = tasks
        policy = InterferenceAwarePolicy(executor.interference,
                                         max_batch=4)
        batches = policy.batches(ts)
        scheduled = sorted(t.query.qid for b in batches for t in b)
        assert scheduled == list(range(len(ts)))
        assert all(1 <= len(b) <= 4 for b in batches)

    def test_admission_never_predicts_worse_than_serial(self, tasks):
        """The admission rule guarantees every batch's predicted
        makespan is bounded by the sum of its members' standalone
        times (slack=1): co-scheduling never *predictably* loses to
        FIFO-serial."""
        executor, ts = tasks
        policy = InterferenceAwarePolicy(executor.interference,
                                         max_batch=4, slack=1.0)
        for batch in policy.batches(ts):
            predicted = executor.interference.co_run(
                [t.plan for t in batch]).makespan_ns
            serial = sum(t.solo_total_ns for t in batch)
            assert predicted <= serial * (1 + 1e-9)

    def test_parameter_validation(self, tasks):
        executor, _ = tasks
        with pytest.raises(ValueError):
            MaxParallelPolicy(max_batch=0)
        with pytest.raises(ValueError):
            InterferenceAwarePolicy(executor.interference, slack=0.0)
        with pytest.raises(ValueError):
            InterferenceAwarePolicy(executor.interference, lookahead=0)


class TestExecutor:
    def test_record_trace_restores_columns(self, small_service):
        session, _ = small_service
        plan = session.compile("sort(orders)").plan
        before = list(session.db.column("orders").values)
        trace = record_trace(session.db, plan)
        assert len(trace) > 0
        assert session.db.column("orders").values == before
        # and the real memory system is back in place
        assert session.db.mem.__class__.__name__ == "MemorySystem"

    def test_replay_quantum_validation(self, small_service):
        session, _ = small_service
        with pytest.raises(ValueError, match="quantum"):
            replay_interleaved(session.hierarchy, [[(0, 8)]], quantum=0)

    def test_end_to_end_report(self, small_service):
        session, gen = small_service
        workload = gen.generate(8, clients=2)
        report = ServiceExecutor(session, MaxParallelPolicy(4)).run(workload)
        assert len(report.queries) == 8
        assert [q.qid for q in report.queries] == list(range(8))
        assert sum(b.size for b in report.batches) == 8
        assert report.makespan_ns > 0
        assert report.throughput_qps > 0
        assert report.p50_latency_ns <= report.p95_latency_ns
        assert report.p95_latency_ns <= report.makespan_ns * (1 + 1e-9)
        for q in report.queries:
            assert q.finish_ns > q.start_ns
        text = report.render()
        assert "max-parallel" in text and "p95" in text

    def test_interference_aware_beats_naive_on_contention(self):
        """The tentpole claim at test scale: on a join-dominated mix
        whose hash tables thrash the shared cache, the ⊙-guided policy
        finishes the workload sooner than naive max-parallel, and its
        co-run predictions track the interleaved replay within the
        model-vs-simulator tolerance band (deterministic workload, so
        this is a stable check, not a flaky benchmark)."""
        session = Session()
        gen = WorkloadGenerator.contention_heavy(session=session, seed=7,
                                                 scale=512)
        workload = gen.generate(8, clients=2)
        naive = ServiceExecutor(session, MaxParallelPolicy(4)).run(workload)
        aware_policy = InterferenceAwarePolicy(
            InterferenceModel(session.hierarchy), max_batch=4)
        aware = ServiceExecutor(session, aware_policy).run(workload)
        assert aware.makespan_ns < naive.makespan_ns
        assert naive.mean_contention_error < 0.35
        assert aware.mean_contention_error < 0.35


class TestMetrics:
    def test_percentile(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 50) == pytest.approx(25.0)
        assert percentile([7.0], 95) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 101)
    def test_percentile_edge_cases(self):
        # empty: raises by default, returns the supplied default when
        # one is given (including an explicit None)
        assert percentile([], 50, empty=None) is None
        assert percentile([], 99, empty=0.0) == 0.0
        # q is validated before the empty check
        with pytest.raises(ValueError, match="q must be"):
            percentile([], 101, empty=None)
        # a single sample is its own percentile at every q
        for q in (0, 50, 99, 100):
            assert percentile([3.5], q) == 3.5

    def test_p99_tracks_the_tail(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 99) > percentile(values, 95)
        assert percentile(values, 99) <= percentile(values, 100)

    def test_report_exposes_p99(self, small_service):
        session, gen = small_service
        report = ServiceExecutor(session, MaxParallelPolicy(4)).run(
            gen.generate(8, clients=2))
        assert report.p95_latency_ns <= report.p99_latency_ns
        assert report.p99_latency_ns <= report.makespan_ns * (1 + 1e-9)
        assert report.to_json()["p99_latency_ns"] == report.p99_latency_ns
        assert "p99" in report.render()


class TestArrivalStamps:
    def test_poisson_gaps_validation(self):
        import random as _random
        with pytest.raises(ValueError, match="rate_qps"):
            next(iter(poisson_gaps(_random.Random(0), 0.0)))

    def test_stamp_arrivals_is_cumulative(self):
        queries = [WorkloadQuery(qid=i, client=0, kind="scan",
                                 text=f"q{i}") for i in range(4)]
        stamped = stamp_arrivals(queries, iter([5.0, 1.0, 2.0, 0.0]))
        assert [q.arrival_ns for q in stamped] == [5.0, 6.0, 8.0, 8.0]
        # the originals are untouched (streams are replayable)
        assert all(q.arrival_ns == 0.0 for q in queries)
        with pytest.raises(ValueError, match="non-negative"):
            stamp_arrivals(queries, iter([1.0, -2.0, 3.0, 4.0]))
        with pytest.raises(ValueError, match="exhausted"):
            stamp_arrivals(queries, iter([1.0, 2.0]))

    def test_generate_with_rate_stamps_arrivals(self, small_service):
        _, gen = small_service
        stamped = gen.generate(16, clients=2, rate_qps=1000.0)
        arrivals = [q.arrival_ns for q in stamped]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[0] > 0
        # deterministic, and a rate-free stream stays unstamped
        again = gen.generate(16, clients=2, rate_qps=1000.0)
        assert [q.arrival_ns for q in again] == arrivals
        plain = gen.generate(16, clients=2)
        assert all(q.arrival_ns == 0.0 for q in plain)
        # same queries either way: the rate only adds timestamps
        assert [q.text for q in plain] == [q.text for q in stamped]
